#![warn(missing_docs)]
//! # refined-tle: Refined Transactional Lock Elision, reproduced in Rust
//!
//! A from-scratch reproduction of *Refined Transactional Lock Elision*
//! (Dice, Kogan, Lev; PPoPP 2016): standard TLE plus the paper's RW-TLE
//! and FG-TLE refinements that let hardware transactions run concurrently
//! with a lock holder, together with every substrate the evaluation needs
//! — a software-emulated best-effort HTM, the NOrec and RHNOrec baselines,
//! the AVL-tree and bank micro-benchmarks, a sequence-assembler
//! application, and a deterministic simulator that regenerates the paper's
//! figures.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof for the examples and integration tests. Depend on the individual
//! crates for finer-grained builds.
//!
//! ```
//! use refined_tle::prelude::*;
//!
//! let lock = ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 256 }).build();
//! let cell = TxCell::new(0u64);
//! lock.execute(|ctx| {
//!     let v = ctx.read(&cell);
//!     ctx.write(&cell, v + 1);
//! });
//! assert_eq!(cell.read_plain(), 1);
//! ```

pub use rtle_avltree as avltree;
pub use rtle_cctsa as cctsa;
pub use rtle_core as core;
pub use rtle_fuzz as fuzz;
pub use rtle_htm as htm;
pub use rtle_hytm as hytm;
pub use rtle_obs as obs;
pub use rtle_shard as shard;
pub use rtle_sim as sim;
pub use rtle_stm as stm;
pub use rtle_structs as structs;

/// The items most programs need.
///
/// The canonical front door for writing transactions is the composable
/// API: [`atomically`](rtle_stm::atomically) over [`TxVar`](rtle_stm::TxVar)s
/// and transactional structures, with [`Tx::retry`](rtle_stm::Tx::retry)
/// and [`or_else`](rtle_stm::or_else) for blocking and choice. Direct
/// `ElidableLock::execute` remains the low-level single-lock interface.
pub mod prelude {
    pub use rtle_avltree::AvlSet;
    pub use rtle_core::{
        Ctx, ElidableLock, ElidableLockBuilder, ElisionPolicy, ExecMode, LockedSection,
        RetryPolicy, StatsSnapshot, TatasLock, TicketLock,
    };
    pub use rtle_htm::{AbortCode, PlainAccess, TxAccess, TxCell};
    pub use rtle_hytm::{Norec, RhNorec, TmCtx};
    pub use rtle_obs::{AdaptAction, AdaptDecision, ObsConfig, Recorder};
    pub use rtle_shard::{MapOp, OpResult, ShardedTxMap, TransferError};
    pub use rtle_stm::{atomically, or_else, Stm, StmBuilder, Tx, TxError, TxResult, TxVar};
    pub use rtle_structs::{TxHashSet, TxListSet};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let lock = ElidableLock::builder().policy(ElisionPolicy::Tle).build();
        let c = TxCell::new(1u64);
        let v = lock.execute(|ctx| ctx.read(&c));
        assert_eq!(v, 1);
    }

    /// The prelude must cover adaptive configuration and observability
    /// without reaching into `rtle_core` / `rtle_obs` paths directly.
    #[test]
    fn prelude_covers_adaptive_config_and_recorder() {
        use crate::prelude::*;
        use std::sync::Arc;
        let rec = Arc::new(Recorder::new(ObsConfig::default()));
        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::AdaptiveFgTle {
                initial_orecs: 16,
                max_orecs: 256,
            })
            .recorder(Arc::clone(&rec))
            .build();
        let c = TxCell::new(0u64);
        lock.execute(|ctx| ctx.write(&c, 7));
        assert_eq!(c.read_plain(), 7);
        // AdaptAction/AdaptDecision are nameable from the prelude.
        let _names_resolve: Option<(AdaptAction, AdaptDecision)> = None;
    }

    #[test]
    fn prelude_covers_sharded_map() {
        use crate::prelude::*;
        let map: ShardedTxMap = ShardedTxMap::with_builder(
            4,
            64,
            ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 32 }),
        );
        map.insert(1, 10);
        map.insert(2, 20);
        assert_eq!(map.transfer(1, 2, 5), Ok(()));
        assert_eq!(
            map.execute_batch(&[MapOp::Get(1), MapOp::Get(2)]),
            vec![OpResult::Found(Some(5)), OpResult::Found(Some(25))]
        );
        let _ = TransferError::MissingFrom;
        let snap: StatsSnapshot = map.merged_stats();
        assert!(snap.ops >= 4);
    }
}
