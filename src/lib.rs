#![warn(missing_docs)]
//! # refined-tle: Refined Transactional Lock Elision, reproduced in Rust
//!
//! A from-scratch reproduction of *Refined Transactional Lock Elision*
//! (Dice, Kogan, Lev; PPoPP 2016): standard TLE plus the paper's RW-TLE
//! and FG-TLE refinements that let hardware transactions run concurrently
//! with a lock holder, together with every substrate the evaluation needs
//! — a software-emulated best-effort HTM, the NOrec and RHNOrec baselines,
//! the AVL-tree and bank micro-benchmarks, a sequence-assembler
//! application, and a deterministic simulator that regenerates the paper's
//! figures.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof for the examples and integration tests. Depend on the individual
//! crates for finer-grained builds.
//!
//! ```
//! use refined_tle::prelude::*;
//!
//! let lock = ElidableLock::new(ElisionPolicy::FgTle { orecs: 256 });
//! let cell = TxCell::new(0u64);
//! lock.execute(|ctx| {
//!     let v = ctx.read(&cell);
//!     ctx.write(&cell, v + 1);
//! });
//! assert_eq!(cell.read_plain(), 1);
//! ```

pub use rtle_avltree as avltree;
pub use rtle_cctsa as cctsa;
pub use rtle_core as core;
pub use rtle_fuzz as fuzz;
pub use rtle_htm as htm;
pub use rtle_hytm as hytm;
pub use rtle_sim as sim;
pub use rtle_structs as structs;

/// The items most programs need.
pub mod prelude {
    pub use rtle_avltree::AvlSet;
    pub use rtle_core::{
        Ctx, ElidableLock, ElisionPolicy, ExecMode, RetryPolicy, TatasLock, TicketLock,
    };
    pub use rtle_htm::{AbortCode, PlainAccess, TxAccess, TxCell};
    pub use rtle_hytm::{Norec, RhNorec, TmCtx};
    pub use rtle_structs::{TxHashSet, TxListSet};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let lock = ElidableLock::new(ElisionPolicy::Tle);
        let c = TxCell::new(1u64);
        let v = lock.execute(|ctx| ctx.read(&c));
        assert_eq!(v, 1);
    }
}
