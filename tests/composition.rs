//! Multi-structure transactions: one critical section updating an AVL
//! set, a hash set and plain counters atomically, under every method.
//! (The condensed, asserting version of `examples/reservations.rs`.)

use std::sync::Arc;

use refined_tle::prelude::*;
use rtle_avltree::xorshift64;

const RESOURCES: u64 = 16;
const CAPACITY: u64 = 8;

struct Sys {
    members: AvlSet,
    remaining: Vec<TxCell<u64>>,
    bookings: TxHashSet,
}

impl Sys {
    fn new() -> Self {
        let members = AvlSet::with_key_range(64);
        let a = PlainAccess;
        for c in 0..64 {
            members.insert(&a, c);
        }
        Sys {
            members,
            remaining: (0..RESOURCES).map(|_| TxCell::new(CAPACITY)).collect(),
            bookings: TxHashSet::with_capacity(4096),
        }
    }

    fn reserve<A: TxAccess + ?Sized>(&self, a: &A, res: u64, member: u64) -> bool {
        if !self.members.contains(a, member) {
            return false;
        }
        let key = res << 16 | member;
        if self.bookings.contains(a, key) {
            return false;
        }
        let left = a.load(&self.remaining[res as usize]);
        if left == 0 {
            return false;
        }
        a.store(&self.remaining[res as usize], left - 1);
        self.bookings.insert(a, key);
        true
    }

    fn cancel<A: TxAccess + ?Sized>(&self, a: &A, res: u64, member: u64) -> bool {
        let key = res << 16 | member;
        if !self.bookings.remove(a, key) {
            return false;
        }
        let left = a.load(&self.remaining[res as usize]);
        a.store(&self.remaining[res as usize], left + 1);
        true
    }

    fn check(&self) {
        let a = PlainAccess;
        let keys = self.bookings.keys_plain();
        let mut total_used = 0;
        for r in 0..RESOURCES {
            let used = CAPACITY - a.load(&self.remaining[r as usize]);
            assert!(used <= CAPACITY, "capacity overdrawn on resource {r}");
            let recorded = keys.iter().filter(|&&k| k >> 16 == r).count() as u64;
            assert_eq!(used, recorded, "resource {r}: {used} used vs {recorded} booked");
            total_used += used;
        }
        assert_eq!(total_used as usize, keys.len());
    }
}

fn drive(policy: ElisionPolicy) {
    let sys = Arc::new(Sys::new());
    let lock = Arc::new(ElidableLock::builder().policy(policy).build());

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let sys = Arc::clone(&sys);
            let lock = Arc::clone(&lock);
            scope.spawn(move || {
                let mut rng = 0xc0de ^ (t + 1);
                for i in 0..2_500u64 {
                    let r = xorshift64(&mut rng);
                    let res = r % RESOURCES;
                    let member = (r >> 16) % 64;
                    lock.execute(|ctx| {
                        if i % 64 == 0 {
                            rtle_htm::htm_unfriendly_instruction();
                        }
                        if (r >> 40).is_multiple_of(3) {
                            sys.cancel(ctx, res, member);
                        } else {
                            sys.reserve(ctx, res, member);
                        }
                    });
                }
            });
        }
    });
    sys.check();
}

#[test]
fn composition_under_tle() {
    drive(ElisionPolicy::Tle);
}

#[test]
fn composition_under_rw_tle() {
    drive(ElisionPolicy::RwTle);
}

#[test]
fn composition_under_fg_tle() {
    drive(ElisionPolicy::FgTle { orecs: 512 });
}

#[test]
fn composition_under_adaptive() {
    drive(ElisionPolicy::AdaptiveFgTle { initial_orecs: 32, max_orecs: 2048 });
}

#[test]
fn composition_under_norec() {
    let sys = Arc::new(Sys::new());
    let tm = Arc::new(Norec::new());
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let sys = Arc::clone(&sys);
            let tm = Arc::clone(&tm);
            scope.spawn(move || {
                let mut rng = 0xd00d ^ (t + 1);
                for _ in 0..1_500u64 {
                    let r = xorshift64(&mut rng);
                    let res = r % RESOURCES;
                    let member = (r >> 16) % 64;
                    tm.execute(|ctx| {
                        if (r >> 40).is_multiple_of(3) {
                            sys.cancel(ctx, res, member);
                        } else {
                            sys.reserve(ctx, res, member);
                        }
                    });
                }
            });
        }
    });
    sys.check();
}

#[test]
fn composition_under_rhnorec() {
    let sys = Arc::new(Sys::new());
    let tm = Arc::new(RhNorec::new());
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let sys = Arc::clone(&sys);
            let tm = Arc::clone(&tm);
            scope.spawn(move || {
                let mut rng = 0xf00d ^ (t + 1);
                for i in 0..1_500u64 {
                    let r = xorshift64(&mut rng);
                    let res = r % RESOURCES;
                    let member = (r >> 16) % 64;
                    tm.execute(|ctx| {
                        if i % 32 == 0 {
                            rtle_htm::htm_unfriendly_instruction();
                        }
                        if (r >> 40).is_multiple_of(3) {
                            sys.cancel(ctx, res, member);
                        } else {
                            sys.reserve(ctx, res, member);
                        }
                    });
                }
            });
        }
    });
    sys.check();
    assert_eq!(tm.sw_running(), 0);
}
