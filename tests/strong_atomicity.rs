//! §1's semantic claim, exercised for real: refined TLE "allows to use
//! our technique with lock-based programs that may access the same data
//! concurrently inside and outside of a critical section", and the order
//! in which critical-section stores become visible is preserved even for
//! readers outside any critical section.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use refined_tle::prelude::*;

/// A writer increments `seq` then `data` (in that order) inside critical
/// sections; plain readers outside any critical section must never
/// observe `data > seq` (publication order) and must see both values
/// monotonically non-decreasing (no rollback artifacts become visible).
#[test]
fn outside_readers_see_ordered_committed_state() {
    for policy in [
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 128 },
    ] {
        let lock = Arc::new(ElidableLock::builder().policy(policy).build());
        let seq = Arc::new(TxCell::new(0u64));
        let data = Arc::new(TxCell::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            // Two writers (so speculation, aborts and the lock path all
            // get exercised).
            for _ in 0..2 {
                let (lock, seq, data, stop) = (
                    Arc::clone(&lock),
                    Arc::clone(&seq),
                    Arc::clone(&data),
                    Arc::clone(&stop),
                );
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        i += 1;
                        lock.execute(|ctx| {
                            if i.is_multiple_of(64) {
                                // Occasionally force the pessimistic path.
                                rtle_htm::htm_unfriendly_instruction();
                            }
                            let s = ctx.read(&seq);
                            ctx.write(&seq, s + 1);
                            let d = ctx.read(&data);
                            ctx.write(&data, d + 1);
                        });
                    }
                });
            }
            // Plain reader, entirely outside critical sections.
            {
                let (seq, data, stop) = (Arc::clone(&seq), Arc::clone(&data), Arc::clone(&stop));
                scope.spawn(move || {
                    let mut last_seq = 0u64;
                    let mut last_data = 0u64;
                    for _ in 0..30_000 {
                        // Read in publication-reverse order: data first,
                        // then seq. Committed order (seq before data in
                        // program order within the CS, atomically
                        // published) implies data_now <= seq_now.
                        let d = data.read_plain();
                        let s = seq.read_plain();
                        assert!(d <= s, "publication order violated: data={d} seq={s}");
                        assert!(s >= last_seq, "seq went backwards");
                        assert!(d >= last_data, "data went backwards");
                        last_seq = s;
                        last_data = d;
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });

        let (s, d) = (seq.read_plain(), data.read_plain());
        assert_eq!(s, d, "{}: writers finished their pairs", policy.label());
        assert!(s > 0);
    }
}

/// Data modified *outside* any critical section must doom speculating
/// transactions that read it (strong atomicity in the write direction).
#[test]
fn outside_writes_are_respected_by_speculation() {
    let lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }).build());
    let cell = Arc::new(TxCell::new(0u64));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Outside writer: plain stores, no critical section at all.
        {
            let (cell, stop) = (Arc::clone(&cell), Arc::clone(&stop));
            scope.spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v += 2;
                    cell.write(v); // plain (non-transactional) store
                }
            });
        }
        // Speculating readers: each CS reads the cell twice; the two reads
        // must agree (the transaction would have aborted otherwise).
        {
            let (lock, cell, stop) = (Arc::clone(&lock), Arc::clone(&cell), Arc::clone(&stop));
            scope.spawn(move || {
                for _ in 0..20_000 {
                    let (a, b) = lock.execute(|ctx| (ctx.read(&cell), ctx.read(&cell)));
                    assert_eq!(a, b, "torn snapshot across an outside write");
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
}
