//! Properties of the evaluation substrate: determinism, conservation
//! laws, and the headline figure shapes at test scale.

use refined_tle::sim::engine::{Engine, RunMode};
use refined_tle::sim::workloads::avl::{AvlConfig, AvlWorkload};
use refined_tle::sim::workloads::bank::{BankConfig, BankWorkload};
use refined_tle::sim::{CostModel, MachineProfile, SimMethod, SimStats};

fn avl_point(method: SimMethod, threads: usize) -> SimStats {
    let machine = MachineProfile::XEON;
    let w = AvlWorkload::new(threads, AvlConfig::new(8192, 20, 20));
    Engine::new(
        method,
        threads,
        CostModel::pointer_chasing(),
        RunMode::FixedDuration(machine.cycles_per_ms()),
        w,
    )
    .with_time_scale(machine.smt_factor(threads))
    .with_spurious_aborts(machine.htm_spurious(threads))
    .run()
}

#[test]
fn simulator_is_deterministic() {
    for m in [
        SimMethod::Tle,
        SimMethod::FgTle { orecs: 256 },
        SimMethod::RhNorec,
    ] {
        let a = avl_point(m, 8);
        let b = avl_point(m, 8);
        assert_eq!(a, b, "{m:?} must be bit-deterministic");
    }
}

#[test]
fn commits_partition_ops_for_elision_methods() {
    for m in [
        SimMethod::LockOnly { locks: 1 },
        SimMethod::Tle,
        SimMethod::RwTle,
        SimMethod::FgTle { orecs: 1024 },
    ] {
        let s = avl_point(m, 12);
        assert_eq!(
            s.ops,
            s.fast_commits + s.slow_commits + s.lock_commits,
            "{m:?}: every op commits on exactly one path: {s:?}"
        );
    }
}

#[test]
fn commits_partition_ops_for_tm_methods() {
    for m in [SimMethod::Norec, SimMethod::RhNorec] {
        let s = avl_point(m, 12);
        assert_eq!(
            s.ops,
            s.fast_commits + s.htm_slow_commits + s.stm_fast_commits + s.stm_slow_commits,
            "{m:?}: every op commits exactly once: {s:?}"
        );
    }
}

#[test]
fn headline_shapes_hold_at_test_scale() {
    // The paper's core claims, checked as inequalities at 36 threads with
    // 20% updates:
    let tle = avl_point(SimMethod::Tle, 36);
    let fg = avl_point(SimMethod::FgTle { orecs: 8192 }, 36);
    let rh = avl_point(SimMethod::RhNorec, 36);
    let lock = avl_point(SimMethod::LockOnly { locks: 1 }, 36);

    // (1) Refined TLE beats standard TLE under contention.
    assert!(
        fg.ops > tle.ops * 12 / 10,
        "FG-TLE(8192)={} TLE={}",
        fg.ops,
        tle.ops
    );
    // (2) The refinement's mechanism: commits happen on the slow path.
    assert!(fg.slow_commits > 0 && tle.slow_commits == 0);
    // (3) RHNOrec collapses at high thread counts (global clock).
    assert!(fg.ops > rh.ops * 2, "FG={} RHNOrec={}", fg.ops, rh.ops);
    // (4) Everything elided beats the plain lock.
    assert!(tle.ops > lock.ops * 2);
}

#[test]
fn bank_conserves_and_separates_methods() {
    let cfg = BankConfig {
        ops_per_thread: Some(400),
        ..Default::default()
    };
    let machine = MachineProfile::XEON;
    let run = |m: SimMethod| {
        let w = BankWorkload::new(24, cfg);
        Engine::new(m, 24, CostModel::default(), RunMode::FixedWork, w)
            .with_time_scale(machine.smt_factor(24))
            .with_spurious_aborts(machine.htm_spurious(24))
            .run()
    };
    let tle = run(SimMethod::Tle);
    let fg = run(SimMethod::FgTle { orecs: 8192 });
    assert_eq!(tle.ops, 24 * 400);
    assert_eq!(fg.ops, 24 * 400);
    assert!(
        fg.sim_cycles < tle.sim_cycles,
        "FG-TLE finishes the transfer workload sooner: fg={} tle={}",
        fg.sim_cycles,
        tle.sim_cycles
    );
    // RW-TLE cannot use its slow path here: every transfer writes.
    let rw = run(SimMethod::RwTle);
    assert_eq!(rw.slow_commits, 0);
}

#[test]
fn hostile_updater_shape_fig12() {
    let machine = MachineProfile::XEON;
    let run = |m: SimMethod, threads: usize| {
        let mut cfg = AvlConfig::new(65_536, 0, 0);
        cfg.hostile_thread = Some(0);
        let w = AvlWorkload::new(threads, cfg);
        Engine::new(
            m,
            threads,
            CostModel::pointer_chasing(),
            RunMode::FixedDuration(machine.cycles_per_ms()),
            w,
        )
        .with_time_scale(machine.smt_factor(threads))
        .with_spurious_aborts(machine.htm_spurious(threads))
        .run()
    };
    // FG-TLE lets the finders run concurrently with the perpetual lock
    // holder; TLE stalls them. (The paper's gap is larger; the simulator
    // compresses it — see EXPERIMENTS.md — but the ordering and the
    // mechanism must hold.)
    let tle = run(SimMethod::Tle, 18);
    let fg = run(SimMethod::FgTle { orecs: 4096 }, 18);
    assert!(
        fg.ops > tle.ops * 13 / 10,
        "fig12: FG={} TLE={}",
        fg.ops,
        tle.ops
    );
    assert!(
        fg.slow_commits > fg.fast_commits / 10,
        "finders use the slow path: {fg:?}"
    );
    // TLE flattens with more threads while FG keeps scaling.
    let tle36 = run(SimMethod::Tle, 36);
    let fg36 = run(SimMethod::FgTle { orecs: 4096 }, 36);
    assert!(
        fg36.ops > fg.ops,
        "FG keeps scaling 18→36: {} vs {}",
        fg36.ops,
        fg.ops
    );
    assert!(
        fg36.ops > tle36.ops * 17 / 10,
        "gap widens at 36 threads: FG={} TLE={}",
        fg36.ops,
        tle36.ops
    );
}
