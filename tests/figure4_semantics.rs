//! The paper's Figure 4 scenario, end-to-end: a lock used as a *barrier*
//! (an empty critical section whose completion is supposed to imply the
//! previous critical section finished).
//!
//! * Standard TLE preserves the pattern: no critical section can complete
//!   while the lock is held.
//! * Refined TLE (eager) breaks it (§5): the empty critical section
//!   commits on the slow path while the holder is still inside.
//! * Refined TLE with lazy subscription restores it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use refined_tle::prelude::*;

struct Fixture {
    lock: ElidableLock,
    go_flag: AtomicBool,
    ptr: TxCell<u64>, // 0 = "null"
}

/// Runs the Figure 4 interaction once; returns the value of `Ptr` that
/// thread 2 observed after its empty critical section.
fn run_figure4(policy: ElisionPolicy, retry: RetryPolicy) -> u64 {
    let fx = Arc::new(Fixture {
        lock: ElidableLock::builder().policy(policy).retry(retry).build(),
        go_flag: AtomicBool::new(false),
        ptr: TxCell::new(0),
    });

    let observed = Arc::new(AtomicU64::new(u64::MAX));

    std::thread::scope(|scope| {
        // Thread 1: Lock(L); GoFlag = 1; <long work>; Ptr = non-null;
        // Unlock(L). Forced onto the pessimistic path so the lock is
        // genuinely held throughout.
        {
            let fx = Arc::clone(&fx);
            scope.spawn(move || {
                fx.lock.execute(|ctx| {
                    rtle_htm::htm_unfriendly_instruction();
                    fx.go_flag.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(120));
                    ctx.write(&fx.ptr, 0x1000);
                });
            });
        }
        // Thread 2: wait for GoFlag; empty critical section; read Ptr.
        {
            let fx = Arc::clone(&fx);
            let observed = Arc::clone(&observed);
            scope.spawn(move || {
                while !fx.go_flag.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                fx.lock.execute(|_ctx| {}); // the "barrier"
                observed.store(fx.ptr.read_plain(), Ordering::SeqCst);
            });
        }
    });

    observed.load(Ordering::SeqCst)
}

#[test]
fn standard_tle_preserves_barrier_pattern() {
    let v = run_figure4(ElisionPolicy::Tle, RetryPolicy::default());
    assert_eq!(v, 0x1000, "TLE: empty CS must wait for the holder");
}

#[test]
fn eager_fg_tle_breaks_barrier_pattern() {
    // §5: "Thread 2 may successfully execute the empty critical section
    // using a hardware transaction on the slow path while the lock L is
    // held, and may thus see a NULL value in Ptr."
    let v = run_figure4(ElisionPolicy::FgTle { orecs: 64 }, RetryPolicy::default());
    assert_eq!(
        v, 0,
        "refined TLE (eager) should complete the empty CS concurrently and observe null"
    );
}

#[test]
fn eager_rw_tle_breaks_barrier_pattern() {
    let v = run_figure4(ElisionPolicy::RwTle, RetryPolicy::default());
    assert_eq!(
        v, 0,
        "RW-TLE (eager) also completes the empty CS concurrently"
    );
}

#[test]
fn lazy_subscription_restores_barrier_pattern() {
    let retry = RetryPolicy {
        lazy_subscription: true,
        ..Default::default()
    };
    let v = run_figure4(ElisionPolicy::FgTle { orecs: 64 }, retry);
    assert_eq!(
        v, 0x1000,
        "lazy subscription must restore the Figure 4 semantics"
    );
}

#[test]
fn lazy_subscription_restores_barrier_for_rw_tle_too() {
    let retry = RetryPolicy {
        lazy_subscription: true,
        ..Default::default()
    };
    let v = run_figure4(ElisionPolicy::RwTle, retry);
    assert_eq!(v, 0x1000);
}
