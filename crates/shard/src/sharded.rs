//! [`ShardedTxMap`]: the sharded transactional map.
//!
//! # Routing
//!
//! Keys route to shards by the *high* bits of the Thomas Wang mix
//! (`wang_mix64(key) >> (64 - shard_bits)`), while each shard's [`TxMap`]
//! indexes its probe chains with the *low* bits of the same mix. Using
//! disjoint bit ranges keeps the two hash layers independent: conditioning
//! on "key landed in shard s" does not bias the in-shard slot
//! distribution (reusing the low bits for both would collapse each
//! shard's table onto a 1/`shards` stride of its slots).
//!
//! # Concurrency
//!
//! Each shard owns a full [`ElidableLock`] — its own lock word, orec
//! table, epoch, and adaptive policy — so the paper's refined-TLE
//! concurrency story applies *per shard*: a lock holder in shard 3
//! serializes nothing in shard 5, and even within shard 3 the
//! instrumented slow path keeps committing non-conflicting operations
//! alongside the holder (§3/§4).
//!
//! # Cross-shard transactions and deadlock freedom
//!
//! Multi-key operations that span shards ([`ShardedTxMap::multi_get`],
//! [`ShardedTxMap::transfer`], [`ShardedTxMap::compare_and_swap_pair`])
//! acquire every involved shard's lock **pessimistically, in ascending
//! shard-index order**, via [`ElidableLock::lock_section`]. Deadlock
//! freedom is the classical total-order argument: a thread only ever
//! blocks on a shard index strictly greater than every index it already
//! holds, so any wait-for cycle would need an index descent — impossible.
//! Taking the instrumented lock-holder path (rather than attempting a
//! multi-lock hardware transaction) is deliberate: best-effort HTM gives
//! no progress guarantee, and obstruction-free multi-lock commit would
//! re-introduce unbounded mutual aborts; the ordered pessimistic spine
//! always completes in one attempt (§4.1's property), while single-shard
//! traffic on the same shards keeps speculating concurrently on the
//! instrumented slow path.

use std::sync::atomic::{AtomicU64, Ordering};

use rtle_core::{ElidableLock, ElidableLockBuilder, ElisionPolicy, LockedSection};
use rtle_htm::hash::wang_mix64;
use rtle_htm::{HtmBackend, SwHtmBackend, TxWord};

use crate::map::TxMap;

/// Default orecs per shard for [`ShardedTxMap::new`]: small, because each
/// shard's conflict domain is already 1/`shards` of the key space —
/// PAPERS.md's "progressive TM" point that small per-domain conflict
/// tables beat one big one.
pub const DEFAULT_ORECS_PER_SHARD: usize = 128;

pub(crate) struct Shard<V: TxWord, B: HtmBackend> {
    pub(crate) lock: ElidableLock<B>,
    pub(crate) map: TxMap<V>,
    /// Operations routed to this shard (single-key, batched, and
    /// cross-shard legs all count). Relaxed: advisory load metric with no
    /// synchronization role; see the shard row of the rtle-check ordering
    /// table.
    pub(crate) routed: AtomicU64,
}

/// A transactional `u64 → V` map partitioned over `shards` independent
/// [`ElidableLock`]-protected [`TxMap`]s. See the module docs for the
/// routing, concurrency, and deadlock-freedom design.
pub struct ShardedTxMap<V: TxWord = u64, B: HtmBackend = SwHtmBackend> {
    pub(crate) shards: Box<[Shard<V, B>]>,
    /// `64 - log2(shards)`; shard index = `wang_mix64(key) >> shift`.
    shift: u32,
}

/// Outcome of [`ShardedTxMap::transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The debited account does not exist.
    MissingFrom,
    /// The credited account does not exist.
    MissingTo,
    /// The debited account's balance is below the transfer amount.
    Insufficient {
        /// Balance found at transfer time.
        balance: u64,
    },
    /// The credit would overflow the destination balance.
    Overflow,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::MissingFrom => write!(f, "debited account missing"),
            TransferError::MissingTo => write!(f, "credited account missing"),
            TransferError::Insufficient { balance } => {
                write!(f, "insufficient balance {balance}")
            }
            TransferError::Overflow => write!(f, "credit overflows destination"),
        }
    }
}

impl ShardedTxMap<u64, SwHtmBackend> {
    /// A map with `shards` shards (power of two) of `capacity_per_shard`
    /// slots each, every shard running FG-TLE with
    /// [`DEFAULT_ORECS_PER_SHARD`] orecs. Use [`ShardedTxMap::with_builder`]
    /// for full control.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self::with_builder(
            shards,
            capacity_per_shard,
            ElidableLock::builder().policy(ElisionPolicy::FgTle {
                orecs: DEFAULT_ORECS_PER_SHARD,
            }),
        )
    }
}

impl<V: TxWord + Default, B: HtmBackend + Clone> ShardedTxMap<V, B> {
    /// A map whose every shard is built from one [`ElidableLockBuilder`]
    /// template — policy, retry, backend, and recorder are cloned per
    /// shard, so shard configuration is exactly the single-lock builder
    /// API. A shared recorder aggregates all shards' attempt streams into
    /// one observability snapshot; software-TM fallbacks registered on
    /// the template are likewise shared (`Arc`-cloned) across shards, so
    /// one global clock/stripe table serializes software transactions
    /// from every shard.
    ///
    /// `shards` must be a power of two (routing uses the top
    /// `log2(shards)` bits of the Wang mix).
    pub fn with_builder(
        shards: usize,
        capacity_per_shard: usize,
        template: ElidableLockBuilder<B>,
    ) -> Self {
        assert!(
            shards.is_power_of_two() && shards > 0,
            "shard count must be a power of two"
        );
        assert!(shards <= 1 << 16, "shard count cap: 65536");
        let bits = shards.trailing_zeros();
        ShardedTxMap {
            shards: (0..shards)
                .map(|_| Shard {
                    lock: template.clone().build(),
                    map: TxMap::with_capacity(capacity_per_shard),
                    routed: AtomicU64::new(0),
                })
                .collect(),
            // For 1 shard, bits = 0 and a 64-bit shift would be UB; route
            // everything to shard 0 via a full shift of a zeroed index.
            shift: 64 - bits,
        }
    }
}

impl<V: TxWord, B: HtmBackend> ShardedTxMap<V, B> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (wang_mix64(key) >> self.shift) as usize
    }

    #[inline]
    fn route(&self, key: u64) -> &Shard<V, B> {
        let s = &self.shards[self.shard_of(key)];
        // ordering: advisory load counter — uniqueness/ordering of the
        // increments never synchronizes other memory.
        s.routed.fetch_add(1, Ordering::Relaxed);
        s
    }

    /// Runs `f` under `key`'s shard lock — the pessimistic, instrumented
    /// lock-holder path, never speculation. For maintenance operations
    /// that must not run in a hardware transaction (audits, scans with
    /// irrevocable side effects, HTM-unfriendly work): the shard's other
    /// traffic keeps speculating on the instrumented slow path while `f`
    /// runs, and every *other* shard is completely unaffected — the
    /// single-lock pathology (one pessimistic op stalling the whole map)
    /// shrinks to one shard.
    pub fn with_key_shard_locked<R>(
        &self,
        key: u64,
        f: impl FnOnce(&TxMap<V>, &rtle_core::Ctx<'_>) -> R,
    ) -> R {
        self.with_shard_locked(self.shard_of(key), f)
    }

    /// [`Self::with_key_shard_locked`] addressed by shard index instead of
    /// by key — for maintenance that walks the shards themselves
    /// (incremental audits, per-shard compaction sweeps), where the unit
    /// of work is "shard `idx`", not "the shard owning key `k`".
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.shard_count()`.
    pub fn with_shard_locked<R>(
        &self,
        idx: usize,
        f: impl FnOnce(&TxMap<V>, &rtle_core::Ctx<'_>) -> R,
    ) -> R {
        let s = &self.shards[idx];
        // ordering: advisory load counter — see `route`.
        s.routed.fetch_add(1, Ordering::Relaxed);
        let guard = s.lock.lock_section();
        f(&s.map, guard.ctx())
    }

    /// The lock and store of `key`'s shard — the composable-transaction
    /// enrollment surface. `rtle-stm`'s `atomically` adapters fetch the
    /// pair, enroll the lock in the transaction's participant set
    /// (speculative subscription / software presence / ordered pessimistic
    /// acquisition), and route the [`TxMap`] access through the
    /// transaction's own barriers. Direct callers should prefer the
    /// [`Self::get`]-family operations, which drive the shard's own
    /// speculation ladder.
    pub fn shard_parts(&self, key: u64) -> (&ElidableLock<B>, &TxMap<V>) {
        let s = self.route(key);
        // lockcheck: returns the lock/map pair without touching map state;
        // the stm layer enrolls the lock before every access it routes.
        (&s.lock, &s.map)
    }

    /// Looks `key` up. Single-shard: speculates on the key's shard only.
    pub fn get(&self, key: u64) -> Option<V> {
        let s = self.route(key);
        s.lock.execute(|ctx| s.map.get(ctx, key))
    }

    /// Membership probe.
    pub fn contains(&self, key: u64) -> bool {
        let s = self.route(key);
        s.lock.execute(|ctx| s.map.contains(ctx, key))
    }

    /// Inserts or updates `key`; returns the previous value, if any.
    pub fn insert(&self, key: u64, value: V) -> Option<V> {
        let s = self.route(key);
        s.lock.execute(|ctx| s.map.insert(ctx, key, value))
    }

    /// Removes `key`; returns the removed value.
    pub fn remove(&self, key: u64) -> Option<V> {
        let s = self.route(key);
        s.lock.execute(|ctx| s.map.remove(ctx, key))
    }

    /// Runs `f` with every listed shard locked in ascending index order
    /// (the deadlock-freedom spine; see module docs). `idxs` must be
    /// sorted and deduplicated; the guards passed to `f` are parallel to
    /// `idxs`.
    pub(crate) fn with_shards_locked<R>(
        &self,
        idxs: &[usize],
        f: impl FnOnce(&[LockedSection<'_, B>]) -> R,
    ) -> R {
        debug_assert!(idxs.windows(2).all(|w| w[0] < w[1]), "ascending order");
        let guards: Vec<LockedSection<'_, B>> = idxs
            .iter()
            .map(|&i| {
                self.shards[i].routed.fetch_add(1, Ordering::Relaxed);
                self.shards[i].lock.lock_section()
            })
            .collect();
        let r = f(&guards);
        // Release in descending order (Vec drop is front-to-back either
        // way; order does not matter for correctness, only acquisition
        // order does).
        drop(guards);
        r
    }

    /// Atomically reads every key in `keys`, returning values parallel to
    /// the input. Keys within one shard read under a single critical
    /// section; keys spanning shards use the ordered cross-shard path, so
    /// the result is one consistent snapshot across all involved shards.
    pub fn multi_get(&self, keys: &[u64]) -> Vec<Option<V>> {
        if keys.is_empty() {
            return Vec::new();
        }
        let mut idxs: Vec<usize> = keys.iter().map(|&k| self.shard_of(k)).collect();
        let mut sorted = idxs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() == 1 {
            let s = self.route(keys[0]);
            return s
                .lock
                .execute(|ctx| keys.iter().map(|&k| s.map.get(ctx, k)).collect());
        }
        self.with_shards_locked(&sorted, |guards| {
            idxs.iter_mut()
                .zip(keys)
                .map(|(idx, &k)| {
                    let at = sorted
                        .binary_search(idx)
                        .expect("every routed shard index is in the sorted set");
                    self.shards[*idx].map.get(guards[at].ctx(), k)
                })
                .collect()
        })
    }
}

impl<V: TxWord + PartialEq, B: HtmBackend> ShardedTxMap<V, B> {
    /// Atomically compares-and-swaps *two* entries: iff `k1` currently
    /// maps to `expect1` **and** `k2` maps to `expect2`, both are updated
    /// (to `new1`/`new2`) in one transaction. Returns whether the swap
    /// happened. The two keys may live in different shards — the paper's
    /// §3/§4 concurrency story lifted to a sharded setting.
    pub fn compare_and_swap_pair(
        &self,
        (k1, expect1, new1): (u64, V, V),
        (k2, expect2, new2): (u64, V, V),
    ) -> bool {
        let (s1, s2) = (self.shard_of(k1), self.shard_of(k2));
        if s1 == s2 {
            let s = self.route(k1);
            return s.lock.execute(|ctx| {
                let ok = s.map.get(ctx, k1) == Some(expect1)
                    && s.map.get(ctx, k2) == Some(expect2);
                if ok {
                    s.map.insert(ctx, k1, new1);
                    s.map.insert(ctx, k2, new2);
                }
                ok
            });
        }
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        self.with_shards_locked(&[lo, hi], |guards| {
            let (g1, g2) = if s1 == lo {
                (&guards[0], &guards[1])
            } else {
                (&guards[1], &guards[0])
            };
            let ok = self.shards[s1].map.get(g1.ctx(), k1) == Some(expect1)
                && self.shards[s2].map.get(g2.ctx(), k2) == Some(expect2);
            if ok {
                self.shards[s1].map.insert(g1.ctx(), k1, new1);
                self.shards[s2].map.insert(g2.ctx(), k2, new2);
            }
            ok
        })
    }
}

impl<B: HtmBackend> ShardedTxMap<u64, B> {
    /// Atomically moves `amount` from `from`'s balance to `to`'s. Both
    /// accounts must exist and the debit must not overdraw; on any error
    /// neither balance changes. Cross-shard transfers take the ordered
    /// pessimistic path; same-shard transfers speculate like any other
    /// single-shard operation.
    pub fn transfer(&self, from: u64, to: u64, amount: u64) -> Result<(), TransferError> {
        let (sf, st) = (self.shard_of(from), self.shard_of(to));
        if sf == st {
            let s = self.route(from);
            return s.lock.execute(|ctx| {
                Self::transfer_in(&s.map, ctx, &s.map, ctx, from, to, amount)
            });
        }
        let (lo, hi) = if sf < st { (sf, st) } else { (st, sf) };
        self.with_shards_locked(&[lo, hi], |guards| {
            let (gf, gt) = if sf == lo {
                (&guards[0], &guards[1])
            } else {
                (&guards[1], &guards[0])
            };
            Self::transfer_in(
                &self.shards[sf].map,
                gf.ctx(),
                &self.shards[st].map,
                gt.ctx(),
                from,
                to,
                amount,
            )
        })
    }

    /// The transfer body, generic over the two (map, access) legs so the
    /// same logic runs single-shard speculative and cross-shard locked.
    fn transfer_in<A1, A2>(
        from_map: &TxMap<u64>,
        af: &A1,
        to_map: &TxMap<u64>,
        at: &A2,
        from: u64,
        to: u64,
        amount: u64,
    ) -> Result<(), TransferError>
    where
        A1: rtle_htm::TxAccess + ?Sized,
        A2: rtle_htm::TxAccess + ?Sized,
    {
        let bal_from = from_map.get(af, from).ok_or(TransferError::MissingFrom)?;
        let bal_to = to_map.get(at, to).ok_or(TransferError::MissingTo)?;
        if from == to {
            // Degenerate self-transfer: validated, then a no-op.
            return if bal_from >= amount {
                Ok(())
            } else {
                Err(TransferError::Insufficient { balance: bal_from })
            };
        }
        let debited = bal_from
            .checked_sub(amount)
            .ok_or(TransferError::Insufficient { balance: bal_from })?;
        let credited = bal_to.checked_add(amount).ok_or(TransferError::Overflow)?;
        from_map.insert(af, from, debited);
        to_map.insert(at, to, credited);
        Ok(())
    }

    /// Sum of all values (balances). Quiescent use only — races with
    /// in-flight transfers see torn totals.
    pub fn total_plain(&self) -> u64 {
        // lockcheck: quiescent-only diagnostic; torn totals are documented.
        self.shards
            .iter()
            .flat_map(|s| s.map.entries_plain())
            .map(|(_, v)| v)
            .sum()
    }
}

impl<V: TxWord, B: HtmBackend> ShardedTxMap<V, B> {
    /// Live entries across all shards. Quiescent use only.
    pub fn len_plain(&self) -> usize {
        // lockcheck: quiescent-only diagnostic, documented above.
        self.shards.iter().map(|s| s.map.len_plain()).sum()
    }

    /// All entries across all shards, unordered. Quiescent use only.
    pub fn entries_plain(&self) -> Vec<(u64, V)> {
        // lockcheck: quiescent-only diagnostic, documented above.
        self.shards
            .iter()
            .flat_map(|s| s.map.entries_plain())
            .collect()
    }
}

impl<V: TxWord, B: HtmBackend> std::fmt::Debug for ShardedTxMap<V, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTxMap")
            .field("shards", &self.shards.len())
            // lockcheck: capacity is fixed at construction, never mutated.
            .field("capacity_per_shard", &self.shards[0].map.capacity())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_covers_all_shards_and_is_stable() {
        let m: ShardedTxMap = ShardedTxMap::new(16, 64);
        let mut seen = [false; 16];
        for k in 0..4096u64 {
            let s = m.shard_of(k);
            assert!(s < 16);
            assert_eq!(s, m.shard_of(k), "routing must be deterministic");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b), "4096 keys must touch all 16 shards");
    }

    #[test]
    fn one_shard_edge_case_routes_everything_to_zero() {
        let m: ShardedTxMap = ShardedTxMap::new(1, 128);
        for k in [0u64, 1, u64::MAX - 2] {
            assert_eq!(m.shard_of(k), 0);
        }
        assert_eq!(m.insert(5, 50), None);
        assert_eq!(m.get(5), Some(50));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = ShardedTxMap::new(12, 64);
    }

    #[test]
    fn single_key_ops_route_and_work() {
        let m: ShardedTxMap = ShardedTxMap::new(8, 64);
        for k in 0..200u64 {
            assert_eq!(m.insert(k, k + 1000), None);
        }
        for k in 0..200u64 {
            assert_eq!(m.get(k), Some(k + 1000));
            assert!(m.contains(k));
        }
        assert_eq!(m.len_plain(), 200);
        for k in (0..200u64).step_by(2) {
            assert_eq!(m.remove(k), Some(k + 1000));
        }
        assert_eq!(m.len_plain(), 100);
        assert_eq!(m.get(4), None);
        assert_eq!(m.get(5), Some(1005));
    }

    #[test]
    fn multi_get_spans_shards_consistently() {
        let m: ShardedTxMap = ShardedTxMap::new(16, 64);
        let keys: Vec<u64> = (0..64).collect();
        for &k in &keys {
            m.insert(k, k * 2);
        }
        let vals = m.multi_get(&keys);
        assert_eq!(vals.len(), keys.len());
        for (k, v) in keys.iter().zip(&vals) {
            assert_eq!(*v, Some(k * 2));
        }
        assert!(m.multi_get(&[]).is_empty());
        // Repeated + missing keys.
        let vals = m.multi_get(&[3, 3, 9999]);
        assert_eq!(vals, vec![Some(6), Some(6), None]);
    }

    #[test]
    fn cas_pair_same_and_cross_shard() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 64);
        // Find two keys in the same shard and two in different shards.
        let mut same = None;
        let mut cross = None;
        for a in 0..64u64 {
            for b in (a + 1)..64u64 {
                if m.shard_of(a) == m.shard_of(b) && same.is_none() {
                    same = Some((a, b));
                }
                if m.shard_of(a) != m.shard_of(b) && cross.is_none() {
                    cross = Some((a, b));
                }
            }
        }
        for (a, b) in [same.unwrap(), cross.unwrap()] {
            m.insert(a, 1);
            m.insert(b, 2);
            assert!(m.compare_and_swap_pair((a, 1, 10), (b, 2, 20)));
            assert_eq!((m.get(a), m.get(b)), (Some(10), Some(20)));
            // Second CAS against stale expectations must fail untouched.
            assert!(!m.compare_and_swap_pair((a, 1, 99), (b, 20, 99)));
            assert_eq!((m.get(a), m.get(b)), (Some(10), Some(20)));
        }
    }

    #[test]
    fn transfer_conserves_and_validates() {
        let m: ShardedTxMap = ShardedTxMap::new(8, 64);
        m.insert(1, 100);
        m.insert(2, 50);
        assert_eq!(m.transfer(1, 2, 30), Ok(()));
        assert_eq!((m.get(1), m.get(2)), (Some(70), Some(80)));
        assert_eq!(
            m.transfer(1, 2, 71),
            Err(TransferError::Insufficient { balance: 70 })
        );
        assert_eq!(m.transfer(999, 2, 1), Err(TransferError::MissingFrom));
        assert_eq!(m.transfer(1, 999, 1), Err(TransferError::MissingTo));
        assert_eq!(m.total_plain(), 150, "errors must leave balances untouched");
        m.insert(3, u64::MAX);
        assert_eq!(m.transfer(1, 3, 1), Err(TransferError::Overflow));
        assert_eq!(m.get(1), Some(70), "failed credit must not debit");
        // Self-transfer: validated no-op.
        assert_eq!(m.transfer(1, 1, 70), Ok(()));
        assert_eq!(
            m.transfer(1, 1, 71),
            Err(TransferError::Insufficient { balance: 70 })
        );
        assert_eq!(m.get(1), Some(70));
    }
}
