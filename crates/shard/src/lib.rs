#![warn(missing_docs)]
//! # rtle-shard: scaling refined TLE beyond one lock
//!
//! The paper's refined TLE (PPoPP 2016) extracts concurrency *around one
//! lock*: while a thread holds it, instrumented hardware transactions keep
//! committing alongside. This crate composes that primitive horizontally:
//! [`ShardedTxMap`] partitions a `u64 → V` map across a power-of-two
//! number of shards, each protected by its **own** [`rtle_core::ElidableLock`]
//! (own lock word, orec table, epoch, adaptive state), so independent keys
//! never share a conflict domain at all and refined TLE only has to earn
//! its keep *within* a shard.
//!
//! Three things make it more than an array of maps:
//!
//! * **Cross-shard transactions** ([`ShardedTxMap::transfer`],
//!   [`ShardedTxMap::multi_get`], [`ShardedTxMap::compare_and_swap_pair`])
//!   acquire the involved shards pessimistically in ascending shard-index
//!   order — deadlock-free by total order — on the *instrumented*
//!   lock-holder path, so single-shard traffic on those same shards keeps
//!   speculating concurrently (the paper's §3/§4 property, used as a
//!   composition mechanism).
//! * **Batched execution** ([`ShardedTxMap::execute_batch`]) groups
//!   operations by shard and amortizes elision overhead over up to
//!   [`BATCH_CHUNK`] operations per critical section — chunked so one
//!   batch cannot starve concurrent speculators.
//! * **Merged observability** ([`ShardedTxMap::report`]): per-shard
//!   [`rtle_core::StatsSnapshot`]s summed into one lock-shaped aggregate,
//!   load/abort imbalance metrics, and a `kind: "shard-stats"` JSON
//!   export built on `rtle_obs`.
//!
//! Shard configuration reuses the single-lock builder verbatim: pass an
//! [`rtle_core::ElidableLockBuilder`] template to
//! [`ShardedTxMap::with_builder`] and every shard is built from a clone.
//!
//! ```
//! use rtle_core::{ElidableLock, ElisionPolicy};
//! use rtle_shard::ShardedTxMap;
//!
//! let map = ShardedTxMap::with_builder(
//!     16,
//!     1024,
//!     ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }),
//! );
//! map.insert(1, 100);
//! map.insert(2, 50);
//! map.transfer(1, 2, 30).unwrap();
//! assert_eq!(map.multi_get(&[1, 2]), vec![Some(70), Some(80)]);
//! assert_eq!(map.report().merged.ops, map.merged_stats().ops);
//! ```

pub mod batch;
pub mod map;
#[cfg(feature = "mutant-lock-order")]
pub mod mutants;
pub mod obs;
pub mod sharded;

pub use batch::{MapOp, OpResult, BATCH_CHUNK};
pub use map::TxMap;
pub use obs::ShardReport;
pub use sharded::{ShardedTxMap, TransferError, DEFAULT_ORECS_PER_SHARD};
