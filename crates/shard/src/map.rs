//! The per-shard store: a fixed-capacity open-addressing transactional
//! map from `u64` keys to [`TxWord`] values.
//!
//! Same shape as `rtle_structs::TxHashSet` (linear probing, tombstoned
//! deletion, no rehashing) with a value cell colocated in the key's
//! cache-line-padded slot — one conflict line per entry, so FG-TLE orec
//! traffic and HTM read/write sets stay per-entry, never per-table.

use rtle_htm::hash::wang_mix64;
use rtle_htm::{PlainAccess, TxAccess, TxCell, TxWord};

/// Slot encoding for the key word: 0 = never used, 1 = tombstone,
/// key + 2 = occupied.
const EMPTY: u64 = 0;
const TOMBSTONE: u64 = 1;

/// One slot: key word and value, sharing one 64-byte conflict line.
#[repr(align(64))]
#[derive(Debug)]
struct Slot<V: TxWord> {
    key: TxCell<u64>,
    val: TxCell<V>,
}

/// A fixed-capacity transactional `u64 → V` map with linear-probing open
/// addressing. Deletions leave tombstones (probe chains stay intact); the
/// structure never rehashes, so size it at ≥ 2× the expected live keys
/// plus churn. All operations are generic over [`TxAccess`], so the same
/// code runs uninstrumented on the HTM fast path, instrumented on the
/// slow path, and instrumented under the lock.
#[derive(Debug)]
pub struct TxMap<V: TxWord> {
    slots: Box<[Slot<V>]>,
    mask: u64,
    max_key: u64,
}

impl<V: TxWord + Default> TxMap<V> {
    /// Allocates a map with at least `capacity` slots (rounded up to a
    /// power of two). Keys up to `u64::MAX - 2` are supported.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        TxMap {
            slots: (0..cap)
                .map(|_| Slot {
                    key: TxCell::new(EMPTY),
                    val: TxCell::new(V::default()),
                })
                .collect(),
            mask: cap as u64 - 1,
            max_key: u64::MAX - 2,
        }
    }
}

impl<V: TxWord> TxMap<V> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn encode(&self, key: u64) -> u64 {
        assert!(key <= self.max_key, "key too large");
        key + 2
    }

    /// Looks `key` up; `None` when absent. Reads the probe chain only.
    pub fn get<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> Option<V> {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        for _ in 0..self.slots.len() {
            let w = a.load(&self.slots[i as usize].key);
            if w == stored {
                return Some(a.load(&self.slots[i as usize].val));
            }
            if w == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Membership probe without reading the value cell.
    pub fn contains<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        for _ in 0..self.slots.len() {
            let w = a.load(&self.slots[i as usize].key);
            if w == stored {
                return true;
            }
            if w == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
        false
    }

    /// Inserts or updates `key`; returns the previous value, if any.
    pub fn insert<A: TxAccess + ?Sized>(&self, a: &A, key: u64, value: V) -> Option<V> {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        let mut first_tombstone: Option<u64> = None;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[i as usize];
            let w = a.load(&slot.key);
            if w == stored {
                let prev = a.load(&slot.val);
                a.store(&slot.val, value);
                return Some(prev);
            }
            if w == TOMBSTONE && first_tombstone.is_none() {
                first_tombstone = Some(i);
            }
            if w == EMPTY {
                let target = &self.slots[first_tombstone.unwrap_or(i) as usize];
                a.store(&target.val, value);
                a.store(&target.key, stored);
                return None;
            }
            i = (i + 1) & self.mask;
        }
        // No EMPTY found: reuse a tombstone if the probe saw one.
        let t = first_tombstone.expect("TxMap full: size it at >= 2x the expected keys");
        let target = &self.slots[t as usize];
        a.store(&target.val, value);
        a.store(&target.key, stored);
        None
    }

    /// Removes `key`; returns the removed value, `None` if absent.
    pub fn remove<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> Option<V> {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[i as usize];
            let w = a.load(&slot.key);
            if w == stored {
                let prev = a.load(&slot.val);
                a.store(&slot.key, TOMBSTONE);
                return Some(prev);
            }
            if w == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
        None
    }

    /// Live entry count. O(capacity); quiescent use only.
    pub fn len_plain(&self) -> usize {
        let a = PlainAccess;
        self.slots.iter().filter(|s| a.load(&s.key) >= 2).count()
    }

    /// All `(key, value)` entries, unordered. Quiescent use only.
    pub fn entries_plain(&self) -> Vec<(u64, V)> {
        let a = PlainAccess;
        self.slots
            .iter()
            .filter_map(|s| {
                let w = a.load(&s.key);
                if w >= 2 {
                    Some((w - 2, a.load(&s.val)))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let m: TxMap<u64> = TxMap::with_capacity(64);
        let a = PlainAccess;
        assert_eq!(m.get(&a, 7), None);
        assert_eq!(m.insert(&a, 7, 70), None);
        assert_eq!(m.insert(&a, 7, 71), Some(70), "update returns previous");
        assert_eq!(m.get(&a, 7), Some(71));
        assert!(m.contains(&a, 7));
        assert_eq!(m.remove(&a, 7), Some(71));
        assert_eq!(m.remove(&a, 7), None);
        assert_eq!(m.get(&a, 7), None);
        assert_eq!(m.len_plain(), 0);
    }

    #[test]
    fn sentinel_keys_zero_and_one_work() {
        let m: TxMap<u64> = TxMap::with_capacity(16);
        let a = PlainAccess;
        assert_eq!(m.insert(&a, 0, 100), None);
        assert_eq!(m.insert(&a, 1, 101), None);
        assert_eq!(m.get(&a, 0), Some(100));
        assert_eq!(m.get(&a, 1), Some(101));
    }

    #[test]
    fn tombstones_keep_probe_chains_intact() {
        let m: TxMap<u64> = TxMap::with_capacity(8); // force collisions
        let a = PlainAccess;
        for k in 0..5 {
            assert_eq!(m.insert(&a, k, k * 10), None);
        }
        assert_eq!(m.remove(&a, 2), Some(20));
        for k in [0u64, 1, 3, 4] {
            assert_eq!(m.get(&a, k), Some(k * 10), "key {k} lost after tombstoning");
        }
        // Reinsertion reuses the tombstone.
        assert_eq!(m.insert(&a, 2, 22), None);
        assert_eq!(m.len_plain(), 5);
        let mut entries = m.entries_plain();
        entries.sort_unstable();
        assert_eq!(entries[2], (2, 22));
    }

    #[test]
    fn slots_are_line_padded() {
        assert_eq!(std::mem::size_of::<Slot<u64>>(), 64);
        assert_eq!(std::mem::size_of::<Slot<bool>>(), 64);
    }

    #[test]
    #[should_panic(expected = "TxMap full")]
    fn full_map_panics() {
        let m: TxMap<u64> = TxMap::with_capacity(8);
        let a = PlainAccess;
        for k in 0..9 {
            m.insert(&a, k, 0);
        }
    }

    #[test]
    fn non_u64_values_work() {
        let m: TxMap<bool> = TxMap::with_capacity(16);
        let a = PlainAccess;
        assert_eq!(m.insert(&a, 3, true), None);
        assert_eq!(m.get(&a, 3), Some(true));
        assert_eq!(m.insert(&a, 3, false), Some(true));
    }
}
