//! Batched execution: amortize elision overhead by running many
//! operations per critical section, bounded for fairness.
//!
//! # Fairness bound
//!
//! A batch is grouped by destination shard and each shard's group is
//! executed in chunks of at most [`BATCH_CHUNK`] operations per critical
//! section. The bound is what keeps batching compatible with refined
//! TLE's concurrency story: one critical section's footprint is what the
//! slow path must avoid (RW-TLE's `write_flag` window, FG-TLE's orec
//! ownership), so an unbounded batch would let one caller pin a shard's
//! write flag / orec table for the whole batch and starve concurrent
//! speculators. With the chunk bound, any other thread's operation waits
//! behind at most `BATCH_CHUNK` batched operations (plus the retry policy
//! budget) before the shard's lock is released and re-elidable —
//! DESIGN.md §10 states the bound formally.
//!
//! Chunks also bound HTM capacity pressure: a chunk that fits the
//! hardware write set can still commit on the fast path, where a
//! whole-table batch never would.

use rtle_htm::{HtmBackend, TxWord};

use crate::sharded::ShardedTxMap;

/// Maximum operations executed inside one critical section by
/// [`ShardedTxMap::execute_batch`]. See the module docs for why this is a
/// fairness (and HTM-capacity) bound.
pub const BATCH_CHUNK: usize = 64;

/// One operation in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp<V: TxWord> {
    /// Insert or update `key`.
    Insert(u64, V),
    /// Remove `key`.
    Remove(u64),
    /// Look `key` up.
    Get(u64),
    /// Membership probe.
    Contains(u64),
}

impl<V: TxWord> MapOp<V> {
    /// The key this operation touches (every op touches exactly one).
    pub fn key(&self) -> u64 {
        match *self {
            MapOp::Insert(k, _) | MapOp::Remove(k) | MapOp::Get(k) | MapOp::Contains(k) => k,
        }
    }
}

/// Result of one batched operation, parallel to the input op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult<V: TxWord> {
    /// `Insert`/`Remove`: the previous/removed value.
    Value(Option<V>),
    /// `Get`: the current value.
    Found(Option<V>),
    /// `Contains`: membership.
    Present(bool),
}

impl<V: TxWord, B: HtmBackend> ShardedTxMap<V, B> {
    /// Executes `ops` with per-key program order preserved, returning
    /// results parallel to the input. Operations are grouped by
    /// destination shard and each group runs as critical sections of at
    /// most [`BATCH_CHUNK`] operations (the fairness bound — see the
    /// module docs).
    ///
    /// Atomicity granularity is the chunk, not the batch: operations on
    /// *different* keys may interleave with concurrent threads between
    /// chunks. Two operations on the *same* key always route to the same
    /// shard and keep their relative order, because grouping is
    /// order-preserving within a shard.
    pub fn execute_batch(&self, ops: &[MapOp<V>]) -> Vec<OpResult<V>> {
        // Group op indices by shard, preserving submission order within
        // each group (same key ⇒ same shard ⇒ order kept).
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shard_count()];
        for (i, op) in ops.iter().enumerate() {
            groups[self.shard_of(op.key())].push(i);
        }
        let mut results: Vec<Option<OpResult<V>>> = vec![None; ops.len()];
        for (sidx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[sidx];
            let n = group.len() as u64;
            shard.routed.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            for chunk in group.chunks(BATCH_CHUNK) {
                // The closure may run several times (fast path abort →
                // retry → lock path); it only reads `ops` and returns
                // fresh results, so re-execution is harmless. Results are
                // committed to `results` exactly once, after the final
                // (committed) attempt.
                let chunk_results: Vec<OpResult<V>> = shard.lock.execute(|ctx| {
                    chunk
                        .iter()
                        .map(|&i| match ops[i] {
                            MapOp::Insert(k, v) => {
                                OpResult::Value(shard.map.insert(ctx, k, v))
                            }
                            MapOp::Remove(k) => OpResult::Value(shard.map.remove(ctx, k)),
                            MapOp::Get(k) => OpResult::Found(shard.map.get(ctx, k)),
                            MapOp::Contains(k) => {
                                OpResult::Present(shard.map.contains(ctx, k))
                            }
                        })
                        .collect()
                });
                for (&i, r) in chunk.iter().zip(chunk_results) {
                    results[i] = Some(r);
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every op indexed into exactly one shard group"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_parallel_to_input() {
        let m: ShardedTxMap = ShardedTxMap::new(8, 256);
        let ops: Vec<MapOp<u64>> = (0..100).map(|k| MapOp::Insert(k, k * 3)).collect();
        let rs = m.execute_batch(&ops);
        assert_eq!(rs.len(), 100);
        assert!(rs.iter().all(|r| *r == OpResult::Value(None)));

        let ops = vec![
            MapOp::Get(5),
            MapOp::Contains(5),
            MapOp::Remove(5),
            MapOp::Get(5),
            MapOp::Contains(999),
        ];
        assert_eq!(
            m.execute_batch(&ops),
            vec![
                OpResult::Found(Some(15)),
                OpResult::Present(true),
                OpResult::Value(Some(15)),
                OpResult::Found(None),
                OpResult::Present(false),
            ]
        );
    }

    #[test]
    fn per_key_order_is_preserved() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 64);
        // Same key repeatedly: later ops must observe earlier ones.
        let ops = vec![
            MapOp::Insert(7, 1),
            MapOp::Insert(7, 2),
            MapOp::Get(7),
            MapOp::Remove(7),
            MapOp::Get(7),
        ];
        assert_eq!(
            m.execute_batch(&ops),
            vec![
                OpResult::Value(None),
                OpResult::Value(Some(1)),
                OpResult::Found(Some(2)),
                OpResult::Value(Some(2)),
                OpResult::Found(None),
            ]
        );
    }

    #[test]
    fn batches_larger_than_the_chunk_bound_split() {
        let m: ShardedTxMap = ShardedTxMap::new(1, 2048); // one shard: one group of 500
        let ops: Vec<MapOp<u64>> = (0..500).map(|k| MapOp::Insert(k, k)).collect();
        let rs = m.execute_batch(&ops);
        assert_eq!(rs.len(), 500);
        assert_eq!(m.len_plain(), 500);
        // 500 ops / 64 per chunk = 8 critical sections on shard 0.
        let snap = m.shard_stats()[0];
        assert!(
            snap.ops >= 500 / BATCH_CHUNK as u64,
            "expected at least ceil(500/64) critical sections, saw {}",
            snap.ops
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 64);
        assert!(m.execute_batch(&[]).is_empty());
    }
}
