//! Merged observability for [`ShardedTxMap`]: per-shard stats snapshots
//! aggregated into one lock-shaped view, per-shard load/abort imbalance
//! metrics fed by routing counters and the orec conflict heatmap, and a
//! single JSON export (`kind: "shard-stats"`) that downstream tooling
//! consumes the same way it consumes single-lock snapshots.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rtle_core::StatsSnapshot;
use rtle_htm::{HtmBackend, TxWord};
use rtle_obs::{Json, LiveSource, MetricsRegistry, SourceSnapshot, SCHEMA_VERSION};

use crate::sharded::ShardedTxMap;

/// Aggregated view of one [`ShardedTxMap`]'s shards at a point in time.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// One stats snapshot per shard, in shard-index order.
    pub per_shard: Vec<StatsSnapshot>,
    /// Field-wise sum of `per_shard` — the single-lock-shaped aggregate.
    pub merged: StatsSnapshot,
    /// Operations routed to each shard (single-key + batch + cross-shard
    /// legs), in shard-index order.
    pub routed: Vec<u64>,
    /// Orec-heatmap conflict totals per shard (0 for policies without
    /// orecs) — the "which shard's footprint is actually contended"
    /// signal, as opposed to `routed`'s "which shard is merely busy".
    pub heat_conflicts: Vec<u64>,
    /// Merged windowed time series, when the shards were built (via
    /// [`ShardedTxMap::with_builder`]) around a shared recorder with
    /// windowing configured. All shards feed the same per-thread stripes,
    /// so each entry is already the cross-shard merged window — the same
    /// series the collapse watchdog inspects. Empty without a recorder.
    pub windows: Vec<rtle_obs::WindowSnapshot>,
    /// Name of the software-TM fallback the shards would currently run
    /// (`None` when built without one). `with_builder` clones one
    /// template per shard, so every shard holds the same backend `Arc`s
    /// and the first shard's selection is the map's.
    pub software_backend: Option<&'static str>,
}

/// `max / mean` of a counter vector: 1.0 = perfectly balanced,
/// `shards as f64` = everything on one shard, 0.0 when all zero.
fn imbalance(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

impl ShardReport {
    /// Routing imbalance: `max(routed) / mean(routed)`. Near 1.0 means
    /// the Wang mix is spreading the key space evenly; a hot-key workload
    /// shows up here first.
    pub fn load_imbalance(&self) -> f64 {
        imbalance(&self.routed)
    }

    /// Abort imbalance: `max / mean` of per-shard total HTM aborts.
    /// Routing can be balanced while conflicts concentrate (e.g. all
    /// writers hash-adjacent in one shard); this metric catches that.
    pub fn abort_imbalance(&self) -> f64 {
        let aborts: Vec<u64> = self
            .per_shard
            .iter()
            .map(|s| s.fast_aborts.saturating_add(s.slow_aborts))
            .collect();
        imbalance(&aborts)
    }

    /// The JSON export document (`kind: "shard-stats"`). Layout mirrors
    /// the perf-baseline documents: a `kind` discriminator and
    /// `schema_version` at top level, aggregate metrics flat, per-shard
    /// detail in an array.
    pub fn to_json(&self) -> Json {
        let shards: Vec<Json> = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::obj([
                    ("shard", Json::UInt(i as u64)),
                    ("ops", Json::UInt(s.ops)),
                    ("fast_commits", Json::UInt(s.fast_commits)),
                    ("slow_commits", Json::UInt(s.slow_commits)),
                    ("lock_acquisitions", Json::UInt(s.lock_acquisitions)),
                    ("fast_aborts", Json::UInt(s.fast_aborts)),
                    ("slow_aborts", Json::UInt(s.slow_aborts)),
                    ("routed", Json::UInt(self.routed[i])),
                    ("heat_conflicts", Json::UInt(self.heat_conflicts[i])),
                ])
            })
            .collect();
        let mut doc = Json::obj([
            ("kind", Json::Str("shard-stats".into())),
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("shards", Json::UInt(self.per_shard.len() as u64)),
            ("ops", Json::UInt(self.merged.ops)),
            ("fast_commits", Json::UInt(self.merged.fast_commits)),
            ("slow_commits", Json::UInt(self.merged.slow_commits)),
            ("lock_acquisitions", Json::UInt(self.merged.lock_acquisitions)),
            ("fast_aborts", Json::UInt(self.merged.fast_aborts)),
            ("slow_aborts", Json::UInt(self.merged.slow_aborts)),
            ("lock_fallback_rate", Json::Num(self.merged.lock_fallback_rate())),
            ("load_imbalance", Json::Num(self.load_imbalance())),
            ("abort_imbalance", Json::Num(self.abort_imbalance())),
            ("per_shard", Json::Arr(shards)),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(rtle_obs::WindowSnapshot::to_json)
                        .collect(),
                ),
            ),
        ]);
        if let (Some(name), Json::Obj(m)) = (self.software_backend, &mut doc) {
            m.insert("software_backend".to_string(), Json::Str(name.into()));
        }
        doc
    }
}

impl<V: TxWord, B: HtmBackend> ShardedTxMap<V, B> {
    /// Per-shard stats snapshots, in shard-index order.
    pub fn shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(|s| s.lock.stats().snapshot()).collect()
    }

    /// All shards' counters summed into one lock-shaped snapshot.
    pub fn merged_stats(&self) -> StatsSnapshot {
        self.shard_stats()
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(s))
    }

    /// Operations routed per shard, in shard-index order.
    pub fn routed_counts(&self) -> Vec<u64> {
        self.shards
            .iter()
            // ordering: advisory load counter (see `Shard::routed`).
            .map(|s| s.routed.load(Ordering::Relaxed))
            .collect()
    }

    /// One consistent-enough report over all shards.
    pub fn report(&self) -> ShardReport {
        let per_shard = self.shard_stats();
        let merged = per_shard
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(s));
        // `with_builder` clones one template per shard, so every shard
        // holds the same `Arc<Recorder>` — the first shard's window
        // series is already the cross-shard merge.
        let windows = self
            .shards
            .first()
            .and_then(|s| s.lock.recorder())
            .and_then(|r| r.windows())
            .map_or_else(Vec::new, |w| w.series());
        ShardReport {
            windows,
            heat_conflicts: self
                .shards
                .iter()
                .map(|s| {
                    s.lock
                        .orec_heatmap()
                        .map_or(0, |h| h.total_conflicts())
                })
                .collect(),
            routed: self.routed_counts(),
            software_backend: self.software_backend_name(),
            per_shard,
            merged,
        }
    }

    /// Name of the software-TM fallback the shards would currently run,
    /// or `None` without one (all shards share the template's backends,
    /// so the first shard answers for the map).
    pub fn software_backend_name(&self) -> Option<&'static str> {
        self.shards
            .first()
            .and_then(|s| s.lock.software_backend_name())
    }
}

/// Live-registry view of the whole map: merged commit-path counters plus
/// the imbalance gauges only the sharded layer can compute. Window series
/// are deliberately *not* duplicated here — when the shards share a
/// windowed recorder, [`ShardedTxMap::register_live`] registers that
/// recorder as its own source and the windows arrive through it.
impl<V: TxWord, B: HtmBackend> LiveSource for ShardedTxMap<V, B>
where
    ShardedTxMap<V, B>: Send + Sync,
{
    fn live_snapshot(&self) -> SourceSnapshot {
        let report = self.report();
        let m = &report.merged;
        SourceSnapshot {
            kind: "shard_map",
            counters: vec![
                ("shards".into(), self.shard_count() as u64),
                ("ops".into(), m.ops),
                ("commits_fast_htm".into(), m.fast_commits),
                ("commits_slow_htm".into(), m.slow_commits),
                ("commits_stm".into(), m.stm_commits),
                ("commits_lock".into(), m.lock_acquisitions),
                ("aborts_fast".into(), m.fast_aborts),
                ("aborts_slow".into(), m.slow_aborts),
                ("routed_total".into(), report.routed.iter().sum()),
                (
                    "heat_conflicts_total".into(),
                    report.heat_conflicts.iter().sum(),
                ),
            ],
            gauges: vec![
                ("load_imbalance".into(), report.load_imbalance()),
                ("abort_imbalance".into(), report.abort_imbalance()),
                ("lock_fallback_rate".into(), m.lock_fallback_rate()),
            ],
            windows: Vec::new(),
            labels: report
                .software_backend
                .map(|n| ("software_backend".to_string(), n.to_string()))
                .into_iter()
                .collect(),
        }
    }
}

impl<V: TxWord + 'static, B: HtmBackend + 'static> ShardedTxMap<V, B>
where
    ShardedTxMap<V, B>: Send + Sync,
{
    /// Shard-side equivalent of `ElidableLock::builder().with_live(..)`:
    /// registers this map with `registry` under `name`, and — when the
    /// shards were built around a shared recorder — registers that
    /// recorder too (as `<name>_recorder`), so the commit-path mix,
    /// latency percentiles, and per-window series all reach the same
    /// scrape endpoint as the imbalance gauges.
    pub fn register_live(self: &Arc<Self>, registry: &MetricsRegistry, name: &str) {
        registry.register(name, Arc::clone(self) as Arc<dyn LiveSource>);
        // `with_builder` clones one template per shard, so the first
        // shard's recorder is the shared cross-shard one.
        if let Some(rec) = self.shards.first().and_then(|s| s.lock.recorder()) {
            registry.register(
                format!("{name}_recorder"),
                Arc::clone(rec) as Arc<dyn LiveSource>,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtle_obs::parse_json;

    #[test]
    fn merged_stats_sum_per_shard() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 128);
        for k in 0..300u64 {
            m.insert(k, k);
        }
        let per = m.shard_stats();
        let merged = m.merged_stats();
        assert_eq!(per.len(), 4);
        assert_eq!(merged.ops, per.iter().map(|s| s.ops).sum::<u64>());
        assert_eq!(merged.ops, 300, "one critical section per insert");
        let commits = merged.fast_commits + merged.slow_commits + merged.lock_acquisitions;
        assert_eq!(commits, 300, "every op committed on exactly one path");
    }

    #[test]
    fn routed_counts_track_all_entry_points() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 128);
        m.insert(1, 10);
        m.insert(2, 20);
        m.get(1);
        m.transfer(1, 2, 5).unwrap();
        let routed: u64 = m.routed_counts().iter().sum();
        // 3 single-key ops + transfer (1 same-shard or 2 cross-shard legs).
        assert!((4..=5).contains(&routed), "routed = {routed}");
    }

    #[test]
    fn imbalance_metrics_behave() {
        assert_eq!(imbalance(&[0, 0, 0]), 0.0);
        assert!((imbalance(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[8, 0, 0, 0]) - 4.0).abs() < 1e-12, "all-on-one = shard count");
    }

    #[test]
    fn report_carries_the_merged_window_series() {
        use rtle_core::ElidableLock;
        use rtle_obs::{ObsConfig, Recorder};
        use std::sync::Arc;

        let rec = Arc::new(Recorder::new(ObsConfig {
            window_len_ms: 1_000,
            ..ObsConfig::default()
        }));
        let m: ShardedTxMap =
            ShardedTxMap::with_builder(4, 64, ElidableLock::builder().recorder(Arc::clone(&rec)));
        for k in 0..200u64 {
            m.insert(k, k);
        }
        // Without a rotation nothing has closed yet.
        assert!(m.report().windows.is_empty());
        rec.windows().expect("windowing configured").rotate();
        let report = m.report();
        assert_eq!(report.windows.len(), 1, "one closed window");
        let w = &report.windows[0];
        assert_eq!(
            w.counts.total_commits(),
            200,
            "window merges commits from every shard"
        );
        let doc = report.to_json();
        let back = parse_json(&doc.to_string_pretty()).expect("export parses");
        let ws = back.get("windows").and_then(Json::as_arr).expect("windows array");
        assert_eq!(ws.len(), 1);
        let round = rtle_obs::WindowSnapshot::from_json(&ws[0]).expect("window round-trips");
        assert_eq!(round.counts.total_commits(), 200);

        // A recorder-less map exports an empty series, not a missing key.
        let plain: ShardedTxMap = ShardedTxMap::new(4, 64);
        plain.insert(1, 1);
        let bare = parse_json(&plain.report().to_json().to_string_pretty()).unwrap();
        assert_eq!(bare.get("windows").and_then(Json::as_arr).map(<[_]>::len), Some(0));
    }

    #[test]
    fn register_live_exposes_map_and_shared_recorder() {
        use rtle_core::ElidableLock;
        use rtle_obs::{ObsConfig, Recorder};

        let rec = Arc::new(Recorder::new(ObsConfig::default()));
        let m: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::with_builder(
            4,
            64,
            ElidableLock::builder().recorder(Arc::clone(&rec)),
        ));
        for k in 0..150u64 {
            m.insert(k, k);
        }
        let registry = MetricsRegistry::new();
        m.register_live(&registry, "bank");
        assert_eq!(registry.len(), 2, "map + shared recorder");

        let scrape = registry.scrape();
        let map_src = scrape
            .iter()
            .find(|(n, _)| n == "bank")
            .map(|(_, s)| s)
            .expect("map source registered");
        assert_eq!(map_src.kind, "shard_map");
        let counter = |key: &str| {
            map_src
                .counters
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("counter {key} missing"))
        };
        assert_eq!(counter("ops"), 150);
        assert_eq!(counter("shards"), 4);
        assert_eq!(counter("routed_total"), 150);
        let commits =
            counter("commits_fast_htm") + counter("commits_slow_htm") + counter("commits_lock");
        assert_eq!(commits, 150, "every insert committed on exactly one path");
        assert!(
            map_src.gauges.iter().any(|(k, _)| k == "load_imbalance"),
            "imbalance gauges present"
        );
        assert!(map_src.windows.is_empty(), "windows come via the recorder source");

        let rec_src = scrape
            .iter()
            .find(|(n, _)| n == "bank_recorder")
            .map(|(_, s)| s)
            .expect("shared recorder registered");
        assert_eq!(rec_src.kind, "recorder");

        // A recorder-less map registers only itself.
        let plain: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::new(2, 64));
        let solo = MetricsRegistry::new();
        plain.register_live(&solo, "plain");
        assert_eq!(solo.len(), 1);

        // The prometheus rendering carries the shard-map labels.
        let text = registry.to_prometheus();
        assert!(
            text.contains(r#"rtle_ops{source="bank",kind="shard_map"}"#),
            "prometheus text:\n{text}"
        );
    }

    /// A software-TM fallback registered on the builder template flows
    /// through every shard into the report, the JSON export, and the
    /// live-snapshot identity label.
    #[test]
    fn software_backend_flows_through_report_json_and_live_label() {
        use rtle_core::ElidableLock;
        use rtle_hytm::Tl2;

        let tl2 = Arc::new(Tl2::new());
        let m: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::with_builder(
            4,
            64,
            ElidableLock::builder().with_software_backend(tl2),
        ));
        for k in 0..100u64 {
            m.insert(k, k);
        }
        assert_eq!(m.software_backend_name(), Some("tl2"));
        let report = m.report();
        assert_eq!(report.software_backend, Some("tl2"));
        let back = parse_json(&report.to_json().to_string_pretty()).unwrap();
        assert_eq!(
            back.get("software_backend").and_then(Json::as_str),
            Some("tl2")
        );
        let snap = m.live_snapshot();
        assert_eq!(
            snap.labels,
            vec![("software_backend".to_string(), "tl2".to_string())]
        );

        // Without a fallback: no label, no JSON key.
        let plain: ShardedTxMap = ShardedTxMap::new(2, 64);
        plain.insert(1, 1);
        assert_eq!(plain.software_backend_name(), None);
        assert!(plain.live_snapshot().labels.is_empty());
        let bare = parse_json(&plain.report().to_json().to_string_pretty()).unwrap();
        assert!(bare.get("software_backend").is_none());
    }

    #[test]
    fn json_export_round_trips_and_has_the_contract_fields() {
        let m: ShardedTxMap = ShardedTxMap::new(8, 128);
        for k in 0..200u64 {
            m.insert(k, k);
        }
        let doc = m.report().to_json();
        let text = doc.to_string_pretty();
        let back = parse_json(&text).expect("export must parse with our own parser");
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("shard-stats"));
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(back.get("shards").and_then(Json::as_u64), Some(8));
        assert_eq!(back.get("ops").and_then(Json::as_u64), Some(200));
        let per = match back.get("per_shard") {
            Some(Json::Arr(v)) => v,
            other => panic!("per_shard must be an array, got {other:?}"),
        };
        assert_eq!(per.len(), 8);
        let routed_sum: u64 = per
            .iter()
            .map(|s| s.get("routed").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(routed_sum, 200);
        assert!(back.get("load_imbalance").is_some());
        assert!(back.get("abort_imbalance").is_some());
    }
}
