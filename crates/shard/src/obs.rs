//! Merged observability for [`ShardedTxMap`]: per-shard stats snapshots
//! aggregated into one lock-shaped view, per-shard load/abort imbalance
//! metrics fed by routing counters and the orec conflict heatmap, and a
//! single JSON export (`kind: "shard-stats"`) that downstream tooling
//! consumes the same way it consumes single-lock snapshots.

use std::sync::atomic::Ordering;

use rtle_core::StatsSnapshot;
use rtle_htm::{HtmBackend, TxWord};
use rtle_obs::{Json, SCHEMA_VERSION};

use crate::sharded::ShardedTxMap;

/// Aggregated view of one [`ShardedTxMap`]'s shards at a point in time.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// One stats snapshot per shard, in shard-index order.
    pub per_shard: Vec<StatsSnapshot>,
    /// Field-wise sum of `per_shard` — the single-lock-shaped aggregate.
    pub merged: StatsSnapshot,
    /// Operations routed to each shard (single-key + batch + cross-shard
    /// legs), in shard-index order.
    pub routed: Vec<u64>,
    /// Orec-heatmap conflict totals per shard (0 for policies without
    /// orecs) — the "which shard's footprint is actually contended"
    /// signal, as opposed to `routed`'s "which shard is merely busy".
    pub heat_conflicts: Vec<u64>,
    /// Merged windowed time series, when the shards were built (via
    /// [`ShardedTxMap::with_builder`]) around a shared recorder with
    /// windowing configured. All shards feed the same per-thread stripes,
    /// so each entry is already the cross-shard merged window — the same
    /// series the collapse watchdog inspects. Empty without a recorder.
    pub windows: Vec<rtle_obs::WindowSnapshot>,
}

/// `max / mean` of a counter vector: 1.0 = perfectly balanced,
/// `shards as f64` = everything on one shard, 0.0 when all zero.
fn imbalance(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

impl ShardReport {
    /// Routing imbalance: `max(routed) / mean(routed)`. Near 1.0 means
    /// the Wang mix is spreading the key space evenly; a hot-key workload
    /// shows up here first.
    pub fn load_imbalance(&self) -> f64 {
        imbalance(&self.routed)
    }

    /// Abort imbalance: `max / mean` of per-shard total HTM aborts.
    /// Routing can be balanced while conflicts concentrate (e.g. all
    /// writers hash-adjacent in one shard); this metric catches that.
    pub fn abort_imbalance(&self) -> f64 {
        let aborts: Vec<u64> = self
            .per_shard
            .iter()
            .map(|s| s.fast_aborts.saturating_add(s.slow_aborts))
            .collect();
        imbalance(&aborts)
    }

    /// The JSON export document (`kind: "shard-stats"`). Layout mirrors
    /// the perf-baseline documents: a `kind` discriminator and
    /// `schema_version` at top level, aggregate metrics flat, per-shard
    /// detail in an array.
    pub fn to_json(&self) -> Json {
        let shards: Vec<Json> = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::obj([
                    ("shard", Json::UInt(i as u64)),
                    ("ops", Json::UInt(s.ops)),
                    ("fast_commits", Json::UInt(s.fast_commits)),
                    ("slow_commits", Json::UInt(s.slow_commits)),
                    ("lock_acquisitions", Json::UInt(s.lock_acquisitions)),
                    ("fast_aborts", Json::UInt(s.fast_aborts)),
                    ("slow_aborts", Json::UInt(s.slow_aborts)),
                    ("routed", Json::UInt(self.routed[i])),
                    ("heat_conflicts", Json::UInt(self.heat_conflicts[i])),
                ])
            })
            .collect();
        Json::obj([
            ("kind", Json::Str("shard-stats".into())),
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("shards", Json::UInt(self.per_shard.len() as u64)),
            ("ops", Json::UInt(self.merged.ops)),
            ("fast_commits", Json::UInt(self.merged.fast_commits)),
            ("slow_commits", Json::UInt(self.merged.slow_commits)),
            ("lock_acquisitions", Json::UInt(self.merged.lock_acquisitions)),
            ("fast_aborts", Json::UInt(self.merged.fast_aborts)),
            ("slow_aborts", Json::UInt(self.merged.slow_aborts)),
            ("lock_fallback_rate", Json::Num(self.merged.lock_fallback_rate())),
            ("load_imbalance", Json::Num(self.load_imbalance())),
            ("abort_imbalance", Json::Num(self.abort_imbalance())),
            ("per_shard", Json::Arr(shards)),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(rtle_obs::WindowSnapshot::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

impl<V: TxWord, B: HtmBackend> ShardedTxMap<V, B> {
    /// Per-shard stats snapshots, in shard-index order.
    pub fn shard_stats(&self) -> Vec<StatsSnapshot> {
        self.shards.iter().map(|s| s.lock.stats().snapshot()).collect()
    }

    /// All shards' counters summed into one lock-shaped snapshot.
    pub fn merged_stats(&self) -> StatsSnapshot {
        self.shard_stats()
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(s))
    }

    /// Operations routed per shard, in shard-index order.
    pub fn routed_counts(&self) -> Vec<u64> {
        self.shards
            .iter()
            // ordering: advisory load counter (see `Shard::routed`).
            .map(|s| s.routed.load(Ordering::Relaxed))
            .collect()
    }

    /// One consistent-enough report over all shards.
    pub fn report(&self) -> ShardReport {
        let per_shard = self.shard_stats();
        let merged = per_shard
            .iter()
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(s));
        // `with_builder` clones one template per shard, so every shard
        // holds the same `Arc<Recorder>` — the first shard's window
        // series is already the cross-shard merge.
        let windows = self
            .shards
            .first()
            .and_then(|s| s.lock.recorder())
            .and_then(|r| r.windows())
            .map_or_else(Vec::new, |w| w.series());
        ShardReport {
            windows,
            heat_conflicts: self
                .shards
                .iter()
                .map(|s| {
                    s.lock
                        .orec_heatmap()
                        .map_or(0, |h| h.total_conflicts())
                })
                .collect(),
            routed: self.routed_counts(),
            per_shard,
            merged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtle_obs::parse_json;

    #[test]
    fn merged_stats_sum_per_shard() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 128);
        for k in 0..300u64 {
            m.insert(k, k);
        }
        let per = m.shard_stats();
        let merged = m.merged_stats();
        assert_eq!(per.len(), 4);
        assert_eq!(merged.ops, per.iter().map(|s| s.ops).sum::<u64>());
        assert_eq!(merged.ops, 300, "one critical section per insert");
        let commits = merged.fast_commits + merged.slow_commits + merged.lock_acquisitions;
        assert_eq!(commits, 300, "every op committed on exactly one path");
    }

    #[test]
    fn routed_counts_track_all_entry_points() {
        let m: ShardedTxMap = ShardedTxMap::new(4, 128);
        m.insert(1, 10);
        m.insert(2, 20);
        m.get(1);
        m.transfer(1, 2, 5).unwrap();
        let routed: u64 = m.routed_counts().iter().sum();
        // 3 single-key ops + transfer (1 same-shard or 2 cross-shard legs).
        assert!((4..=5).contains(&routed), "routed = {routed}");
    }

    #[test]
    fn imbalance_metrics_behave() {
        assert_eq!(imbalance(&[0, 0, 0]), 0.0);
        assert!((imbalance(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[8, 0, 0, 0]) - 4.0).abs() < 1e-12, "all-on-one = shard count");
    }

    #[test]
    fn report_carries_the_merged_window_series() {
        use rtle_core::ElidableLock;
        use rtle_obs::{ObsConfig, Recorder};
        use std::sync::Arc;

        let rec = Arc::new(Recorder::new(ObsConfig {
            window_len_ms: 1_000,
            ..ObsConfig::default()
        }));
        let m: ShardedTxMap =
            ShardedTxMap::with_builder(4, 64, ElidableLock::builder().recorder(Arc::clone(&rec)));
        for k in 0..200u64 {
            m.insert(k, k);
        }
        // Without a rotation nothing has closed yet.
        assert!(m.report().windows.is_empty());
        rec.windows().expect("windowing configured").rotate();
        let report = m.report();
        assert_eq!(report.windows.len(), 1, "one closed window");
        let w = &report.windows[0];
        assert_eq!(
            w.counts.total_commits(),
            200,
            "window merges commits from every shard"
        );
        let doc = report.to_json();
        let back = parse_json(&doc.to_string_pretty()).expect("export parses");
        let ws = back.get("windows").and_then(Json::as_arr).expect("windows array");
        assert_eq!(ws.len(), 1);
        let round = rtle_obs::WindowSnapshot::from_json(&ws[0]).expect("window round-trips");
        assert_eq!(round.counts.total_commits(), 200);

        // A recorder-less map exports an empty series, not a missing key.
        let plain: ShardedTxMap = ShardedTxMap::new(4, 64);
        plain.insert(1, 1);
        let bare = parse_json(&plain.report().to_json().to_string_pretty()).unwrap();
        assert_eq!(bare.get("windows").and_then(Json::as_arr).map(<[_]>::len), Some(0));
    }

    #[test]
    fn json_export_round_trips_and_has_the_contract_fields() {
        let m: ShardedTxMap = ShardedTxMap::new(8, 128);
        for k in 0..200u64 {
            m.insert(k, k);
        }
        let doc = m.report().to_json();
        let text = doc.to_string_pretty();
        let back = parse_json(&text).expect("export must parse with our own parser");
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("shard-stats"));
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(back.get("shards").and_then(Json::as_u64), Some(8));
        assert_eq!(back.get("ops").and_then(Json::as_u64), Some(200));
        let per = match back.get("per_shard") {
            Some(Json::Arr(v)) => v,
            other => panic!("per_shard must be an array, got {other:?}"),
        };
        assert_eq!(per.len(), 8);
        let routed_sum: u64 = per
            .iter()
            .map(|s| s.get("routed").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(routed_sum, 200);
        assert!(back.get("load_imbalance").is_some());
        assert!(back.get("abort_imbalance").is_some());
    }
}
