//! Seeded analyzer mutants — deliberately broken code the static
//! analyzer must catch.
//!
//! Same contract as the model checker's `tle-lazyunsafe-mutant`: the
//! mutant is compiled only behind an off-by-default cargo feature so it
//! can never ship, but its *source* is always visible to `rtle-check
//! analyze`, whose lock-order pass must report the descending
//! acquisition below. The tier-1 script fails if the mutant goes
//! unreported (analyzer regression) and separately type-checks this file
//! with the feature enabled so the seeded code cannot rot.

use rtle_htm::{HtmBackend, TxWord};

use crate::sharded::ShardedTxMap;

impl<V: TxWord, B: HtmBackend> ShardedTxMap<V, B> {
    /// Atomically swaps the values stored under `k1` and `k2`, *with the
    /// deadlock-freedom spine deliberately broken*: when the keys span
    /// shards, the locks are acquired in **descending** index order.
    /// Run concurrently against any correctly ascending cross-shard
    /// operation, this can deadlock — exactly the bug the lock-order
    /// pass exists to reject at analysis time.
    #[cfg(feature = "mutant-lock-order")]
    pub fn swap_values_descending(&self, k1: u64, k2: u64) -> bool {
        let (s1, s2) = (self.shard_of(k1), self.shard_of(k2));
        if s1 == s2 {
            let s = &self.shards[s1];
            return s.lock.execute(|ctx| match (s.map.get(ctx, k1), s.map.get(ctx, k2)) {
                (Some(v1), Some(v2)) => {
                    s.map.insert(ctx, k1, v2);
                    s.map.insert(ctx, k2, v1);
                    true
                }
                _ => false,
            });
        }
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        // BUG (seeded): `hi` is locked while `lo` is still wanted — the
        // exact index descent the module docs prove impossible for the
        // real cross-shard operations.
        let g_hi = self.shards[hi].lock.lock_section();
        let g_lo = self.shards[lo].lock.lock_section();
        let (g1, g2) = if s1 == lo { (&g_lo, &g_hi) } else { (&g_hi, &g_lo) };
        match (
            self.shards[s1].map.get(g1.ctx(), k1),
            self.shards[s2].map.get(g2.ctx(), k2),
        ) {
            (Some(v1), Some(v2)) => {
                self.shards[s1].map.insert(g1.ctx(), k1, v2);
                self.shards[s2].map.insert(g2.ctx(), k2, v1);
                true
            }
            _ => false,
        }
    }
}
