//! Differential proptests: `ShardedTxMap` against a single-`Mutex`
//! `BTreeMap` oracle, driven by the shared `rtle_fuzz::ops` generator
//! family so the sharded map is hammered by the exact streams (uniform,
//! duplicate-key churn, skewed) that the AVL proptests and chaos workers
//! already draw from. Every operation's *result* must match the oracle
//! op-for-op, and the final entry sets must be identical.

use std::collections::BTreeMap;
use std::sync::Mutex;

use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_fuzz::ops::{gen_ops, gen_ops_churn, gen_ops_skewed, SetOp};
use rtle_htm::prng::SplitMix64;
use rtle_shard::{MapOp, OpResult, ShardedTxMap};

/// Deterministic value for a key, so value agreement is checked too (a
/// set-shaped oracle would miss value tearing).
fn val_for(k: u64, round: u64) -> u64 {
    k.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(round)
}

/// Applies one `SetOp` to the oracle, returning the map-shaped result.
fn apply_oracle(op: SetOp, round: u64, model: &Mutex<BTreeMap<u64, u64>>) -> Option<u64> {
    let mut m = model.lock().expect("oracle mutex");
    match op {
        SetOp::Insert(k) => m.insert(k, val_for(k, round)),
        SetOp::Remove(k) => m.remove(&k),
        SetOp::Contains(k) => m.get(&k).copied(),
    }
}

/// Applies the same op to the sharded map, mirroring the oracle's shape.
fn apply_sharded(op: SetOp, round: u64, map: &ShardedTxMap) -> Option<u64> {
    match op {
        SetOp::Insert(k) => map.insert(k, val_for(k, round)),
        SetOp::Remove(k) => map.remove(k),
        SetOp::Contains(k) => map.get(k),
    }
}

fn final_states_match(map: &ShardedTxMap, model: &Mutex<BTreeMap<u64, u64>>, label: &str) {
    let mut entries = map.entries_plain();
    entries.sort_unstable();
    let model_entries: Vec<(u64, u64)> = model
        .lock()
        .expect("oracle mutex")
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect();
    assert_eq!(entries, model_entries, "[{label}] final entry sets diverge");
}

#[test]
fn uniform_streams_agree_across_shard_counts() {
    let mut rng = SplitMix64::new(0x5aad_0001);
    for shards in [1usize, 2, 16] {
        for case in 0..24u64 {
            let map: ShardedTxMap = ShardedTxMap::new(shards, 1024);
            let model = Mutex::new(BTreeMap::new());
            for (i, op) in gen_ops(&mut rng, 96, 50, 400).into_iter().enumerate() {
                let round = case.wrapping_mul(1000) + i as u64;
                assert_eq!(
                    apply_sharded(op, round, &map),
                    apply_oracle(op, round, &model),
                    "[{shards} shards, case {case}] result diverged on {op:?}"
                );
            }
            final_states_match(&map, &model, &format!("{shards} shards, case {case}"));
        }
    }
}

#[test]
fn churn_and_skewed_streams_agree() {
    let mut rng = SplitMix64::new(0x5aad_0002);
    for case in 0..12u64 {
        let map: ShardedTxMap = ShardedTxMap::new(8, 2048);
        let model = Mutex::new(BTreeMap::new());
        // Churn hammers tombstone reuse in a handful of slots; skewed
        // clusters probe chains (and shard routing) on the low keys.
        let mut ops = gen_ops_churn(&mut rng, 6, 500);
        ops.extend(gen_ops_skewed(&mut rng, 512, 500));
        for (i, op) in ops.into_iter().enumerate() {
            let round = case.wrapping_mul(10_000) + i as u64;
            assert_eq!(
                apply_sharded(op, round, &map),
                apply_oracle(op, round, &model),
                "[case {case}] result diverged on {op:?}"
            );
        }
        final_states_match(&map, &model, &format!("case {case}"));
    }
}

/// The batch API must agree with the oracle op-for-op as well — results
/// come back parallel to the input, and per-key program order within one
/// batch must hold (`gen_ops_churn` guarantees heavy same-key traffic, so
/// this is exercised, not hoped for).
#[test]
fn batched_execution_agrees_with_oracle() {
    let mut rng = SplitMix64::new(0x5aad_0003);
    for case in 0..12u64 {
        let map: ShardedTxMap = ShardedTxMap::with_builder(
            4,
            1024,
            ElidableLock::builder().policy(ElisionPolicy::RwTle),
        );
        let model = Mutex::new(BTreeMap::new());
        for batch_no in 0..6u64 {
            let ops = gen_ops_churn(&mut rng, 24, 200);
            let round = case * 100 + batch_no;
            let batch: Vec<MapOp<u64>> = ops
                .iter()
                .map(|&op| match op {
                    SetOp::Insert(k) => MapOp::Insert(k, val_for(k, round)),
                    SetOp::Remove(k) => MapOp::Remove(k),
                    SetOp::Contains(k) => MapOp::Get(k),
                })
                .collect();
            let results = map.execute_batch(&batch);
            assert_eq!(results.len(), ops.len());
            for (i, (&op, result)) in ops.iter().zip(&results).enumerate() {
                let expect = apply_oracle(op, round, &model);
                let got = match *result {
                    OpResult::Value(v) | OpResult::Found(v) => v,
                    OpResult::Present(p) => p.then_some(0),
                };
                assert_eq!(
                    got, expect,
                    "[case {case}, batch {batch_no}, op {i}] {op:?} diverged"
                );
            }
        }
        final_states_match(&map, &model, &format!("batched case {case}"));
    }
}

/// `multi_get` must agree with the oracle for arbitrary (including
/// duplicate and absent) key vectors.
#[test]
fn multi_get_agrees_with_oracle() {
    let mut rng = SplitMix64::new(0x5aad_0004);
    let map: ShardedTxMap = ShardedTxMap::new(16, 1024);
    let model = Mutex::new(BTreeMap::new());
    for (i, op) in gen_ops(&mut rng, 128, 400, 600).into_iter().enumerate() {
        apply_sharded(op, i as u64, &map);
        apply_oracle(op, i as u64, &model);
    }
    for _ in 0..64 {
        let keys: Vec<u64> = (0..rng.range_inclusive(1, 24))
            .map(|_| rng.below(160)) // deliberately includes absent keys
            .collect();
        let got = map.multi_get(&keys);
        let m = model.lock().expect("oracle mutex");
        let want: Vec<Option<u64>> = keys.iter().map(|k| m.get(k).copied()).collect();
        assert_eq!(got, want, "multi_get diverged for {keys:?}");
    }
}
