//! Cross-shard `transfer` stress under HTM chaos injection.
//!
//! 8 threads hammer a 16-shard account map with randomized transfers
//! (most spanning two shards, so every one exercises the ordered
//! two-lock acquisition), interleaved with `multi_get` snapshots and
//! pair-CAS traffic, while the chaos tickers kill a large fraction of
//! hardware attempts at birth — the same `spurious/conflict/capacity`
//! storm the fuzz harness uses. The assertions:
//!
//! * **conservation** — the sum of all balances is invariant, both in
//!   every mid-run `multi_get` snapshot (atomicity across shards) and at
//!   the end (0-divergence);
//! * **zero deadlocks** — the run completes; ascending shard-index
//!   acquisition makes a wait-for cycle impossible, and this test is the
//!   empirical witness under maximal fallback pressure (chaos pushes
//!   nearly everything onto the pessimistic path, where deadlock would
//!   actually bite);
//! * **no phantom failures** — a transfer between existing accounts with
//!   sufficient funds may only fail for insufficiency observed at
//!   transfer time, never `MissingFrom`/`MissingTo`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::prng::SplitMix64;
use rtle_htm::HtmConfig;
use rtle_shard::{ShardedTxMap, TransferError};

const ACCOUNTS: u64 = 256;
const INITIAL: u64 = 1_000;
const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 2_000;

fn stress(map: Arc<ShardedTxMap>, seed_base: u64) -> (u64, u64) {
    for k in 0..ACCOUNTS {
        map.insert(k, INITIAL);
    }
    let transfers_ok = Arc::new(AtomicU64::new(0));
    let transfers_insufficient = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let map = Arc::clone(&map);
            let ok = Arc::clone(&transfers_ok);
            let insufficient = Arc::clone(&transfers_insufficient);
            scope.spawn(move || {
                let mut rng = SplitMix64::new(seed_base ^ (t as u64).wrapping_mul(0x9e37));
                for i in 0..OPS_PER_THREAD {
                    match rng.below(10) {
                        // 70%: a transfer between two random accounts.
                        0..=6 => {
                            let from = rng.below(ACCOUNTS);
                            let to = rng.below(ACCOUNTS);
                            let amount = rng.range_inclusive(1, 40);
                            match map.transfer(from, to, amount) {
                                Ok(()) => {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(TransferError::Insufficient { .. }) => {
                                    insufficient.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => panic!(
                                    "thread {t} op {i}: phantom failure {e:?} — \
                                     all {ACCOUNTS} accounts exist and amounts cannot overflow"
                                ),
                            }
                        }
                        // 20%: an atomic snapshot of a random key window;
                        // per-window conservation cannot be asserted (money
                        // moves in and out of the window), but the read
                        // must be internally consistent — checked globally
                        // by the full-snapshot pass below.
                        7..=8 => {
                            let lo = rng.below(ACCOUNTS - 8);
                            let keys: Vec<u64> = (lo..lo + 8).collect();
                            let vals = map.multi_get(&keys);
                            assert!(
                                vals.iter().all(|v| v.is_some()),
                                "thread {t} op {i}: account vanished from snapshot"
                            );
                        }
                        // 10%: full-map snapshot — conservation must hold
                        // in every atomic cross-shard read, mid-run.
                        _ => {
                            let keys: Vec<u64> = (0..ACCOUNTS).collect();
                            let total: u64 =
                                map.multi_get(&keys).into_iter().flatten().sum();
                            assert_eq!(
                                total,
                                ACCOUNTS * INITIAL,
                                "thread {t} op {i}: mid-run snapshot lost money"
                            );
                        }
                    }
                }
            });
        }
    });

    assert_eq!(
        map.total_plain(),
        ACCOUNTS * INITIAL,
        "final balances must conserve the initial total"
    );
    (
        transfers_ok.load(Ordering::Relaxed),
        transfers_insufficient.load(Ordering::Relaxed),
    )
}

/// The headline stress: chaos storm killing ~1/3 of hardware attempts,
/// pushing cross-shard traffic onto the ordered pessimistic path.
#[test]
fn transfers_conserve_under_chaos_storm() {
    let chaos = HtmConfig {
        spurious_one_in: 3,
        conflict_one_in: 7,
        capacity_one_in: 11,
        ..HtmConfig::default()
    };
    let map: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::with_builder(
        16,
        1024,
        ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 128 }),
    ));
    let (ok, _) = chaos.with_installed(|| stress(Arc::clone(&map), 0xc405_0001));
    assert!(ok > 0, "no transfer ever succeeded — the workload is broken");

    // The storm must actually have exercised the fallback machinery.
    let merged = map.merged_stats();
    assert!(
        merged.lock_acquisitions > 0,
        "chaos never forced the lock path: {merged:?}"
    );
    assert!(
        merged.fast_aborts + merged.slow_aborts > 0,
        "chaos injected no aborts: {merged:?}"
    );
}

/// Same workload, clean HTM: the fast path dominates and conservation
/// still holds (guards against bugs masked by constant fallback).
#[test]
fn transfers_conserve_without_chaos() {
    let map: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::new(16, 1024));
    let (ok, _) = HtmConfig::default().with_installed(|| stress(Arc::clone(&map), 0xc405_0002));
    assert!(ok > 0);
    let merged = map.merged_stats();
    assert!(merged.fast_commits > 0, "clean run must commit on HTM: {merged:?}");
}

/// Pair-CAS across shards under chaos: each slot holds a generation
/// counter; every successful CAS bumps two slots' generations by exactly
/// one, so the final generation sum must equal initial + 2 × successes.
#[test]
fn cas_pair_generations_account_exactly_under_chaos() {
    const SLOTS: u64 = 64;
    let chaos = HtmConfig {
        spurious_one_in: 4,
        conflict_one_in: 9,
        ..HtmConfig::default()
    };
    let map: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::new(8, 512));
    for k in 0..SLOTS {
        map.insert(k, 0);
    }
    let successes = Arc::new(AtomicU64::new(0));
    chaos.with_installed(|| {
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let map = Arc::clone(&map);
                let successes = Arc::clone(&successes);
                scope.spawn(move || {
                    let mut rng = SplitMix64::new(0xca50 ^ (t as u64) << 8);
                    for _ in 0..500 {
                        let a = rng.below(SLOTS);
                        let mut b = rng.below(SLOTS);
                        if a == b {
                            b = (b + 1) % SLOTS;
                        }
                        // Read current generations, then CAS both forward.
                        let vals = map.multi_get(&[a, b]);
                        let (ga, gb) = (
                            vals[0].expect("slot exists"),
                            vals[1].expect("slot exists"),
                        );
                        if map.compare_and_swap_pair((a, ga, ga + 1), (b, gb, gb + 1)) {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
    });
    let total_generations: u64 = map.entries_plain().iter().map(|&(_, v)| v).sum();
    assert_eq!(
        total_generations,
        2 * successes.load(Ordering::Relaxed),
        "every successful pair-CAS bumps exactly two generations by one"
    );
    assert!(successes.load(Ordering::Relaxed) > 0);
}
