//! Panic behaviour of critical sections: a panic during a *speculative*
//! execution rolls the transaction back and re-raises (no partial state,
//! lock still usable); a panic while *holding the lock* propagates with
//! the lock held (spinlock-style poisoning, as documented).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rtle_core::{Ctx, ElidableLock, ElisionPolicy, TxCell};

#[test]
fn panic_on_fast_path_rolls_back_and_propagates() {
    let lock = ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }).build();
    let cell = TxCell::new(0u64);

    let r = catch_unwind(AssertUnwindSafe(|| {
        lock.execute(|ctx: &Ctx| {
            ctx.write(&cell, 99);
            panic!("user bug in critical section");
        });
    }));
    assert!(r.is_err(), "panic must propagate");
    assert_eq!(
        cell.read_plain(),
        0,
        "speculative write must have been rolled back"
    );

    // The lock remains fully usable afterwards.
    lock.execute(|ctx: &Ctx| {
        let v = ctx.read(&cell);
        ctx.write(&cell, v + 1);
    });
    assert_eq!(cell.read_plain(), 1);
}

#[test]
fn panic_under_lock_leaves_lock_held() {
    let lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::Tle).build());
    let cell = Arc::new(TxCell::new(0u64));

    let r = catch_unwind(AssertUnwindSafe(|| {
        lock.execute(|ctx: &Ctx| {
            // Force the pessimistic path, then blow up while holding it.
            rtle_htm::htm_unfriendly_instruction();
            ctx.write(&cell, 7);
            panic!("bug while holding the lock");
        });
    }));
    assert!(r.is_err());
    // Under the lock, writes are immediate (no rollback) — like a plain
    // spinlock, the data may be partially updated and the lock is left
    // held (poisoned). Another thread's speculation must now treat the
    // lock as permanently held; we just verify the documented state.
    assert_eq!(cell.read_plain(), 7, "under-lock writes are not rolled back");
    let snap = lock.stats().snapshot();
    assert_eq!(snap.lock_acquisitions, 1);
}

#[test]
fn panic_inside_tm_transactions_rolls_back() {
    use rtle_hytm::{Norec, RhNorec};

    let tm = Norec::new();
    let cell = TxCell::new(0u64);
    let r = catch_unwind(AssertUnwindSafe(|| {
        tm.execute(|ctx| {
            ctx.write(&cell, 5);
            panic!("boom");
        });
    }));
    assert!(r.is_err());
    assert_eq!(cell.read_plain(), 0, "NOrec buffers writes; panic discards");
    tm.execute(|ctx| ctx.write(&cell, 1));
    assert_eq!(cell.read_plain(), 1, "NOrec usable after a panic");

    let rh = RhNorec::new();
    let cell2 = TxCell::new(0u64);
    let r = catch_unwind(AssertUnwindSafe(|| {
        rh.execute(|ctx| {
            rtle_htm::htm_unfriendly_instruction(); // force software path
            ctx.write(&cell2, 5);
            panic!("boom");
        });
    }));
    assert!(r.is_err());
    assert_eq!(cell2.read_plain(), 0, "RHNOrec software path discards too");
}

#[test]
fn rhnorec_sw_counter_survives_panics() {
    use rtle_hytm::RhNorec;
    let rh = RhNorec::new();
    let cell = TxCell::new(0u64);
    for _ in 0..3 {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            rh.execute(|ctx| {
                rtle_htm::htm_unfriendly_instruction();
                ctx.write(&cell, 1);
                panic!("boom");
            });
        }));
    }
    assert_eq!(
        rh.sw_running(),
        0,
        "sw_count must be balanced even across panics"
    );
    // And hardware commits still take the fast (no clock bump) path.
    rh.execute(|ctx| ctx.write(&cell, 2));
    let s = rh.stats().snapshot();
    assert!(s.htm_fast >= 1, "fast path restored: {s:?}");
}
