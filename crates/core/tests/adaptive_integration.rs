//! End-to-end behaviour of the adaptive FG-TLE extension (§4.2.1): the
//! lock holder shrinks/disables the slow path when it buys nothing, and
//! keeps it when concurrent slow-path commits are happening.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use rtle_core::{ElidableLock, ElisionPolicy, TxCell};

/// Single-threaded lock-path-only workload: the slow path is pure
/// overhead, so the adaptive policy must shrink the active orecs and
/// eventually collapse to plain TLE.
#[test]
#[cfg_attr(miri, ignore = "timing-sensitive: adaptive collapse relies on wall-clock pacing")]
fn adaptive_collapses_when_slow_path_is_useless() {
    let lock = ElidableLock::builder()
        .policy(ElisionPolicy::AdaptiveFgTle {
            initial_orecs: 256,
            max_orecs: 1024,
        })
        .build();
    let cell = TxCell::new(0u64);
    assert_eq!(lock.slow_path_enabled(), Some(true));
    let initial_active = lock.orec_table().unwrap().active_plain();
    assert_eq!(initial_active, 256);

    // Every op is HTM-hostile: always under the lock, never a concurrent
    // speculator — the adaptation window sees zero slow-path benefit.
    for _ in 0..5_000 {
        lock.execute(|ctx| {
            rtle_htm::htm_unfriendly_instruction();
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    }
    assert_eq!(cell.read_plain(), 5_000);
    assert_eq!(
        lock.slow_path_enabled(),
        Some(false),
        "idle slow path must collapse to plain TLE (active orecs: {})",
        lock.orec_table().unwrap().active_plain()
    );
}

/// With a thread continuously committing on the slow path, the adaptive
/// policy must keep the slow path enabled.
#[test]
#[cfg_attr(miri, ignore = "timing-sensitive: depends on real concurrent slow-path commits")]
fn adaptive_keeps_slow_path_when_it_pays() {
    let lock = Arc::new(
        ElidableLock::builder()
            .policy(ElisionPolicy::AdaptiveFgTle {
                initial_orecs: 256,
                max_orecs: 1024,
            })
            .build(),
    );
    let hot = Arc::new(TxCell::new(0u64));
    // One private cell per concurrent thread: truly disjoint footprints
    // (threads sharing a cell conflict with each other through the orecs
    // whenever one of them falls back to the lock — correctly).
    let cold: Arc<Vec<TxCell<u64>>> = Arc::new((0..2).map(|_| TxCell::new(0)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let cold_ops = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Pessimistic updater (always locks, writes `hot`). It keeps the
        // lock held until the disjoint threads make progress — while the
        // lock is held they can only progress via the slow path, so this
        // guarantees lock/slow-path overlap on any core count. (Merely
        // yielding between ops is not enough: on a single-CPU machine the
        // lock is released before the other threads ever get scheduled,
        // whole adaptation windows look idle, and the slow path collapses
        // without having been exercised once.)
        {
            let (lock, hot, stop) = (Arc::clone(&lock), Arc::clone(&hot), Arc::clone(&stop));
            let cold_ops = Arc::clone(&cold_ops);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.execute(|ctx| {
                        rtle_htm::htm_unfriendly_instruction();
                        let v = ctx.read(&hot);
                        ctx.write(&hot, v + 1);
                        let c0 = cold_ops.load(Ordering::Relaxed);
                        for _ in 0..200 {
                            if cold_ops.load(Ordering::Relaxed) >= c0 + 2 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    });
                }
            });
        }
        // Disjoint reader-writers: succeed on the slow path while the
        // updater holds the lock.
        for t in 0..2usize {
            let (lock, cold, stop) = (Arc::clone(&lock), Arc::clone(&cold), Arc::clone(&stop));
            let cold_ops = Arc::clone(&cold_ops);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.execute(|ctx| {
                        let v = ctx.read(&cold[t]);
                        ctx.write(&cold[t], v + 1);
                    });
                    cold_ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    let snap = lock.stats().snapshot();
    assert!(
        snap.slow_commits > 0,
        "slow path must have been used: {snap:?}"
    );
    // On a multi-core machine the slow path stays enabled throughout. On
    // a single core, scheduling quanta can make whole adaptation windows
    // look idle; the periodic re-enable probe means the slow path must at
    // least keep being used heavily relative to lock acquisitions.
    let paying =
        lock.slow_path_enabled() == Some(true) || snap.slow_commits > snap.lock_acquisitions / 4;
    assert!(paying, "slow path neither enabled nor productive: {snap:?}");
}

/// Resizes only ever happen while the lock is held; the data structure
/// stays correct across them (counter total is exact).
#[test]
#[cfg_attr(miri, ignore = "timing-sensitive: multi-thread stress with wall-clock duration")]
fn adaptive_resizes_preserve_correctness() {
    let lock = Arc::new(
        ElidableLock::builder()
            .policy(ElisionPolicy::AdaptiveFgTle {
                initial_orecs: 4,
                max_orecs: 4096,
            })
            .build(),
    );
    let cells: Arc<Vec<TxCell<u64>>> = Arc::new((0..64).map(|_| TxCell::new(0)).collect());

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let (lock, cells) = (Arc::clone(&lock), Arc::clone(&cells));
            scope.spawn(move || {
                for i in 0..3_000usize {
                    let idx = (i * 7 + t * 13) % cells.len();
                    lock.execute(|ctx| {
                        if i % 50 == 0 {
                            rtle_htm::htm_unfriendly_instruction();
                        }
                        let v = ctx.read(&cells[idx]);
                        ctx.write(&cells[idx], v + 1);
                    });
                }
            });
        }
    });

    let total: u64 = cells.iter().map(|c| c.read_plain()).sum();
    assert_eq!(total, 4 * 3_000);
    let active = lock.orec_table().unwrap().active_plain();
    assert!(
        (1..=4096).contains(&active),
        "active stayed in range: {active}"
    );
}
