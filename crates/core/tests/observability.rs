//! Integration tests for attempt-level observability: the recorder wired
//! through `ElidableLock::execute`, concurrent snapshotting, and adaptive
//! decision tracing from a real workload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rtle_core::obs::{ObsConfig, Recorder};
use rtle_core::{Ctx, ElidableLock, ElisionPolicy, TxCell};

fn recorded_lock(policy: ElisionPolicy) -> (Arc<ElidableLock>, Arc<Recorder>) {
    let rec = Arc::new(Recorder::new(ObsConfig::default()));
    let lock = Arc::new(
        ElidableLock::builder()
            .policy(policy)
            .recorder(Arc::clone(&rec))
            .build(),
    );
    (lock, rec)
}

/// A single-threaded run populates every recorder surface: per-path
/// commits, retry and latency histograms, the event ring, and lock-hold
/// samples when the pessimistic path runs.
#[test]
fn recorder_captures_fast_and_lock_paths() {
    let (lock, rec) = recorded_lock(ElisionPolicy::Tle);
    let c = TxCell::new(0u64);
    for i in 0..100u64 {
        lock.execute(|ctx: &Ctx| {
            // Every 10th op is forced onto the pessimistic path.
            if i % 10 == 9 {
                rtle_htm::htm_unfriendly_instruction();
            }
            let v = ctx.read(&c);
            ctx.write(&c, v + 1);
        });
    }
    assert_eq!(c.read_plain(), 100);

    let snap = rec.snapshot();
    let commits: std::collections::HashMap<_, _> = snap.commits.iter().cloned().collect();
    assert_eq!(commits["fast_htm"], 90);
    assert_eq!(commits["lock"], 10);
    assert_eq!(snap.total_commits(), 100);
    assert!(snap.total_aborts() >= 10, "unsupported aborts recorded");
    assert_eq!(snap.cs_latency.count, 100);
    assert_eq!(snap.retries.count, 100);
    assert_eq!(snap.lock_hold.count, 10);
    assert!(snap.cs_latency.percentile(0.99) >= snap.cs_latency.percentile(0.50));
    assert!(!snap.recent_events.is_empty());
    // The recorder's view agrees with the exact ExecStats counters
    // (sampling is 1-in-1 here).
    let stats = lock.stats().snapshot();
    assert_eq!(stats.fast_commits, 90);
    assert_eq!(stats.lock_acquisitions, 10);
}

/// Sampling records 1 in 2^k operations without losing the exact
/// ExecStats counters.
#[test]
fn sampling_thins_recording_but_not_stats() {
    let rec = Arc::new(Recorder::new(ObsConfig {
        sample_shift: 3, // 1 in 8
        ..ObsConfig::default()
    }));
    let lock = ElidableLock::builder()
        .policy(ElisionPolicy::Tle)
        .recorder(Arc::clone(&rec))
        .build();
    let c = TxCell::new(0u64);
    for _ in 0..800 {
        lock.execute(|ctx: &Ctx| {
            let v = ctx.read(&c);
            ctx.write(&c, v + 1);
        });
    }
    assert_eq!(lock.stats().snapshot().ops, 800, "stats stay exact");
    let snap = rec.snapshot();
    // This thread's op sequence may be offset by other tests' threads, so
    // allow one sample of slack around 800/8.
    assert!(
        (99..=101).contains(&snap.total_commits()),
        "sampled ~100, got {}",
        snap.total_commits()
    );
}

/// `execute_from` charges latency from the *intended* start into the
/// windowed telemetry: an operation scheduled in the past shows its
/// queueing delay in the window percentiles (coordinated-omission
/// correction), and the window sees every op even under sampling.
#[test]
#[cfg_attr(miri, ignore = "timing-sensitive: asserts on Instant-derived start latency")]
fn execute_from_records_intended_start_latency_into_windows() {
    let rec = Arc::new(Recorder::new(ObsConfig {
        sample_shift: 4, // attempt events 1-in-16; window ops unsampled
        window_len_ms: 1_000,
        ..ObsConfig::default()
    }));
    let lock = ElidableLock::builder()
        .policy(ElisionPolicy::Tle)
        .recorder(Arc::clone(&rec))
        .build();
    let c = TxCell::new(0u64);
    let backlogged = std::time::Instant::now() - std::time::Duration::from_millis(5);
    for _ in 0..64u64 {
        lock.execute_from(backlogged, |ctx: &Ctx| {
            let v = ctx.read(&c);
            ctx.write(&c, v + 1);
        });
    }
    assert_eq!(c.read_plain(), 64);
    let w = rec.windows().expect("window collector configured").rotate().merged;
    assert_eq!(w.ops(), 64, "every op lands in the window, sampled or not");
    // >= 5ms minus the histogram's one-sub-bucket floor underestimate.
    assert!(
        w.latency_p(0.50) >= 4_800_000,
        "queueing delay from the intended start must be charged: p50 = {} ns",
        w.latency_p(0.50)
    );
    let snap = rec.snapshot();
    assert_eq!(snap.windows.len(), 1);
    assert!(
        snap.total_commits() < 64,
        "attempt events stay sampled while window latency is exact"
    );
}

/// Eight threads hammer a recorded lock (histograms + ExecStats) while
/// the main thread snapshots both continuously: no panics, no torn
/// values, and the final counts add up.
#[test]
#[cfg_attr(miri, ignore = "8-thread hammer: minutes under the interpreter; covered by TSan instead")]
fn concurrent_hammer_while_snapshotting() {
    const THREADS: usize = 8;
    const OPS: usize = 3_000;
    let (lock, rec) = recorded_lock(ElisionPolicy::FgTle { orecs: 64 });
    let c = Arc::new(TxCell::new(0u64));
    let done = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let (lock, c) = (Arc::clone(&lock), Arc::clone(&c));
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    lock.execute(|ctx: &Ctx| {
                        let v = ctx.read(&c);
                        ctx.write(&c, v + 1);
                    });
                }
            })
        })
        .collect();

    let observer = {
        let (lock, rec, done) = (Arc::clone(&lock), Arc::clone(&rec), Arc::clone(&done));
        std::thread::spawn(move || {
            let mut last = lock.stats().snapshot();
            while !done.load(Ordering::Relaxed) {
                let now = lock.stats().snapshot();
                let delta = now.since(&last); // must never panic (saturating)
                assert!(delta.ops <= (THREADS * OPS) as u64);
                let before = rec.snapshot();
                let obs = rec.snapshot();
                let after = rec.snapshot();
                // Commit counters and histogram cells are separate relaxed
                // atomics, and a snapshot reads them one by one while the
                // workers keep committing. Two sources of skew: at most one
                // in-flight op per thread (caught between its histogram
                // record and its commit-counter bump), plus every op that
                // committed while the snapshot itself was being read. The
                // bracketing snapshots bound the latter. Exact equality is
                // asserted after joining below.
                let slack = THREADS as u64
                    + after
                        .total_commits()
                        .saturating_sub(before.total_commits());
                let skew = |a: u64, b: u64| a.abs_diff(b) <= slack;
                assert!(skew(obs.cs_latency.count, obs.total_commits()));
                assert!(skew(obs.retries.count, obs.total_commits()));
                last = now;
            }
        })
    };

    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    observer.join().unwrap();

    assert_eq!(c.read_plain(), (THREADS * OPS) as u64);
    let stats = lock.stats().snapshot();
    assert_eq!(stats.ops, (THREADS * OPS) as u64);
    let obs = rec.snapshot();
    assert_eq!(obs.total_commits(), (THREADS * OPS) as u64);
    assert_eq!(obs.cs_latency.count, obs.total_commits());
    assert_eq!(obs.retries.count, obs.total_commits());
    assert_eq!(
        stats.fast_commits + stats.slow_commits + stats.lock_acquisitions,
        obs.total_commits(),
        "recorder and exact counters agree at 1-in-1 sampling"
    );
}

/// Adaptive FG-TLE under a lock-heavy workload with an idle slow path
/// emits traceable shrink/collapse decisions through the installed
/// recorder — the §4.2.1 adaptation is observable end to end.
#[test]
fn adaptive_workload_emits_decision_events() {
    let (lock, rec) = recorded_lock(ElisionPolicy::AdaptiveFgTle {
        initial_orecs: 16,
        max_orecs: 1024,
    });
    let c = TxCell::new(0u64);
    // Single-threaded and HTM-unfriendly: every operation takes the lock,
    // the slow path stays idle, and the policy shrinks 16 -> 1 and then
    // collapses to plain TLE. 32-acquisition windows x (4 shrinks + 2
    // idle-at-1) need ~200 ops; run enough to cross all of them.
    for _ in 0..300 {
        lock.execute(|ctx: &Ctx| {
            rtle_htm::htm_unfriendly_instruction();
            let v = ctx.read(&c);
            ctx.write(&c, v + 1);
        });
    }
    assert_eq!(c.read_plain(), 300);
    assert_eq!(lock.slow_path_enabled(), Some(false), "collapsed");

    let decisions = rec.decisions();
    assert!(!decisions.is_empty(), "adaptation must be traceable");
    let labels: Vec<&str> = decisions.iter().map(|d| d.action.label()).collect();
    assert!(labels.contains(&"shrink"), "{labels:?}");
    assert!(labels.contains(&"collapse"), "{labels:?}");
    // Each shrink halves the range and records the idle window signal.
    let first = &decisions[0];
    assert_eq!(first.action.label(), "shrink");
    assert_eq!(first.orecs_before, 16);
    assert_eq!(first.orecs_after, 8);
    assert_eq!(first.slow_commits, 0);
    // The same trace appears in the exported snapshot.
    let snap = rec.snapshot();
    assert_eq!(snap.decisions.len(), decisions.len());
    assert!(snap.lock_hold.count >= 300);
    let commits: std::collections::HashMap<_, _> = snap.commits.iter().cloned().collect();
    assert_eq!(commits["lock"], 300);
}
