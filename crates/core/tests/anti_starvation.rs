//! The anti-starvation extension (§6.2.1: "It is trivial to add an
//! anti-starvation mechanism to these synchronization methods"): capping
//! the slow-path retries of one operation forces it onto the lock queue,
//! bounding its total work even against a perpetual lock holder that keeps
//! conflicting with it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtle_core::{abort_codes, ElidableLock, ElisionPolicy, RetryPolicy, TxCell};

/// Shared fixture: a holder that camps on the lock writing `shared`, and a
/// victim op that also writes `shared` (so its slow-path attempts always
/// hit the holder's orecs).
fn run_victim(cap: Option<u32>) -> (rtle_core::StatsSnapshot, Duration) {
    let retry = RetryPolicy {
        max_slow_attempts: cap,
        ..Default::default()
    };
    let lock = Arc::new(
        ElidableLock::builder()
            .policy(ElisionPolicy::FgTle { orecs: 64 })
            .retry(retry)
            .build(),
    );
    let shared = Arc::new(TxCell::new(0u64));
    let holder_in = Arc::new(AtomicBool::new(false));
    let victim_done = Arc::new(AtomicBool::new(false));

    let elapsed = std::thread::scope(|scope| {
        {
            let (lock, shared, holder_in, victim_done) = (
                Arc::clone(&lock),
                Arc::clone(&shared),
                Arc::clone(&holder_in),
                Arc::clone(&victim_done),
            );
            scope.spawn(move || {
                lock.execute(|ctx| {
                    rtle_htm::htm_unfriendly_instruction();
                    // Touch `shared` so its orec is write-owned throughout.
                    let v = ctx.read(&shared);
                    ctx.write(&shared, v + 1);
                    holder_in.store(true, Ordering::SeqCst);
                    let start = std::time::Instant::now();
                    while !victim_done.load(Ordering::SeqCst)
                        && start.elapsed() < Duration::from_millis(400)
                    {
                        std::hint::spin_loop();
                    }
                });
            });
        }
        while !holder_in.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let t0 = std::time::Instant::now();
        lock.execute(|ctx| {
            let v = ctx.read(&shared);
            ctx.write(&shared, v + 1);
        });
        let d = t0.elapsed();
        victim_done.store(true, Ordering::SeqCst);
        d
    });

    assert_eq!(shared.read_plain(), 2);
    (lock.stats().snapshot(), elapsed)
}

#[test]
#[cfg_attr(miri, ignore = "timing-sensitive: victim runs against an Instant-based deadline")]
fn capped_slow_retries_escalate_to_the_lock() {
    let (snap, _) = run_victim(Some(3));
    // The victim burned exactly its slow budget on orec conflicts, then
    // queued on the lock (2 acquisitions: holder + victim).
    assert_eq!(snap.lock_acquisitions, 2, "{snap:?}");
    assert_eq!(
        snap.aborts_by_code[abort_codes::OREC_CONFLICT as usize],
        3,
        "victim used its capped slow budget: {snap:?}"
    );
}

#[test]
#[cfg_attr(miri, ignore = "timing-sensitive: victim runs against an Instant-based deadline")]
fn uncapped_victim_keeps_speculating() {
    let (snap, _) = run_victim(None);
    // Without the cap the victim retries the slow path until the holder
    // leaves (the paper's configuration), then commits speculatively —
    // only the holder ever took the lock.
    assert_eq!(snap.lock_acquisitions, 1, "{snap:?}");
    assert!(
        snap.aborts_by_code[abort_codes::OREC_CONFLICT as usize] > 3,
        "unbounded retries churn on the owned orec: {snap:?}"
    );
    assert_eq!(
        snap.fast_commits + snap.slow_commits,
        1,
        "victim committed speculatively"
    );
}
