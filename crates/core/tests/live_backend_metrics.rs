//! Golden-file test for the lock's live `/metrics` exposition — in
//! particular the `software_backend` identity label that tells a scrape
//! (and `diag top`) which software-TM path is live.
//!
//! A real `ElidableLock` drives the page: single-threaded traffic takes
//! deterministic paths (uncontended hardware attempts commit first try;
//! HTM-unfriendly operations land on the software backend), and the lock
//! exposition carries no wall-clock values, so the rendered text is
//! byte-stable. Regenerate after an intentional format change with:
//!
//! ```sh
//! BLESS=1 cargo test -p rtle-core --test live_backend_metrics
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::TxCell;
use rtle_hytm::{Norec, Tl2};
use rtle_obs::MetricsRegistry;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/live_backend_metrics.prom")
}

#[test]
fn backend_name_label_matches_the_golden_exposition() {
    let registry = MetricsRegistry::new();

    let tl2_lock = Arc::new(
        ElidableLock::builder()
            .policy(ElisionPolicy::Tle)
            .with_software_backend(Arc::new(Tl2::new()))
            .build(),
    );
    tl2_lock.register_live(&registry, "tl2_lock");

    let norec_lock = Arc::new(
        ElidableLock::builder()
            .policy(ElisionPolicy::Tle)
            .with_software_backend(Arc::new(Norec::new()))
            .build(),
    );
    norec_lock.register_live(&registry, "norec_lock");

    // A lock without a software backend emits no backend label at all.
    let bare_lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::Tle).build());
    bare_lock.register_live(&registry, "bare_lock");

    for lock in [&tl2_lock, &norec_lock, &bare_lock] {
        let c = TxCell::new(0u64);
        // Six uncontended hardware commits...
        for _ in 0..6 {
            lock.execute(|ctx| {
                let v = ctx.read(&c);
                ctx.write(&c, v + 1);
            });
        }
        // ...and four operations forced off hardware: onto the software
        // backend where one exists, under the lock otherwise.
        for _ in 0..4 {
            lock.execute(|ctx| {
                rtle_htm::htm_unfriendly_instruction();
                let v = ctx.read(&c);
                ctx.write(&c, v + 1);
            });
        }
        assert_eq!(c.read_plain(), 10);
    }

    let text = registry.to_prometheus();
    assert!(
        text.contains("software_backend=\"tl2\""),
        "TL2 lock must be labelled:\n{text}"
    );
    assert!(
        text.contains("software_backend=\"norec\""),
        "NOrec lock must be labelled:\n{text}"
    );

    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with BLESS=1", path.display())
    });
    assert_eq!(
        text, expected,
        "live_backend_metrics.prom drifted; run `BLESS=1 cargo test -p rtle-core \
         --test live_backend_metrics` and review the diff"
    );
}
