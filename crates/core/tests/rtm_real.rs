//! Refined TLE on *real* Intel RTM hardware (feature `rtm`).
//!
//! Run with `cargo test -p rtle-core --features rtm`. Each test is a no-op
//! (with a note) on machines whose CPU does not expose TSX; on TSX
//! machines the elision runtimes execute genuine `xbegin`-based
//! transactions: lock subscription, write-flag subscription and orec
//! checks are all tracked by the processor, not the software emulation.
#![cfg(feature = "rtm")]

use std::sync::Arc;

use rtle_core::{ElidableLock, ElisionPolicy, RetryPolicy};
use rtle_htm::{rtm, RtmBackend, TxCell};

fn rtm_available() -> bool {
    if !rtm::rtm_supported() {
        eprintln!("skipping: CPU does not advertise RTM");
        return false;
    }
    // Some kernels/microcode advertise RTM but force-abort every
    // transaction; probe before asserting on commit counts.
    let committed = (0..50).filter(|_| rtm::try_txn(|| ()).is_ok()).count();
    if committed == 0 {
        eprintln!("skipping: RTM advertised but transactions never commit (force-abort?)");
        return false;
    }
    true
}

#[test]
fn raw_rtm_txn_commits_and_aborts() {
    if !rtm_available() {
        return;
    }
    assert_eq!(rtm::try_txn(|| 21 * 2), Ok(42));
    // Explicit abort surfaces its code.
    let r: Result<(), _> = rtm::try_txn(|| rtm::hw_abort(3));
    assert_eq!(r, Err(rtle_htm::AbortCode::Explicit(3)));
    assert!(!rtm::in_hw_txn());
    assert!(!rtm::actually_in_hw_txn());
}

#[test]
fn elidable_lock_counter_on_real_htm() {
    if !rtm_available() {
        return;
    }
    for policy in [
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 64 },
    ] {
        let lock = Arc::new(
            ElidableLock::builder()
                .backend(RtmBackend)
                .policy(policy)
                .build(),
        );
        let cell = Arc::new(TxCell::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (lock, cell) = (Arc::clone(&lock), Arc::clone(&cell));
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        lock.execute(|ctx| {
                            let v = ctx.read(&cell);
                            ctx.write(&cell, v + 1);
                        });
                    }
                });
            }
        });
        assert_eq!(cell.read_plain(), 8_000, "{}", policy.label());
        let snap = lock.stats().snapshot();
        assert!(
            snap.fast_commits > 0,
            "{}: some executions must have committed in real hardware: {snap:?}",
            policy.label()
        );
    }
}

#[test]
fn real_htm_subscription_respects_lock() {
    if !rtm_available() {
        return;
    }
    // Mutual exclusion with mixed speculative/pessimistic executions: a
    // CS that sometimes executes an HTM-hostile operation (a syscall-ish
    // slow path via a volatile TLS write storm is unreliable; use the
    // explicit hostile helper which xaborts under the rtm feature).
    let lock = Arc::new(
        ElidableLock::builder()
            .backend(RtmBackend)
            .policy(ElisionPolicy::FgTle { orecs: 256 })
            .build(),
    );
    let a = Arc::new(TxCell::new(0u64));
    let b = Arc::new(TxCell::new(0u64));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let (lock, a, b) = (Arc::clone(&lock), Arc::clone(&a), Arc::clone(&b));
            scope.spawn(move || {
                for i in 0..1_500u64 {
                    lock.execute(|ctx| {
                        if (i + t) % 97 == 0 {
                            // Force the pessimistic path now and then.
                            rtle_htm::htm_unfriendly_instruction();
                        }
                        // a and b must move in lockstep.
                        let av = ctx.read(&a);
                        ctx.write(&a, av + 1);
                        let bv = ctx.read(&b);
                        ctx.write(&b, bv + 1);
                    });
                }
            });
        }
    });
    assert_eq!(a.read_plain(), 6_000);
    assert_eq!(b.read_plain(), 6_000);
    let snap = lock.stats().snapshot();
    assert!(
        snap.lock_acquisitions > 0,
        "hostile ops must lock: {snap:?}"
    );
}
