//! The execution context ([`Ctx`]) and its read/write barriers.
//!
//! In the paper, GCC compiles every critical section twice — an
//! uninstrumented *fast* path and an instrumented *slow* path whose every
//! shared access calls into a libitm-ABI library (§1). Here the critical
//! section is written once as a closure over a `Ctx`, and [`Ctx::read`] /
//! [`Ctx::write`] dispatch to the right barrier for the path being run:
//!
//! | mode        | RW-TLE                          | FG-TLE                              |
//! |-------------|---------------------------------|-------------------------------------|
//! | `FastHtm`   | plain access                    | plain access                        |
//! | `SlowHtm`   | writes self-abort (Fig. 2)      | orec checks before access (Fig. 3)  |
//! | `UnderLock` | 1st write sets `write_flag`     | stamp orecs, `uniq_*` shortcut      |
//!
//! ("plain access" still goes through the HTM's own tracking when inside a
//! transaction — that is the hardware's job, not the instrumentation's.)

use std::cell::Cell;

use rtle_htm::{TxCell, TxWord};
use rtle_obs::{TraceKind, Tracer};

use crate::abort_codes;
use crate::orec::{OrecKind, OrecTable};
use crate::policy::ElisionPolicy;

/// Which path the current critical-section execution runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Uninstrumented hardware transaction (lock observed free).
    FastHtm,
    /// Instrumented hardware transaction concurrent with a lock holder.
    SlowHtm,
    /// Software transaction on a pluggable [`rtle_hytm::SoftwareTm`]
    /// backend (the lock-free fallback installed via
    /// `ElidableLockBuilder::with_software_backend`).
    Stm,
    /// Pessimistic execution holding the lock (instrumented for RW-/FG-TLE).
    UnderLock,
}

/// Execution token passed to critical-section closures.
///
/// All shared accesses inside a critical section must go through
/// [`Ctx::read`] and [`Ctx::write`]; this is the contract the compiler
/// enforces in the paper's GCC-based setup and the type system encourages
/// here.
pub struct Ctx<'a> {
    mode: ExecMode,
    policy: ElisionPolicy,
    write_flag: &'a TxCell<bool>,
    orecs: Option<&'a OrecTable>,
    /// Slow path: epoch snapshot taken before the transaction started.
    local_seq: u64,
    /// Orec count for this execution (read transactionally on the slow
    /// path so resizes doom in-flight transactions).
    active_n: usize,
    /// Under lock: the current odd epoch stamped into acquired orecs.
    epoch_now: u64,
    /// Under lock: `uniq_r_orecs` / `uniq_w_orecs` (§4.2) — once all orecs
    /// are acquired the barrier becomes trivial.
    uniq_r: Cell<u32>,
    uniq_w: Cell<u32>,
    /// Under lock, RW-TLE: whether `write_flag` has been set already (the
    /// flag needs setting only once per critical section, §3).
    wrote: Cell<bool>,
    /// Under lock, when the operation is sampled: the causal tracer and
    /// this thread's trace id, so protocol instants (write-flag raise) land
    /// on the timeline. `None` on the speculative paths — an instant
    /// recorded inside a transaction that later aborts would be a lie.
    trace: Option<(&'a Tracer, u64)>,
    /// [`ExecMode::Stm`]: the software backend's transactional context;
    /// reads and writes delegate to its barriers.
    stm: Option<&'a rtle_hytm::TmCtx<'a>>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn fast(policy: ElisionPolicy, write_flag: &'a TxCell<bool>) -> Self {
        Ctx {
            mode: ExecMode::FastHtm,
            policy,
            write_flag,
            orecs: None,
            local_seq: 0,
            active_n: 0,
            epoch_now: 0,
            uniq_r: Cell::new(0),
            uniq_w: Cell::new(0),
            wrote: Cell::new(false),
            trace: None,
            stm: None,
        }
    }

    pub(crate) fn slow(
        policy: ElisionPolicy,
        write_flag: &'a TxCell<bool>,
        orecs: Option<&'a OrecTable>,
        local_seq: u64,
        active_n: usize,
    ) -> Self {
        Ctx {
            mode: ExecMode::SlowHtm,
            policy,
            write_flag,
            orecs,
            local_seq,
            active_n,
            epoch_now: 0,
            uniq_r: Cell::new(0),
            uniq_w: Cell::new(0),
            wrote: Cell::new(false),
            trace: None,
            stm: None,
        }
    }

    pub(crate) fn under_lock(
        policy: ElisionPolicy,
        write_flag: &'a TxCell<bool>,
        orecs: Option<&'a OrecTable>,
        epoch_now: u64,
        active_n: usize,
        trace: Option<(&'a Tracer, u64)>,
    ) -> Self {
        Ctx {
            mode: ExecMode::UnderLock,
            policy,
            write_flag,
            orecs,
            local_seq: 0,
            active_n,
            epoch_now,
            uniq_r: Cell::new(0),
            uniq_w: Cell::new(0),
            wrote: Cell::new(false),
            trace,
            stm: None,
        }
    }

    /// A software-transaction context: every access delegates to the
    /// backend's read/write barriers through `tm`.
    pub(crate) fn stm(
        policy: ElisionPolicy,
        write_flag: &'a TxCell<bool>,
        tm: &'a rtle_hytm::TmCtx<'a>,
    ) -> Self {
        Ctx {
            mode: ExecMode::Stm,
            policy,
            write_flag,
            orecs: None,
            local_seq: 0,
            active_n: 0,
            epoch_now: 0,
            uniq_r: Cell::new(0),
            uniq_w: Cell::new(0),
            wrote: Cell::new(false),
            trace: None,
            stm: Some(tm),
        }
    }

    /// The path this execution runs on.
    #[inline]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Whether this execution is speculative (may abort and re-run).
    #[inline]
    pub fn is_speculative(&self) -> bool {
        self.mode != ExecMode::UnderLock
    }

    /// Read barrier.
    #[inline]
    pub fn read<T: TxWord>(&self, cell: &TxCell<T>) -> T {
        match self.mode {
            ExecMode::FastHtm => cell.read(),
            ExecMode::SlowHtm => {
                if let (
                    ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. },
                    Some(orecs),
                ) = (self.policy, self.orecs)
                {
                    // Figure 3, read_barrier, HTM side: abort if the write
                    // orec is owned. The transactional orec read doubles as
                    // a subscription (replacing the paper's fence argument).
                    if let Some((slot, stamp)) =
                        orecs.read_conflict_slot(cell.addr(), self.active_n, self.local_seq)
                    {
                        // Attribute, then abort: the abort unwinds at once,
                        // so every OREC_CONFLICT abort is attributed to
                        // exactly one slot (the heatmap invariant).
                        orecs.note_conflict(slot, stamp);
                        rtle_htm::abort(abort_codes::OREC_CONFLICT);
                    }
                }
                // RW-TLE reads are uninstrumented on the slow path.
                cell.read()
            }
            ExecMode::Stm => self.stm.expect("Stm mode carries a TmCtx").read(cell),
            ExecMode::UnderLock => {
                if let (
                    ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. },
                    Some(orecs),
                ) = (self.policy, self.orecs)
                {
                    // Figure 3, read_barrier, lock side, with the uniq
                    // shortcut: stop hashing once every orec is owned.
                    if (self.uniq_r.get() as usize) < self.active_n
                        && orecs.stamp(OrecKind::Read, cell.addr(), self.epoch_now)
                    {
                        self.uniq_r.set(self.uniq_r.get() + 1);
                    }
                }
                cell.read()
            }
        }
    }

    /// Write barrier.
    #[inline]
    pub fn write<T: TxWord>(&self, cell: &TxCell<T>, value: T) {
        match self.mode {
            ExecMode::FastHtm => cell.write(value),
            ExecMode::SlowHtm => {
                match (self.policy, self.orecs) {
                    (ElisionPolicy::RwTle, _) => {
                        // Figure 2: a slow-path transaction that needs to
                        // write cannot commit under RW-TLE.
                        rtle_htm::abort(abort_codes::RW_SLOW_WRITE);
                    }
                    (
                        ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. },
                        Some(orecs),
                    ) => {
                        if let Some((slot, stamp)) =
                            orecs.write_conflict_slot(cell.addr(), self.active_n, self.local_seq)
                        {
                            orecs.note_conflict(slot, stamp);
                            rtle_htm::abort(abort_codes::OREC_CONFLICT);
                        }
                    }
                    _ => unreachable!("slow path requires a refined policy"),
                }
                cell.write(value);
            }
            ExecMode::Stm => self.stm.expect("Stm mode carries a TmCtx").write(cell, value),
            ExecMode::UnderLock => {
                match (self.policy, self.orecs) {
                    (ElisionPolicy::RwTle, _)
                        // Figure 2, lock side: raise the write flag once.
                        // The plain store dooms every subscribed slow-path
                        // transaction before the data store below can be
                        // observed (the TSO argument of §3, made explicit
                        // by the emulation's versioned stores).
                        if !self.wrote.get() => {
                            self.write_flag.write(true);
                            self.wrote.set(true);
                            if let Some((tracer, tid)) = self.trace {
                                tracer.instant_now(tid, TraceKind::WriteFlagSet, 0);
                            }
                        }
                    (
                        ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. },
                        Some(orecs),
                    )
                        if (self.uniq_w.get() as usize) < self.active_n
                            && orecs.stamp(OrecKind::Write, cell.addr(), self.epoch_now)
                        => {
                            self.uniq_w.set(self.uniq_w.get() + 1);
                        }
                    _ => {}
                }
                cell.write(value);
            }
        }
    }

    /// Counters of distinct orecs acquired so far under the lock (§4.2's
    /// `uniq_r_orecs` / `uniq_w_orecs`); diagnostics.
    pub fn uniq_orecs(&self) -> (u32, u32) {
        (self.uniq_r.get(), self.uniq_w.get())
    }

    /// The software backend driving an [`ExecMode::Stm`] execution
    /// (`None` on hardware and lock paths).
    pub fn software_backend(&self) -> Option<&'static str> {
        self.stm.and_then(|t| t.backend_name())
    }
}

impl rtle_htm::TxAccess for Ctx<'_> {
    #[inline]
    fn load<T: TxWord>(&self, cell: &TxCell<T>) -> T {
        self.read(cell)
    }

    #[inline]
    fn store<T: TxWord>(&self, cell: &TxCell<T>, value: T) {
        self.write(cell, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flag() -> TxCell<bool> {
        TxCell::new(false)
    }

    #[test]
    fn fast_mode_reads_and_writes_plainly() {
        let f = flag();
        let ctx = Ctx::fast(ElisionPolicy::Tle, &f);
        assert_eq!(ctx.mode(), ExecMode::FastHtm);
        assert!(ctx.is_speculative());
        let c = TxCell::new(4u64);
        assert_eq!(ctx.read(&c), 4);
        ctx.write(&c, 5);
        assert_eq!(c.read_plain(), 5);
    }

    #[test]
    fn under_lock_rwtle_sets_flag_once() {
        let f = flag();
        let ctx = Ctx::under_lock(ElisionPolicy::RwTle, &f, None, 1, 0, None);
        assert!(!ctx.is_speculative());
        let c = TxCell::new(0u64);
        assert!(!f.read_plain());
        ctx.write(&c, 1);
        assert!(f.read_plain(), "first write must raise the flag");
        ctx.write(&c, 2);
        assert_eq!(c.read_plain(), 2);
    }

    #[test]
    fn under_lock_fgtle_stamps_and_uniq_shortcut() {
        let f = flag();
        let orecs = OrecTable::new(2);
        let ctx = Ctx::under_lock(ElisionPolicy::FgTle { orecs: 2 }, &f, Some(&orecs), 1, 2, None);
        let cells: Vec<Box<TxCell<u64>>> = (0..32).map(|_| Box::new(TxCell::new(0))).collect();
        for c in &cells {
            ctx.write(c, 7);
            let _ = ctx.read(c);
        }
        let (ur, uw) = ctx.uniq_orecs();
        assert!(uw <= 2 && ur <= 2, "cannot acquire more than all orecs");
        // With 32 random addresses over 2 orecs, both are owned w.h.p.
        assert_eq!(uw, 2);
        assert_eq!(orecs.stamped_since(OrecKind::Write, 1), 2);
    }

    #[test]
    fn slow_fgtle_read_conflict_aborts() {
        let f = flag();
        let orecs = OrecTable::new(1); // every address aliases
        let c = TxCell::new(0u64);
        // Holder (epoch 1) owns the only write orec.
        orecs.stamp(OrecKind::Write, 0x1234, 1);
        let r = rtle_htm::swhtm::try_txn(|| {
            let ctx = Ctx::slow(ElisionPolicy::FgTle { orecs: 1 }, &f, Some(&orecs), 1, 1);
            ctx.read(&c)
        });
        assert_eq!(
            r,
            Err(rtle_htm::AbortCode::Explicit(abort_codes::OREC_CONFLICT))
        );
    }

    #[test]
    fn slow_fgtle_write_conflicts_on_read_orec() {
        let f = flag();
        let orecs = OrecTable::new(1);
        let c = TxCell::new(0u64);
        orecs.stamp(OrecKind::Read, 0x1, 1); // holder only *read*
                                             // Slow reads are fine...
        let r = rtle_htm::swhtm::try_txn(|| {
            let ctx = Ctx::slow(ElisionPolicy::FgTle { orecs: 1 }, &f, Some(&orecs), 1, 1);
            ctx.read(&c)
        });
        assert!(r.is_ok(), "read-read parallelism");
        // ...but a slow write to a read-owned orec must abort.
        let r = rtle_htm::swhtm::try_txn(|| {
            let ctx = Ctx::slow(ElisionPolicy::FgTle { orecs: 1 }, &f, Some(&orecs), 1, 1);
            ctx.write(&c, 9);
        });
        assert_eq!(
            r,
            Err(rtle_htm::AbortCode::Explicit(abort_codes::OREC_CONFLICT))
        );
        assert_eq!(c.read_plain(), 0);
    }

    #[test]
    fn slow_rwtle_write_aborts() {
        let f = flag();
        let c = TxCell::new(0u64);
        let r = rtle_htm::swhtm::try_txn(|| {
            let ctx = Ctx::slow(ElisionPolicy::RwTle, &f, None, 0, 0);
            ctx.write(&c, 1);
        });
        assert_eq!(
            r,
            Err(rtle_htm::AbortCode::Explicit(abort_codes::RW_SLOW_WRITE))
        );
        assert_eq!(c.read_plain(), 0);
    }

    #[test]
    fn slow_path_conflicts_are_attributed_to_their_slot() {
        let f = flag();
        let orecs = OrecTable::new(1); // every address aliases to slot 0
        let c = TxCell::new(0u64);
        orecs.stamp(OrecKind::Write, 0x1234, 1);
        for _ in 0..3 {
            let r = rtle_htm::swhtm::try_txn(|| {
                let ctx = Ctx::slow(ElisionPolicy::FgTle { orecs: 1 }, &f, Some(&orecs), 1, 1);
                ctx.read(&c)
            });
            assert!(r.is_err());
        }
        let h = orecs.heatmap();
        assert_eq!(h.total_conflicts(), 3, "one attribution per self-abort");
        assert_eq!(h.conflicts[0], 3);
        assert_eq!(h.conflict_epoch[0], 1, "the owning stamp is recorded");
    }

    #[test]
    fn write_flag_raise_is_traced_when_enabled() {
        let f = flag();
        let tracer = Tracer::new(1, 16);
        let ctx = Ctx::under_lock(ElisionPolicy::RwTle, &f, None, 1, 0, Some((&tracer, 5)));
        let c = TxCell::new(0u64);
        ctx.write(&c, 1);
        ctx.write(&c, 2);
        if tracer.enabled() {
            let r = tracer.drain();
            assert_eq!(r.len(), 1, "the flag instant is recorded once");
            assert_eq!(r[0].kind, TraceKind::WriteFlagSet);
            assert_eq!(r[0].tid, 5);
        } else {
            assert!(tracer.drain().is_empty());
        }
    }

    #[test]
    fn slow_fgtle_unowned_orecs_allow_writes() {
        let f = flag();
        let orecs = OrecTable::new(4);
        let c = TxCell::new(0u64);
        // local_seq 2: stamps from epoch 1 are released.
        orecs.stamp(OrecKind::Write, c.addr(), 1);
        let r = rtle_htm::swhtm::try_txn(|| {
            let ctx = Ctx::slow(ElisionPolicy::FgTle { orecs: 4 }, &f, Some(&orecs), 2, 4);
            ctx.write(&c, 5);
            ctx.read(&c)
        });
        assert_eq!(r, Ok(5));
        assert_eq!(c.read_plain(), 5);
    }
}
