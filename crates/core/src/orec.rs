//! Ownership-record (orec) arrays for FG-TLE (§4).
//!
//! Two separate arrays record the lock holder's footprint: `r_orecs` for
//! reads and `w_orecs` for writes. They are separate so that an orec's
//! transition from unowned to *read*-owned does not abort hardware
//! transactions that only read addresses mapping to it (§4.2).
//!
//! Only the lock holder ever writes the arrays; slow-path hardware
//! transactions only read them. Stamping an orec stores the current odd
//! epoch; the pre-release epoch increment releases all orecs implicitly
//! (see [`crate::epoch::SeqEpoch`]).
//!
//! The *active* size can be changed by the lock holder while it holds the
//! lock (the adaptive extension of §4.2.1); slow-path transactions read the
//! active size inside their transaction, so a resize dooms them instead of
//! letting them index with a stale size.

use std::sync::atomic::{fence, Ordering};

use rtle_htm::hash::fast_hash;
use rtle_htm::TxCell;

use crate::epoch::SeqEpoch;

/// Which array an access stamps/checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecKind {
    /// The read-ownership array (`r_orecs`).
    Read,
    /// The write-ownership array (`w_orecs`).
    Write,
}

/// The pair of orec arrays attached to one [`crate::ElidableLock`].
#[derive(Debug)]
pub struct OrecTable {
    r_orecs: Box<[TxCell<u64>]>,
    w_orecs: Box<[TxCell<u64>]>,
    /// Number of orecs currently in use (≤ capacity). Read transactionally
    /// by the slow path; written only by the lock holder.
    active: TxCell<u64>,
}

impl OrecTable {
    /// Allocates a table with `capacity` orecs, all initially active.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "need at least one orec");
        OrecTable {
            r_orecs: (0..capacity).map(|_| TxCell::new(0)).collect(),
            w_orecs: (0..capacity).map(|_| TxCell::new(0)).collect(),
            active: TxCell::new(capacity as u64),
        }
    }

    /// Allocates a table with `capacity` orecs of which `active` are in use.
    pub fn with_active(capacity: usize, active: usize) -> Self {
        assert!(active >= 1 && active <= capacity);
        let t = OrecTable::new(capacity);
        t.active.write(active as u64);
        t
    }

    /// Total allocated orecs (resize ceiling).
    pub fn capacity(&self) -> usize {
        self.r_orecs.len()
    }

    /// Active orec count, plain read (lock-holder / reporting use).
    pub fn active_plain(&self) -> usize {
        self.active.read_plain() as usize
    }

    /// Active orec count, read transactionally (slow-path use: subscribes
    /// to resizes).
    #[inline]
    pub fn active_tx(&self) -> usize {
        self.active.read() as usize
    }

    /// Resizes the active portion. May only be called by the lock holder
    /// while it holds the lock (§4.2.1: "it is safe for the thread holding
    /// the lock to refine the conflict detection granularity by resizing
    /// the orecs array").
    pub fn resize_active(&self, new_active: usize) {
        assert!(new_active >= 1 && new_active <= self.capacity());
        self.active.write(new_active as u64);
    }

    /// Maps an address to its orec index under `n` active orecs
    /// (the paper's `fast_hash(addr, N)`).
    #[inline]
    pub fn index(addr: usize, n: usize) -> usize {
        fast_hash(addr as u64, n as u64) as usize
    }

    /// Lock-holder barrier half: stamps the orec for `addr` with `epoch`
    /// unless it already carries a stamp `>= epoch`. Returns `true` iff a
    /// store was performed (i.e. this orec was newly acquired by this
    /// critical section) — the caller maintains the `uniq_*_orecs` counter.
    #[inline]
    pub fn stamp(&self, kind: OrecKind, addr: usize, epoch: u64) -> bool {
        let n = self.active_plain();
        let orec = &self.array(kind)[Self::index(addr, n)];
        // "we only store a value in the orec if that value is greater than
        // the value already stored there" — avoids both the duplicate store
        // and its fence (§4.2).
        if orec.read_plain() >= epoch {
            return false;
        }
        orec.write(epoch);
        // §4's store-load fence: the acquisition store must be ordered
        // before the holder's subsequent data access, or a slow-path
        // transaction could read the old data after checking the old orec.
        // TxCell::write already publishes a fresh stripe version, but that
        // is an artifact of the software emulation — on real RTM hardware
        // the store above is plain, so the protocol-mandated fence stays
        // (rtle-check's orec-fence lint rule pins it here).
        fence(Ordering::SeqCst);
        true
    }

    /// Slow-path read barrier check (Figure 3, lines 2–5): inside a hardware
    /// transaction, is the *write* orec for `addr` owned? The transactional
    /// read also subscribes to the orec, so a later stamp by the holder
    /// aborts this transaction.
    #[inline]
    pub fn read_would_conflict(&self, addr: usize, n: usize, local_seq: u64) -> bool {
        let w = self.w_orecs[Self::index(addr, n)].read();
        SeqEpoch::owned(w, local_seq)
    }

    /// Slow-path write barrier check (Figure 3, lines 16–20): inside a
    /// hardware transaction, is the read *or* write orec for `addr` owned?
    #[inline]
    pub fn write_would_conflict(&self, addr: usize, n: usize, local_seq: u64) -> bool {
        let i = Self::index(addr, n);
        SeqEpoch::owned(self.r_orecs[i].read(), local_seq)
            || SeqEpoch::owned(self.w_orecs[i].read(), local_seq)
    }

    /// How many of the active orecs carry stamps at least `epoch`
    /// (diagnostics / the adaptive heuristic's utilization signal).
    pub fn stamped_since(&self, kind: OrecKind, epoch: u64) -> usize {
        let n = self.active_plain();
        self.array(kind)[..n]
            .iter()
            .filter(|o| o.read_plain() >= epoch)
            .count()
    }

    fn array(&self, kind: OrecKind) -> &[TxCell<u64>] {
        match kind {
            OrecKind::Read => &self.r_orecs,
            OrecKind::Write => &self.w_orecs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_once_per_epoch() {
        let t = OrecTable::new(16);
        assert!(t.stamp(OrecKind::Read, 0x1000, 1));
        assert!(
            !t.stamp(OrecKind::Read, 0x1000, 1),
            "second stamp is elided"
        );
        // A later critical section stamps again.
        assert!(t.stamp(OrecKind::Read, 0x1000, 3));
    }

    #[test]
    fn conflict_visibility_follows_epochs() {
        let t = OrecTable::new(16);
        let addr = 0xbeef_usize;
        let n = t.active_plain();

        // Holder in epoch 1 stamps a write orec.
        t.stamp(OrecKind::Write, addr, 1);
        // Slow txn that started during epoch 1 sees the conflict...
        assert!(t.read_would_conflict(addr, n, 1));
        assert!(t.write_would_conflict(addr, n, 1));
        // ...but one that starts after release (snapshot 2) does not.
        assert!(!t.read_would_conflict(addr, n, 2));
        assert!(!t.write_would_conflict(addr, n, 2));
    }

    #[test]
    fn read_stamp_blocks_writers_not_readers() {
        let t = OrecTable::new(16);
        let addr = 0xcafe_usize;
        let n = t.active_plain();
        t.stamp(OrecKind::Read, addr, 1);
        assert!(!t.read_would_conflict(addr, n, 1), "read-read is allowed");
        assert!(t.write_would_conflict(addr, n, 1), "read-write is not");
    }

    #[test]
    fn single_orec_aliases_everything() {
        let t = OrecTable::new(1);
        let n = t.active_plain();
        t.stamp(OrecKind::Write, 0x1, 1);
        assert!(
            t.read_would_conflict(0x9999, n, 1),
            "FG-TLE(1): any address conflicts"
        );
    }

    #[test]
    fn resize_active_changes_mapping_domain() {
        let t = OrecTable::with_active(64, 64);
        assert_eq!(t.active_plain(), 64);
        t.resize_active(4);
        assert_eq!(t.active_plain(), 4);
        // All indices now land in [0, 4).
        for a in 0..1000usize {
            assert!(OrecTable::index(a * 8, 4) < 4);
        }
    }

    #[test]
    fn stamped_since_counts_current_section_only() {
        let t = OrecTable::new(8);
        t.stamp(OrecKind::Write, 0x10, 1);
        t.stamp(OrecKind::Write, 0x20, 1);
        let stamped = t.stamped_since(OrecKind::Write, 1);
        assert!((1..=2).contains(&stamped), "two addrs may alias");
        assert_eq!(t.stamped_since(OrecKind::Write, 3), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = OrecTable::new(0);
    }
}
