//! Ownership-record (orec) arrays for FG-TLE (§4).
//!
//! Two separate arrays record the lock holder's footprint: `r_orecs` for
//! reads and `w_orecs` for writes. They are separate so that an orec's
//! transition from unowned to *read*-owned does not abort hardware
//! transactions that only read addresses mapping to it (§4.2).
//!
//! Only the lock holder ever writes the arrays; slow-path hardware
//! transactions only read them. Stamping an orec stores the current odd
//! epoch; the pre-release epoch increment releases all orecs implicitly
//! (see [`crate::epoch::SeqEpoch`]).
//!
//! The *active* size can be changed by the lock holder while it holds the
//! lock (the adaptive extension of §4.2.1); slow-path transactions read the
//! active size inside their transaction, so a resize dooms them instead of
//! letting them index with a stale size.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use rtle_htm::hash::fast_hash;
use rtle_htm::TxCell;
use rtle_obs::Json;

use crate::epoch::SeqEpoch;

/// Which array an access stamps/checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrecKind {
    /// The read-ownership array (`r_orecs`).
    Read,
    /// The write-ownership array (`w_orecs`).
    Write,
}

/// The pair of orec arrays attached to one [`crate::ElidableLock`].
#[derive(Debug)]
pub struct OrecTable {
    r_orecs: Box<[TxCell<u64>]>,
    w_orecs: Box<[TxCell<u64>]>,
    /// Number of orecs currently in use (≤ capacity). Read transactionally
    /// by the slow path; written only by the lock holder.
    active: TxCell<u64>,
    /// Conflict-attribution heatmap, capacity-indexed: how many slow-path
    /// self-aborts each slot caused. Plain (non-transactional) atomics on
    /// purpose — in the software HTM emulation they survive the explicit
    /// abort that immediately follows the increment, keeping the
    /// per-slot/aggregate invariant exact. (On real RTM the increment
    /// would roll back with the transaction; attribution there would need
    /// a post-abort re-check, noted in DESIGN.md §8.)
    conflicts: Box<[AtomicU64]>,
    /// The conflicting orec stamp (holder epoch) observed at each slot's
    /// most recent attributed conflict.
    conflict_epoch: Box<[AtomicU64]>,
    /// Holder-side acquisitions (stamp stores actually performed) per slot.
    stamps: Box<[AtomicU64]>,
}

impl OrecTable {
    /// Allocates a table with `capacity` orecs, all initially active.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "need at least one orec");
        OrecTable {
            r_orecs: (0..capacity).map(|_| TxCell::new(0)).collect(),
            w_orecs: (0..capacity).map(|_| TxCell::new(0)).collect(),
            active: TxCell::new(capacity as u64),
            conflicts: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            conflict_epoch: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            stamps: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Allocates a table with `capacity` orecs of which `active` are in use.
    pub fn with_active(capacity: usize, active: usize) -> Self {
        assert!(active >= 1 && active <= capacity);
        let t = OrecTable::new(capacity);
        t.active.write(active as u64);
        t
    }

    /// Total allocated orecs (resize ceiling).
    pub fn capacity(&self) -> usize {
        self.r_orecs.len()
    }

    /// Active orec count, plain read (lock-holder / reporting use).
    pub fn active_plain(&self) -> usize {
        self.active.read_plain() as usize
    }

    /// Active orec count, read transactionally (slow-path use: subscribes
    /// to resizes).
    #[inline]
    pub fn active_tx(&self) -> usize {
        self.active.read() as usize
    }

    /// Resizes the active portion. May only be called by the lock holder
    /// while it holds the lock (§4.2.1: "it is safe for the thread holding
    /// the lock to refine the conflict detection granularity by resizing
    /// the orecs array").
    pub fn resize_active(&self, new_active: usize) {
        assert!(new_active >= 1 && new_active <= self.capacity());
        self.active.write(new_active as u64);
    }

    /// Maps an address to its orec index under `n` active orecs
    /// (the paper's `fast_hash(addr, N)`).
    #[inline]
    pub fn index(addr: usize, n: usize) -> usize {
        fast_hash(addr as u64, n as u64) as usize
    }

    /// Lock-holder barrier half: stamps the orec for `addr` with `epoch`
    /// unless it already carries a stamp `>= epoch`. Returns `true` iff a
    /// store was performed (i.e. this orec was newly acquired by this
    /// critical section) — the caller maintains the `uniq_*_orecs` counter.
    #[inline]
    pub fn stamp(&self, kind: OrecKind, addr: usize, epoch: u64) -> bool {
        let n = self.active_plain();
        let i = Self::index(addr, n);
        let orec = &self.array(kind)[i];
        // "we only store a value in the orec if that value is greater than
        // the value already stored there" — avoids both the duplicate store
        // and its fence (§4.2).
        if orec.read_plain() >= epoch {
            return false;
        }
        orec.write(epoch);
        // §4's store-load fence: the acquisition store must be ordered
        // before the holder's subsequent data access, or a slow-path
        // transaction could read the old data after checking the old orec.
        // TxCell::write already publishes a fresh stripe version, but that
        // is an artifact of the software emulation — on real RTM hardware
        // the store above is plain, so the protocol-mandated fence stays
        // (rtle-check's `fence` pass proves it dominates every store that
        // follows the stamp, on every path).
        fence(Ordering::SeqCst);
        self.stamps[i].fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Slow-path read barrier check (Figure 3, lines 2–5): inside a hardware
    /// transaction, is the *write* orec for `addr` owned? The transactional
    /// read also subscribes to the orec, so a later stamp by the holder
    /// aborts this transaction.
    #[inline]
    pub fn read_would_conflict(&self, addr: usize, n: usize, local_seq: u64) -> bool {
        self.read_conflict_slot(addr, n, local_seq).is_some()
    }

    /// Like [`Self::read_would_conflict`], but on conflict returns the
    /// slot index and the owning stamp, so the caller can attribute the
    /// self-abort before raising it.
    #[inline]
    pub fn read_conflict_slot(&self, addr: usize, n: usize, local_seq: u64) -> Option<(usize, u64)> {
        let i = Self::index(addr, n);
        let w = self.w_orecs[i].read();
        SeqEpoch::owned(w, local_seq).then_some((i, w))
    }

    /// Slow-path write barrier check (Figure 3, lines 16–20): inside a
    /// hardware transaction, is the read *or* write orec for `addr` owned?
    #[inline]
    pub fn write_would_conflict(&self, addr: usize, n: usize, local_seq: u64) -> bool {
        self.write_conflict_slot(addr, n, local_seq).is_some()
    }

    /// Like [`Self::write_would_conflict`], but on conflict returns the
    /// slot index and the owning stamp (the read-orec stamp wins when both
    /// arrays own the slot).
    #[inline]
    pub fn write_conflict_slot(&self, addr: usize, n: usize, local_seq: u64) -> Option<(usize, u64)> {
        let i = Self::index(addr, n);
        let r = self.r_orecs[i].read();
        if SeqEpoch::owned(r, local_seq) {
            return Some((i, r));
        }
        let w = self.w_orecs[i].read();
        SeqEpoch::owned(w, local_seq).then_some((i, w))
    }

    /// Attributes one slow-path self-abort to `slot`, recording the
    /// conflicting stamp. Called immediately before the explicit
    /// [`crate::abort_codes::OREC_CONFLICT`] abort, so each such abort is
    /// attributed exactly once and the per-slot counts sum to the
    /// aggregate counter.
    #[inline]
    pub fn note_conflict(&self, slot: usize, stamp: u64) {
        self.conflicts[slot].fetch_add(1, Ordering::Relaxed);
        self.conflict_epoch[slot].store(stamp, Ordering::Relaxed);
    }

    /// The slot with the most attributed conflicts so far, with its
    /// count. `None` until a conflict has been attributed. Cumulative —
    /// the adaptive policy cites it as evidence, it is not a window rate.
    pub fn hottest_conflict_slot(&self) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, c) in self.conflicts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            let better = match best {
                None => n > 0,
                Some((_, bn)) => n > bn,
            };
            if better {
                best = Some((i, n));
            }
        }
        best
    }

    /// Point-in-time copy of the conflict-attribution arrays.
    pub fn heatmap(&self) -> OrecHeatmap {
        OrecHeatmap {
            capacity: self.capacity(),
            active: self.active_plain(),
            conflicts: self.conflicts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            stamps: self.stamps.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            conflict_epoch: self
                .conflict_epoch
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// How many of the active orecs carry stamps at least `epoch`
    /// (diagnostics / the adaptive heuristic's utilization signal).
    pub fn stamped_since(&self, kind: OrecKind, epoch: u64) -> usize {
        let n = self.active_plain();
        self.array(kind)[..n]
            .iter()
            .filter(|o| o.read_plain() >= epoch)
            .count()
    }

    fn array(&self, kind: OrecKind) -> &[TxCell<u64>] {
        match kind {
            OrecKind::Read => &self.r_orecs,
            OrecKind::Write => &self.w_orecs,
        }
    }
}

/// A snapshot of an [`OrecTable`]'s conflict-attribution heatmap: which
/// slots caused slow-path self-aborts ([`OrecTable::note_conflict`]), how
/// often the holder acquired each slot, and the stamp each conflict saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrecHeatmap {
    /// Allocated orecs at snapshot time.
    pub capacity: usize,
    /// Active orecs at snapshot time.
    pub active: usize,
    /// Per-slot attributed self-aborts (capacity-length).
    pub conflicts: Vec<u64>,
    /// Per-slot holder acquisitions (capacity-length).
    pub stamps: Vec<u64>,
    /// Per-slot stamp observed at the latest conflict (capacity-length;
    /// 0 when the slot never conflicted).
    pub conflict_epoch: Vec<u64>,
}

impl OrecHeatmap {
    /// Sum of per-slot conflict counts. Equals the lock's aggregate
    /// `OREC_CONFLICT` self-abort counter (the heatmap invariant —
    /// tested in `elidable.rs`).
    pub fn total_conflicts(&self) -> u64 {
        self.conflicts.iter().sum()
    }

    /// Sum of per-slot holder acquisitions.
    pub fn total_stamps(&self) -> u64 {
        self.stamps.iter().sum()
    }

    /// The `k` hottest slots by conflict count (descending; slots with
    /// zero conflicts are omitted).
    pub fn hottest(&self, k: usize) -> Vec<(usize, u64)> {
        let mut hot: Vec<(usize, u64)> = self
            .conflicts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(k);
        hot
    }

    /// Sparse JSON form: only slots with any activity are listed.
    pub fn to_json(&self) -> Json {
        let slots = (0..self.capacity)
            .filter(|&i| self.conflicts[i] > 0 || self.stamps[i] > 0)
            .map(|i| {
                Json::obj([
                    ("slot", Json::UInt(i as u64)),
                    ("conflicts", Json::UInt(self.conflicts[i])),
                    ("stamps", Json::UInt(self.stamps[i])),
                    ("last_epoch", Json::UInt(self.conflict_epoch[i])),
                ])
            })
            .collect();
        Json::obj([
            ("capacity", Json::UInt(self.capacity as u64)),
            ("active", Json::UInt(self.active as u64)),
            ("total_conflicts", Json::UInt(self.total_conflicts())),
            ("total_stamps", Json::UInt(self.total_stamps())),
            ("slots", Json::Arr(slots)),
        ])
    }

    /// Rebuilds a heatmap from [`Self::to_json`] output.
    pub fn from_json(j: &Json) -> Option<OrecHeatmap> {
        let capacity = j.get("capacity")?.as_u64()? as usize;
        let mut h = OrecHeatmap {
            capacity,
            active: j.get("active")?.as_u64()? as usize,
            conflicts: vec![0; capacity],
            stamps: vec![0; capacity],
            conflict_epoch: vec![0; capacity],
        };
        for s in j.get("slots")?.as_arr()? {
            let i = s.get("slot")?.as_u64()? as usize;
            if i >= capacity {
                return None;
            }
            h.conflicts[i] = s.get("conflicts")?.as_u64()?;
            h.stamps[i] = s.get("stamps")?.as_u64()?;
            h.conflict_epoch[i] = s.get("last_epoch")?.as_u64()?;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_once_per_epoch() {
        let t = OrecTable::new(16);
        assert!(t.stamp(OrecKind::Read, 0x1000, 1));
        assert!(
            !t.stamp(OrecKind::Read, 0x1000, 1),
            "second stamp is elided"
        );
        // A later critical section stamps again.
        assert!(t.stamp(OrecKind::Read, 0x1000, 3));
    }

    #[test]
    fn conflict_visibility_follows_epochs() {
        let t = OrecTable::new(16);
        let addr = 0xbeef_usize;
        let n = t.active_plain();

        // Holder in epoch 1 stamps a write orec.
        t.stamp(OrecKind::Write, addr, 1);
        // Slow txn that started during epoch 1 sees the conflict...
        assert!(t.read_would_conflict(addr, n, 1));
        assert!(t.write_would_conflict(addr, n, 1));
        // ...but one that starts after release (snapshot 2) does not.
        assert!(!t.read_would_conflict(addr, n, 2));
        assert!(!t.write_would_conflict(addr, n, 2));
    }

    #[test]
    fn read_stamp_blocks_writers_not_readers() {
        let t = OrecTable::new(16);
        let addr = 0xcafe_usize;
        let n = t.active_plain();
        t.stamp(OrecKind::Read, addr, 1);
        assert!(!t.read_would_conflict(addr, n, 1), "read-read is allowed");
        assert!(t.write_would_conflict(addr, n, 1), "read-write is not");
    }

    #[test]
    fn single_orec_aliases_everything() {
        let t = OrecTable::new(1);
        let n = t.active_plain();
        t.stamp(OrecKind::Write, 0x1, 1);
        assert!(
            t.read_would_conflict(0x9999, n, 1),
            "FG-TLE(1): any address conflicts"
        );
    }

    #[test]
    fn resize_active_changes_mapping_domain() {
        let t = OrecTable::with_active(64, 64);
        assert_eq!(t.active_plain(), 64);
        t.resize_active(4);
        assert_eq!(t.active_plain(), 4);
        // All indices now land in [0, 4).
        for a in 0..1000usize {
            assert!(OrecTable::index(a * 8, 4) < 4);
        }
    }

    #[test]
    fn stamped_since_counts_current_section_only() {
        let t = OrecTable::new(8);
        t.stamp(OrecKind::Write, 0x10, 1);
        t.stamp(OrecKind::Write, 0x20, 1);
        let stamped = t.stamped_since(OrecKind::Write, 1);
        assert!((1..=2).contains(&stamped), "two addrs may alias");
        assert_eq!(t.stamped_since(OrecKind::Write, 3), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = OrecTable::new(0);
    }

    #[test]
    fn conflict_slots_match_bool_checks_and_carry_stamps() {
        let t = OrecTable::new(16);
        let addr = 0xbeef_usize;
        let n = t.active_plain();
        t.stamp(OrecKind::Write, addr, 3);
        let (slot, stamp) = t.read_conflict_slot(addr, n, 3).expect("conflict");
        assert_eq!(slot, OrecTable::index(addr, n));
        assert_eq!(stamp, 3, "the owning stamp is reported");
        assert!(t.read_would_conflict(addr, n, 3));
        assert!(t.read_conflict_slot(addr, n, 4).is_none(), "released");
        // Read stamps surface through the write check only.
        let addr2 = 0x1234_usize;
        t.stamp(OrecKind::Read, addr2, 3);
        assert!(
            t.read_conflict_slot(addr2, n, 3).is_none()
                || OrecTable::index(addr2, n) == OrecTable::index(addr, n)
        );
        assert!(t.write_conflict_slot(addr2, n, 3).is_some());
    }

    #[test]
    fn heatmap_attribution_and_hottest() {
        let t = OrecTable::new(8);
        assert_eq!(t.hottest_conflict_slot(), None);
        t.note_conflict(2, 5);
        t.note_conflict(2, 7);
        t.note_conflict(6, 7);
        assert_eq!(t.hottest_conflict_slot(), Some((2, 2)));
        let h = t.heatmap();
        assert_eq!(h.total_conflicts(), 3);
        assert_eq!(h.conflicts[2], 2);
        assert_eq!(h.conflict_epoch[2], 7, "latest conflicting stamp");
        assert_eq!(h.hottest(10), vec![(2, 2), (6, 1)]);
    }

    #[test]
    fn heatmap_counts_holder_stamps_once_per_epoch() {
        let t = OrecTable::new(8);
        t.stamp(OrecKind::Write, 0x10, 1);
        t.stamp(OrecKind::Write, 0x10, 1); // elided duplicate: no store
        t.stamp(OrecKind::Write, 0x10, 3);
        let h = t.heatmap();
        assert_eq!(h.total_stamps(), 2, "only performed stores are counted");
    }

    #[test]
    fn heatmap_json_round_trips_sparsely() {
        let t = OrecTable::with_active(32, 8);
        t.note_conflict(1, 9);
        t.stamp(OrecKind::Read, 0x40, 9);
        let h = t.heatmap();
        let j = h.to_json();
        let back = OrecHeatmap::from_json(&j).expect("heatmap parses");
        assert_eq!(back, h);
        let slots = j.get("slots").and_then(Json::as_arr).unwrap();
        assert!(slots.len() <= 2, "sparse: only active slots listed");
        assert_eq!(j.get("active").and_then(Json::as_u64), Some(8));
    }
}
