#![warn(missing_docs)]
//! # rtle-core: refined transactional lock elision
//!
//! Faithful implementation of *Refined Transactional Lock Elision* (Dice,
//! Kogan, Lev; PPoPP 2016) — standard **TLE** plus the paper's two refined
//! variants, **RW-TLE** (§3) and **FG-TLE** (§4), the **adaptive FG-TLE**
//! extension sketched in §4.2.1, and the **lazy subscription** option of §5.
//!
//! The centerpiece is [`ElidableLock`]: a lock whose critical sections are
//! executed, whenever possible, as best-effort hardware transactions. Where
//! standard TLE stalls every speculating thread as soon as one thread holds
//! the lock, the refined variants let hardware transactions keep running on
//! an *instrumented slow path* concurrently with the (single) lock holder:
//!
//! * **RW-TLE**: only the lock holder's *writes* are instrumented (they set
//!   a `write_flag` the slow path subscribes to); slow-path transactions may
//!   not write at all — read-read parallelism with the lock holder.
//! * **FG-TLE**: the lock holder publishes its read/write footprint into two
//!   ownership-record arrays keyed by Wang-hash of the address; slow-path
//!   transactions check the orecs before every access and self-abort on
//!   potential conflicts — read *and* write parallelism, at the cost of
//!   instrumenting reads too.
//!
//! Critical sections are closures over a [`Ctx`] execution token whose
//! [`Ctx::read`]/[`Ctx::write`] accessors play the role GCC's transactional
//! instrumentation (libitm) plays in the paper: the same source runs
//! uninstrumented on the fast path, instrumented on the slow path, and
//! instrumented-under-lock when elision fails.
//!
//! ```
//! use rtle_core::{Ctx, ElidableLock, ElisionPolicy};
//! use rtle_htm::TxCell;
//!
//! let lock = ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }).build();
//! let counter = TxCell::new(0u64);
//! for _ in 0..10 {
//!     lock.execute(|ctx: &Ctx| {
//!         let v = ctx.read(&counter);
//!         ctx.write(&counter, v + 1);
//!     });
//! }
//! assert_eq!(counter.read_plain(), 10);
//! ```

pub mod adaptive;
pub mod barrier;
pub mod elidable;
pub mod epoch;
pub mod lock;
pub mod orec;
pub mod policy;
pub mod stats;

pub use barrier::{Ctx, ExecMode};
pub use elidable::{ElidableLock, ElidableLockBuilder, LockedSection, SoftwarePresence};
pub use lock::{TatasLock, TicketLock};
pub use orec::OrecTable;
pub use policy::{ElisionPolicy, RetryPolicy};
pub use stats::{ExecStats, StatsSnapshot};

/// Re-export of the paper's `fast_hash` (\[25\], Thomas Wang) used for orec
/// indexing, and of the HTM word/cell types critical sections are built on.
pub use rtle_htm::hash::{fast_hash, wang_mix64};
pub use rtle_htm::{AbortCode, HtmBackend, SwHtmBackend, TxCell, TxWord};

/// Re-export of the observability crate so callers can install a
/// [`rtle_obs::Recorder`] via [`elidable::ElidableLockBuilder::recorder`]
/// without a separate dependency.
pub use rtle_obs as obs;

/// Explicit HTM abort codes used by the elision runtimes. Surfaced so tests
/// and tools can attribute aborts precisely.
pub mod abort_codes {
    /// Fast path found the lock held at (early or lazy) subscription time.
    pub const LOCK_HELD: u8 = 1;
    /// RW-TLE slow path found `write_flag` already set at start.
    pub const WRITE_FLAG_SET: u8 = 2;
    /// RW-TLE slow path attempted a write (read-only parallelism only).
    pub const RW_SLOW_WRITE: u8 = 3;
    /// FG-TLE slow path hit an orec owned by the lock holder.
    pub const OREC_CONFLICT: u8 = 4;
    /// Adaptive FG-TLE has the slow path disabled (plain-TLE mode).
    pub const FG_DISABLED: u8 = 5;
    /// Lazy subscription found the lock still held at commit time.
    pub const LAZY_LOCK_HELD: u8 = 6;
    /// A composable transaction found a participant lock (e.g. a shard
    /// lock it enrolled mid-transaction) held by a pessimistic owner.
    pub const PARTICIPANT_LOCK_HELD: u8 = 7;
}
