//! [`ElidableLock`]: the Figure 1 state machine.
//!
//! ```text
//!            lock free?──yes──▶ fast HTM attempt (subscribe → run → commit)
//!               │no                   │abort ×5 ──────────────┐
//!               ▼                     ▼                        ▼
//!   TLE: wait for release   refined: slow HTM attempt    acquire the lock,
//!   then retry fast         (instrumented, unlimited     run instrumented CS,
//!                           while the lock is held)      release
//! ```
//!
//! Standard TLE takes the left column: the moment some thread holds the
//! lock, everyone else waits. The refined variants take the middle column:
//! speculation continues on the instrumented slow path, concurrent with the
//! single lock holder.

use std::sync::Arc;
use std::time::Instant;

use rtle_htm::{AbortCode, HtmBackend, SwHtmBackend, TxCell};
use rtle_hytm::{run_sw, SoftwareTm};
use rtle_obs::{
    AttemptEvent, LiveSource, MetricsRegistry, ObsConfig, Outcome, PathKind, Recorder,
    SourceSnapshot, TraceKind,
};

use crate::abort_codes;
use crate::adaptive::AdaptiveState;
use crate::barrier::Ctx;
use crate::epoch::SeqEpoch;
use crate::lock::{saturated_pause, TatasLock, BACKOFF_MAX, BACKOFF_MIN};
use crate::orec::OrecTable;
use crate::policy::{ElisionPolicy, RetryPolicy};
use crate::stats::{ExecStats, Path};

/// A lock whose critical sections are executed speculatively on HTM
/// whenever possible, with the paper's refined slow paths.
///
/// # Panics in critical sections
///
/// A critical section that panics while holding the lock leaves the lock
/// held (poisoned), like a raw spin lock would; speculative executions that
/// panic roll back and re-raise.
pub struct ElidableLock<B: HtmBackend = SwHtmBackend> {
    backend: B,
    policy: ElisionPolicy,
    retry: RetryPolicy,
    lock: TatasLock,
    /// RW-TLE's write flag (§3), colocated with the lock conceptually.
    write_flag: TxCell<bool>,
    /// FG-TLE's `global_seq_number` (§4.2).
    epoch: SeqEpoch,
    /// FG-TLE's ownership records; `None` for Lock/TLE/RW-TLE.
    orecs: Option<OrecTable>,
    /// Adaptive FG-TLE's "slow path enabled" flag (§4.2.1).
    fg_enabled: TxCell<bool>,
    adaptive: Option<AdaptiveState>,
    /// Pluggable software-TM fallbacks (`with_software_backend`). When
    /// non-empty, operations that exhaust their speculation budget run as
    /// software transactions instead of acquiring the lock.
    sw_backends: Vec<Arc<dyn SoftwareTm>>,
    /// Number of software transactions currently inside a backend. A
    /// [`TxCell`] so committing hardware transactions can subscribe to it:
    /// zero means no instrumentation needed, and a racing software entry
    /// (plain RMW) dooms them.
    sw_running: TxCell<u64>,
    stats: ExecStats,
    /// Attempt-level observability. `None` (the default) costs one branch
    /// per operation; installed, sampled operations additionally pay two
    /// `Instant` reads and a few relaxed stores.
    recorder: Option<Arc<Recorder>>,
}

/// Per-thread identity for observability: a stable small key (ring and
/// window stripe selection) and a decrementing sampling ticket.
mod obs_thread {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT_KEY: AtomicU64 = AtomicU64::new(0);

    /// Sentinel for "this thread has no key yet"; real keys are the
    /// small dense integers `NEXT_KEY` hands out.
    const UNASSIGNED: u64 = u64::MAX;

    /// The thread's whole observability identity in one const-initialized
    /// TLS slot: the stable key (ring/window stripe selection) and the
    /// decrementing sampling ticket. One slot means one TLS address
    /// computation per operation; const initialization means no
    /// lazy-init branch or destructor registration on that path (a
    /// non-const `thread_local!` pays an initialization check on every
    /// access). The key is allocated lazily behind the [`UNASSIGNED`]
    /// sentinel, off the unsampled path entirely.
    struct ObsTls {
        key: Cell<u64>,
        /// Operations left until the next sampled one; `0` = sample now.
        ticket: Cell<u64>,
    }

    thread_local! {
        static TLS: ObsTls = const {
            ObsTls {
                key: Cell::new(UNASSIGNED),
                ticket: Cell::new(0),
            }
        };
    }

    #[inline]
    fn key_of(t: &ObsTls) -> u64 {
        let k = t.key.get();
        if k != UNASSIGNED {
            k
        } else {
            // ordering: key allocation — only uniqueness matters, the
            // value never synchronizes other memory.
            let k = NEXT_KEY.fetch_add(1, Ordering::Relaxed);
            t.key.set(k);
            k
        }
    }

    /// The calling thread's stable observability key (also the window
    /// collector's stripe selector).
    #[inline]
    pub(super) fn key() -> u64 {
        TLS.with(key_of)
    }

    /// Ticket-based sampling: one decrement-and-test per operation,
    /// reloading with `period - 1` each time it hits zero, so a thread
    /// samples 1 in `period` operations. Returns the thread key for
    /// sampled operations, so the caller needs no second TLS access.
    /// The unsampled path — the one an always-on recorder puts every
    /// operation but the sampled minority through — is a single TLS
    /// read-modify-write of the const-initialized slot. The ticket is
    /// shared across locks on the thread, so with several sampled
    /// recorders the phases interleave — fine for statistics.
    #[inline]
    pub(super) fn take_ticket(period: u64) -> Option<u64> {
        TLS.with(|t| {
            let v = t.ticket.get();
            if v == 0 {
                t.ticket.set(period.saturating_sub(1));
                Some(key_of(t))
            } else {
                t.ticket.set(v - 1);
                None
            }
        })
    }
}

/// Recording context threaded through one sampled operation.
#[derive(Clone, Copy)]
struct Rec<'a> {
    recorder: &'a Recorder,
    thread_key: u64,
}

impl Rec<'_> {
    #[inline]
    fn attempt(&self, path: PathKind, outcome: Outcome, attempt: u32, started: Instant) {
        let latency = started.elapsed().as_nanos() as u64;
        // Mirror the attempt onto the causal-trace timeline: consecutive
        // fast/slow/lock spans on the same tid *are* the path-transition
        // history. `span_ending_now` is a no-op (and the mapping dead code)
        // when the `trace` feature is off.
        let tracer = self.recorder.tracer();
        if tracer.enabled() {
            let kind = match (path, outcome.is_commit()) {
                (PathKind::FastHtm, true) => TraceKind::FastCommit,
                (PathKind::FastHtm, false) => TraceKind::FastAbort,
                (PathKind::SlowHtm, true) => TraceKind::SlowCommit,
                (PathKind::SlowHtm, false) => TraceKind::SlowAbort,
                (PathKind::Lock, _) => TraceKind::LockHeld,
            };
            let arg = match outcome {
                Outcome::AbortExplicit(c) => c as u64,
                _ => 0,
            };
            tracer.span_ending_now(self.thread_key, kind, latency, arg);
        }
        self.recorder.record_attempt(
            self.thread_key,
            AttemptEvent {
                path,
                outcome,
                attempt: attempt.min(u8::MAX as u32) as u8,
                latency,
            },
        );
    }
}

/// Fluent configuration for an [`ElidableLock`] — the one construction
/// entry point (the historical `new`/`with_retry`/`with_backend`/
/// `with_recorder` constructor matrix is gone):
///
/// ```
/// use std::sync::Arc;
/// use rtle_core::{ElidableLock, ElisionPolicy, RetryPolicy};
/// use rtle_obs::{ObsConfig, Recorder};
///
/// let lock = ElidableLock::builder()
///     .policy(ElisionPolicy::FgTle { orecs: 64 })
///     .retry(RetryPolicy { max_attempts: 3, ..Default::default() })
///     .recorder(Arc::new(Recorder::new(ObsConfig::default())))
///     .build();
/// assert_eq!(lock.retry_policy().max_attempts, 3);
/// ```
///
/// The builder is `Clone` (when the backend is), so it doubles as a
/// *template*: sharded containers clone one builder per shard, giving
/// every shard an identical configuration from a single description.
#[derive(Clone)]
pub struct ElidableLockBuilder<B: HtmBackend = SwHtmBackend> {
    backend: B,
    policy: ElisionPolicy,
    retry: RetryPolicy,
    recorder: Option<Arc<Recorder>>,
    sw_backends: Vec<Arc<dyn SoftwareTm>>,
}

impl<B: HtmBackend> std::fmt::Debug for ElidableLockBuilder<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sw: Vec<&'static str> = self.sw_backends.iter().map(|t| t.name()).collect();
        f.debug_struct("ElidableLockBuilder")
            .field("policy", &self.policy.label())
            .field("backend", &self.backend.name())
            .field("retry", &self.retry)
            .field("recorder", &self.recorder.is_some())
            .field("software", &sw)
            .finish()
    }
}

impl Default for ElidableLockBuilder<SwHtmBackend> {
    fn default() -> Self {
        ElidableLockBuilder {
            backend: SwHtmBackend,
            policy: ElisionPolicy::Tle,
            retry: RetryPolicy::default(),
            recorder: None,
            sw_backends: Vec::new(),
        }
    }
}

impl<B: HtmBackend> ElidableLockBuilder<B> {
    /// Sets the elision policy (default: [`ElisionPolicy::Tle`]).
    pub fn policy(mut self, policy: ElisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry policy (default: the paper's 5-attempt policy).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Swaps the HTM backend (default: the software emulation,
    /// [`SwHtmBackend`]). Resets nothing else.
    pub fn backend<B2: HtmBackend>(self, backend: B2) -> ElidableLockBuilder<B2> {
        ElidableLockBuilder {
            backend,
            policy: self.policy,
            retry: self.retry,
            recorder: self.recorder,
            sw_backends: self.sw_backends,
        }
    }

    /// Installs a pluggable software-TM fallback ([`SoftwareTm`]): when
    /// speculation fails, the operation runs as a software transaction on
    /// this backend instead of acquiring the lock pessimistically — the
    /// fallback itself stays concurrent (NOrec: concurrent readers; TL2:
    /// concurrent disjoint writers too).
    ///
    /// May be called more than once. With two or more backends the lock
    /// chooses per workload using the orec conflict-heatmap signal:
    /// concentrated conflicts (one hot slot dominating) select the *first*
    /// registered backend — register the value-validating, hot-key-immune
    /// one (NOrec) first — while dispersed conflicts select the *second*
    /// (register the disjoint-writer-friendly one, TL2, second). Policies
    /// without orecs always use the first.
    pub fn with_software_backend(mut self, tm: Arc<dyn SoftwareTm>) -> Self {
        self.sw_backends.push(tm);
        self
    }

    /// Installs an attempt-level [`Recorder`]; sampled operations then
    /// emit events, latency histograms, and adaptive decision traces.
    /// Shards built from one template share the recorder, so their
    /// attempt streams aggregate into a single observability snapshot.
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Opts this lock into the live telemetry plane: registers its
    /// recorder with `registry` under `name`, so a
    /// [`rtle_obs::LiveServer`] scraping that registry sees the lock's
    /// commit-path mix, abort composition, and window series while the
    /// workload runs. If no recorder was installed yet, a windowed one
    /// is created (100 ms windows) — a live plane without a time axis
    /// cannot show a collapse happening.
    pub fn with_live(mut self, registry: &MetricsRegistry, name: impl Into<String>) -> Self {
        let recorder = self.recorder.get_or_insert_with(|| {
            Arc::new(Recorder::new(ObsConfig {
                window_len_ms: 100,
                ..ObsConfig::default()
            }))
        });
        registry.register(name, Arc::clone(recorder) as Arc<dyn LiveSource>);
        self
    }

    /// Builds the lock.
    pub fn build(self) -> ElidableLock<B> {
        ElidableLock::assemble(
            self.backend,
            self.policy,
            self.retry,
            self.recorder,
            self.sw_backends,
        )
    }
}

impl ElidableLock<SwHtmBackend> {
    /// Starts configuring a lock; see [`ElidableLockBuilder`].
    pub fn builder() -> ElidableLockBuilder<SwHtmBackend> {
        ElidableLockBuilder::default()
    }
}

impl<B: HtmBackend> ElidableLock<B> {
    /// The one real constructor; every public entry point routes here.
    fn assemble(
        backend: B,
        policy: ElisionPolicy,
        retry: RetryPolicy,
        recorder: Option<Arc<Recorder>>,
        sw_backends: Vec<Arc<dyn SoftwareTm>>,
    ) -> Self {
        let orecs = policy.orec_capacity().map(OrecTable::new);
        if let (
            ElisionPolicy::AdaptiveFgTle {
                initial_orecs,
                max_orecs,
            },
            Some(t),
        ) = (policy, orecs.as_ref())
        {
            assert!(initial_orecs >= 1 && initial_orecs <= max_orecs);
            t.resize_active(initial_orecs);
        }
        let adaptive = match policy {
            ElisionPolicy::AdaptiveFgTle { initial_orecs, .. } => {
                Some(AdaptiveState::new(initial_orecs))
            }
            _ => None,
        };
        ElidableLock {
            backend,
            policy,
            retry,
            lock: TatasLock::new(),
            write_flag: TxCell::new(false),
            epoch: SeqEpoch::new(),
            orecs,
            fg_enabled: TxCell::new(true),
            adaptive,
            sw_backends,
            sw_running: TxCell::new(0),
            stats: ExecStats::new(),
            recorder,
        }
    }

    /// The installed recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The policy this lock runs.
    pub fn policy(&self) -> ElisionPolicy {
        self.policy
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Live statistics for this lock.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The orec table, if the policy has one (diagnostics).
    pub fn orec_table(&self) -> Option<&OrecTable> {
        self.orecs.as_ref()
    }

    /// Snapshot of the per-orec conflict-attribution heatmap (`None` for
    /// policies without orecs). Its [`crate::orec::OrecHeatmap::total_conflicts`]
    /// equals this lock's aggregate `OREC_CONFLICT` self-abort counter.
    pub fn orec_heatmap(&self) -> Option<crate::orec::OrecHeatmap> {
        self.orecs.as_ref().map(OrecTable::heatmap)
    }

    /// Adaptive FG-TLE diagnostics: whether the instrumented slow path is
    /// currently enabled (`None` for non-adaptive policies).
    pub fn slow_path_enabled(&self) -> Option<bool> {
        self.adaptive.as_ref().map(|_| self.fg_enabled.read_plain())
    }

    /// Executes `cs` as one critical section under this lock's policy.
    ///
    /// `cs` may run several times (speculative attempts that abort), so it
    /// must be idempotent-up-to-`Ctx` — all shared effects must go through
    /// [`Ctx::read`]/[`Ctx::write`], exactly as the paper requires all
    /// shared accesses in atomic blocks to be instrumented.
    pub fn execute<R>(&self, cs: impl Fn(&Ctx<'_>) -> R) -> R {
        // The recording decision is made once per operation, out of the
        // retry loop: unsampled (and recorder-less) operations run the
        // exact uninstrumented path.
        let rec = match &self.recorder {
            Some(recorder) => obs_thread::take_ticket(recorder.sample_period())
                .map(|thread_key| Rec {
                    recorder,
                    thread_key,
                }),
            None => None,
        };
        let r = self.execute_inner(&cs, rec);
        self.stats.record_op();
        r
    }

    /// Executes `cs` like [`Self::execute`], additionally recording the
    /// operation's end-to-end latency — measured from `intended_start`,
    /// not from now — into the recorder's windowed telemetry (a no-op
    /// without a recorder or window collector; unlike attempt events
    /// this is recorded for every operation, since tail percentiles
    /// cannot be sampled honestly).
    ///
    /// Open-loop harnesses pass the operation's *scheduled* arrival
    /// time: when the lock convoys and the worker falls behind, the
    /// queueing delay is charged to the operation, which corrects the
    /// coordinated omission a closed-loop start-to-end measurement
    /// would commit.
    pub fn execute_from<R>(&self, intended_start: Instant, cs: impl Fn(&Ctx<'_>) -> R) -> R {
        let r = self.execute(cs);
        if let Some(recorder) = &self.recorder {
            recorder
                .record_op_latency(obs_thread::key(), intended_start.elapsed().as_nanos() as u64);
        }
        r
    }

    fn execute_inner<R>(&self, cs: &impl Fn(&Ctx<'_>) -> R, rec: Option<Rec<'_>>) -> R {
        if self.policy == ElisionPolicy::LockOnly {
            return self.run_under_lock(cs, rec, 0);
        }

        match self.speculative_phase(cs, rec) {
            Ok(r) => r,
            Err(attempts) => {
                // Speculation budget exhausted. With a pluggable software TM
                // the operation stays concurrent (a software transaction)
                // instead of serializing behind the lock.
                if let Some(tm) = self.select_software_backend() {
                    return self.run_software(&**tm, cs);
                }
                self.run_under_lock(cs, rec, attempts)
            }
        }
    }

    /// The speculative half of [`Self::execute`]'s ladder: fast attempts
    /// while the lock is free, instrumented slow attempts while it is held,
    /// up to the retry policy's budgets. `Ok` carries the committed result;
    /// `Err` carries the attempt count for the caller's fallback decision.
    fn speculative_phase<R>(
        &self,
        cs: &impl Fn(&Ctx<'_>) -> R,
        rec: Option<Rec<'_>>,
    ) -> Result<R, u32> {
        let mut attempts = 0u32;
        let mut slow_attempts = 0u32;
        while attempts < self.retry.max_attempts {
            if self.lock.is_held() {
                if self.policy.has_slow_path()
                    && self
                        .retry
                        .max_slow_attempts
                        .is_none_or(|cap| slow_attempts < cap)
                {
                    // Refined TLE: speculate on the instrumented slow path,
                    // concurrently with the lock holder. These attempts are
                    // not charged to the fast-path budget (§6.2.1), but an
                    // anti-starvation cap may bound them (RetryPolicy).
                    let t0 = rec.map(|_| Instant::now());
                    match self.slow_attempt(cs) {
                        Ok(r) => {
                            self.stats.record_commit(Path::SlowHtm);
                            if let (Some(rc), Some(t0)) = (rec, t0) {
                                rc.attempt(
                                    PathKind::SlowHtm,
                                    Outcome::Commit,
                                    attempts + slow_attempts,
                                    t0,
                                );
                            }
                            return Ok(r);
                        }
                        Err(code) => {
                            self.stats.record_abort(Path::SlowHtm, code);
                            if let (Some(rc), Some(t0)) = (rec, t0) {
                                rc.attempt(
                                    PathKind::SlowHtm,
                                    Outcome::from_abort(code),
                                    attempts + slow_attempts,
                                    t0,
                                );
                            }
                            slow_attempts += 1;
                            if slow_attempt_hopeless(code) {
                                self.lock.spin_while_held();
                            } else {
                                brief_pause();
                            }
                            continue;
                        }
                    }
                } else if self.policy.has_slow_path() {
                    // Anti-starvation cap exceeded: stop speculating and
                    // take the lock, bounding this operation's total work.
                    break;
                }
                // Standard TLE: wait for the lock to be released.
                self.lock.spin_while_held();
                continue;
            }

            let t0 = rec.map(|_| Instant::now());
            match self.fast_attempt(cs) {
                Ok(r) => {
                    self.stats.record_commit(Path::FastHtm);
                    if let (Some(rc), Some(t0)) = (rec, t0) {
                        rc.attempt(
                            PathKind::FastHtm,
                            Outcome::Commit,
                            attempts + slow_attempts,
                            t0,
                        );
                    }
                    return Ok(r);
                }
                Err(code) => {
                    self.stats.record_abort(Path::FastHtm, code);
                    if let (Some(rc), Some(t0)) = (rec, t0) {
                        rc.attempt(
                            PathKind::FastHtm,
                            Outcome::from_abort(code),
                            attempts + slow_attempts,
                            t0,
                        );
                    }
                    attempts += 1;
                    if self.retry.give_up_on_unsupported && !code.may_retry() {
                        break;
                    }
                    // Anti-lemming: never start a transaction into a held
                    // lock ([16]).
                    self.lock.spin_while_held();
                }
            }
        }

        Err(attempts + slow_attempts)
    }

    /// Runs `cs` speculatively only — the fast/slow HTM ladder with this
    /// lock's retry policy, **never** the software or pessimistic
    /// fallbacks. Returns `None` when the speculation budget is exhausted
    /// (or the policy is [`ElisionPolicy::LockOnly`]), leaving the caller
    /// free to choose its own fallback. This is the composable-transaction
    /// entry point: `rtle-stm`'s `atomically` drives its own
    /// HTM → software → pessimistic ladder, so it needs the speculative
    /// phase as a separable step.
    pub fn try_speculate<R>(&self, cs: impl Fn(&Ctx<'_>) -> R) -> Option<R> {
        if self.policy == ElisionPolicy::LockOnly {
            return None;
        }
        let r = self.speculative_phase(&cs, None).ok();
        if r.is_some() {
            self.stats.record_op();
        }
        r
    }

    /// Whether the lock word is currently held (advisory snapshot).
    pub fn is_held(&self) -> bool {
        self.lock.is_held()
    }

    /// Subscribes the calling *hardware transaction* to this lock as a
    /// composable-transaction participant: transactionally reads the lock
    /// word (so a later acquisition dooms the transaction) and aborts at
    /// once with [`abort_codes::PARTICIPANT_LOCK_HELD`] if it is already
    /// held — a holder may be mutating this lock's data with instrumented
    /// under-lock writes the transaction cannot coexist with, because its
    /// barriers check a *different* lock's orecs/write-flag.
    ///
    /// Must be called inside a hardware transaction.
    pub fn subscribe_speculatively(&self) {
        if self.lock.subscribe() {
            rtle_htm::abort(abort_codes::PARTICIPANT_LOCK_HELD);
        }
    }

    /// The software-TM fallbacks installed on this lock, in registration
    /// order. Composable transactions use this to verify that a
    /// participant lock shares its space's backends (`Arc` identity), the
    /// precondition for the hybrid commit-hook protocol to cover both.
    pub fn software_backends(&self) -> &[Arc<dyn SoftwareTm>] {
        &self.sw_backends
    }

    /// The software backend the lock would select right now (the
    /// heatmap-driven choice `execute` makes), cloned for the caller to
    /// drive directly. `None` when no fallback is installed.
    pub fn selected_software_backend(&self) -> Option<Arc<dyn SoftwareTm>> {
        self.select_software_backend().map(Arc::clone)
    }

    /// One non-blocking shot at the software-presence protocol: raises the
    /// `sw_running` counter iff the lock is observed free (re-checked after
    /// the raise, exactly like the internal software path). On success the
    /// returned guard keeps pessimistic acquirers of *this* lock waiting in
    /// [`Self::quiesce_software`] until it drops — giving an external
    /// software transaction (e.g. an `atomically` space's backend touching
    /// this lock's data) the same holder exclusion the built-in software
    /// fallback enjoys. Returns `None` when the lock is held; the caller
    /// must back off *without blocking* (it may hold other presences, and
    /// blocking here closes a deadlock cycle with multi-lock acquirers).
    pub fn try_software_presence(&self) -> Option<SoftwarePresence<'_>> {
        if self.lock.is_held() {
            return None;
        }
        self.sw_running.fetch_add_plain(1);
        if self.lock.is_held() {
            self.sw_running.fetch_add_plain(u64::MAX);
            return None;
        }
        Some(SoftwarePresence {
            counter: &self.sw_running,
        })
    }

    /// Participant-side hardware commit hook: gives this lock's software
    /// backends their commit-time instrumentation if software transactions
    /// are live on it — the same [`Self::hw_commit_hooks`] the lock's own
    /// hardware paths run, exposed for hardware transactions that touched
    /// this lock's data as composable-transaction participants (their
    /// commit otherwise bypasses this lock entirely).
    ///
    /// Must be called inside a hardware transaction.
    pub fn participant_commit_hook(&self) {
        self.hw_commit_hooks();
    }

    /// Picks the software backend for the current workload, or `None`
    /// when no fallback is installed. With two or more backends the orec
    /// conflict heatmap decides: conflicts concentrated on one hot slot
    /// favor the first registered backend (value-validating — a hot key
    /// revalidates cheaply), dispersed conflicts favor the second
    /// (per-stripe locking — disjoint writers never meet).
    fn select_software_backend(&self) -> Option<&Arc<dyn SoftwareTm>> {
        match self.sw_backends.len() {
            0 => None,
            1 => self.sw_backends.first(),
            _ => {
                let dispersed = self.orec_heatmap().is_some_and(|heat| {
                    let total = heat.total_conflicts();
                    let max_slot = heat.conflicts.iter().copied().max().unwrap_or(0);
                    // Enough signal, and no single slot holding a majority.
                    total >= 64 && max_slot * 2 <= total
                });
                self.sw_backends.get(if dispersed { 1 } else { 0 })
            }
        }
    }

    /// The software backend the lock would run right now, by name
    /// (diagnostics / telemetry; `None` when no fallback is installed).
    pub fn software_backend_name(&self) -> Option<&'static str> {
        self.select_software_backend().map(|tm| tm.name())
    }

    /// Runs `cs` as a software transaction on `tm`, cooperating with the
    /// pessimistic lock path via the `sw_running` presence counter: the
    /// lock holder's instrumented writes do not speak the backend's
    /// validation protocol, so software transactions never overlap a held
    /// lock (and vice versa — see [`Self::quiesce_software`]).
    fn run_software<R>(&self, tm: &dyn SoftwareTm, cs: &impl Fn(&Ctx<'_>) -> R) -> R {
        // Presence protocol: raise the counter only while the lock is
        // observed free, re-checking after the raise. A holder that
        // acquired between our check and raise sees the counter and waits
        // in `quiesce_software`; we see the held lock and retreat. Both
        // sides eventually stop colliding because software transactions
        // are finite and lock holds are finite.
        loop {
            self.lock.spin_while_held();
            self.sw_running.fetch_add_plain(1);
            if !self.lock.is_held() {
                break;
            }
            self.sw_running.fetch_add_plain(u64::MAX);
        }
        struct Presence<'a>(&'a TxCell<u64>);
        impl Drop for Presence<'_> {
            fn drop(&mut self) {
                self.0.fetch_add_plain(u64::MAX);
            }
        }
        let _presence = Presence(&self.sw_running);
        let r = run_sw(tm, |tmctx| {
            let ctx = Ctx::stm(self.policy, &self.write_flag, tmctx);
            cs(&ctx)
        });
        self.stats.record_stm_commit();
        r
    }

    /// Lock-holder side of the software/pessimistic exclusion: after
    /// acquiring the lock, wait until no software transaction is inside a
    /// backend. New arrivals observe the held lock and retreat, so this
    /// terminates.
    fn quiesce_software(&self) {
        if self.sw_backends.is_empty() {
            return;
        }
        let mut backoff = BACKOFF_MIN;
        while self.sw_running.read_plain() != 0 {
            if backoff >= BACKOFF_MAX {
                saturated_pause();
            } else {
                for _ in 0..backoff {
                    std::hint::spin_loop();
                }
                backoff <<= 1;
            }
        }
    }

    /// Hardware-commit hook: committing hardware transactions subscribe to
    /// the software presence counter and give each live backend its chance
    /// to serialize against them (NOrec bumps its clock; TL2 aborts the
    /// hardware transaction, whose plain-store commits its stripe versions
    /// cannot observe). Zero-cost when no software transaction is running:
    /// one transactional read that also dooms this transaction should a
    /// software entry race in.
    #[inline]
    fn hw_commit_hooks(&self) {
        if !self.sw_backends.is_empty() && self.sw_running.read() > 0 {
            for tm in &self.sw_backends {
                tm.hw_commit_hook();
            }
        }
    }

    /// One uninstrumented fast-path attempt.
    fn fast_attempt<R>(&self, cs: &impl Fn(&Ctx<'_>) -> R) -> Result<R, AbortCode> {
        self.backend.try_txn(|| {
            if !self.retry.lazy_subscription && self.lock.subscribe() {
                rtle_htm::abort(abort_codes::LOCK_HELD);
            }
            let ctx = Ctx::fast(self.policy, &self.write_flag);
            let r = cs(&ctx);
            if self.retry.lazy_subscription && self.lock.subscribe() {
                rtle_htm::abort(abort_codes::LAZY_LOCK_HELD);
            }
            self.hw_commit_hooks();
            r
        })
    }

    /// One instrumented slow-path attempt (lock observed held).
    fn slow_attempt<R>(&self, cs: &impl Fn(&Ctx<'_>) -> R) -> Result<R, AbortCode> {
        // FG-TLE's local_seq_number: epoch snapshot *before* the
        // transaction begins (Figure 3 header comment).
        let local_seq = self.epoch.snapshot();
        self.backend.try_txn(|| {
            let ctx = match self.policy {
                ElisionPolicy::RwTle => {
                    // Eager-return strategy (§6.3): subscribe to the lock so
                    // its release aborts us back onto the fast path — unless
                    // lazy subscription was requested, which replaces it.
                    if !self.retry.lazy_subscription {
                        let _ = self.lock.subscribe();
                    }
                    // Subscribe to the write flag; abort if already raised.
                    if self.write_flag.read() {
                        rtle_htm::abort(abort_codes::WRITE_FLAG_SET);
                    }
                    Ctx::slow(self.policy, &self.write_flag, None, 0, 0)
                }
                ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. } => {
                    let orecs = self.orecs.as_ref().expect("FG policy has orecs");
                    if self.adaptive.is_some() && !self.fg_enabled.read() {
                        rtle_htm::abort(abort_codes::FG_DISABLED);
                    }
                    // Read the active size inside the transaction (§4.1:
                    // safe resizing requires slow transactions to read it).
                    let n = orecs.active_tx();
                    Ctx::slow(self.policy, &self.write_flag, Some(orecs), local_seq, n)
                }
                _ => unreachable!("slow path requires a refined policy"),
            };
            let r = cs(&ctx);
            if self.retry.lazy_subscription && self.lock.subscribe() {
                rtle_htm::abort(abort_codes::LAZY_LOCK_HELD);
            }
            self.hw_commit_hooks();
            r
        })
    }

    /// Pessimistic execution: acquire the lock and run the (instrumented,
    /// for refined policies) critical section. Guaranteed to complete in
    /// one attempt — the property §4.1 highlights.
    fn run_under_lock<R>(&self, cs: &impl Fn(&Ctx<'_>) -> R, rec: Option<Rec<'_>>, prior_attempts: u32) -> R {
        self.lock.acquire();
        self.quiesce_software();
        // Recorded at acquisition (not completion) so concurrent observers
        // see the pessimistic execution while it is in flight.
        self.stats.record_commit(Path::UnderLock);
        let t0 = Instant::now();

        let trace_ctx = rec.map(|rc| (rc.recorder.tracer(), rc.thread_key));
        let (ctx, fg_on, holder_epoch) = self.locked_prologue(trace_ctx);

        let r = cs(&ctx);

        self.locked_epilogue(fg_on, holder_epoch, trace_ctx);

        let held = t0.elapsed();
        self.stats.record_time_locked(held);
        if let Some(rc) = rec {
            rc.recorder.record_lock_hold(held.as_nanos() as u64);
            rc.attempt(PathKind::Lock, Outcome::Commit, prior_attempts, t0);
        }
        self.lock.release();
        r
    }

    /// The lock-holder entry protocol (after acquisition, before the
    /// critical section runs): adaptive decisions, epoch begin, and the
    /// instrumented [`Ctx`]. Returns `(ctx, fg_on, holder_epoch)`.
    fn locked_prologue<'a>(
        &'a self,
        trace_ctx: Option<(&'a rtle_obs::Tracer, u64)>,
    ) -> (Ctx<'a>, bool, u64) {
        match self.policy {
            ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. } => {
                let orecs = self.orecs.as_ref().expect("FG policy has orecs");
                if let Some(ad) = &self.adaptive {
                    // Resizes / mode flips are only legal right here, while
                    // holding the lock and before the CS runs (§4.2.1).
                    // Decisions are always traced when a recorder is
                    // installed — they are rare and too valuable to sample.
                    ad.on_lock_acquired(
                        orecs,
                        &self.fg_enabled,
                        &self.stats,
                        self.recorder.as_deref(),
                    );
                }
                if self.fg_enabled.read_plain() {
                    let epoch_now = self.epoch.begin_locked_section();
                    let n = orecs.active_plain();
                    (
                        Ctx::under_lock(
                            self.policy,
                            &self.write_flag,
                            Some(orecs),
                            epoch_now,
                            n,
                            trace_ctx,
                        ),
                        true,
                        epoch_now,
                    )
                } else {
                    // Collapsed to plain TLE: uninstrumented under lock.
                    (
                        Ctx::under_lock(self.policy, &self.write_flag, None, 0, 0, trace_ctx),
                        false,
                        0,
                    )
                }
            }
            _ => (
                Ctx::under_lock(self.policy, &self.write_flag, None, 0, 0, trace_ctx),
                false,
                0,
            ),
        }
    }

    /// The lock-holder exit protocol (after the critical section, before
    /// release): write-flag reset / pre-release epoch bump.
    fn locked_epilogue(
        &self,
        fg_on: bool,
        holder_epoch: u64,
        trace_ctx: Option<(&rtle_obs::Tracer, u64)>,
    ) {
        match self.policy {
            ElisionPolicy::RwTle
                // Reset the write flag before releasing the lock (§3).
                if self.write_flag.read_plain() => {
                    self.write_flag.write(false);
                }
            ElisionPolicy::FgTle { .. } | ElisionPolicy::AdaptiveFgTle { .. } if fg_on => {
                // Pre-release epoch bump: releases all orecs at once
                // without aborting slow-path transactions (§4.2).
                self.epoch.end_locked_section();
                if let Some((tracer, tid)) = trace_ctx {
                    tracer.instant_now(tid, TraceKind::EpochBump, holder_epoch);
                }
            }
            _ => {}
        }
    }

    /// Acquires the lock pessimistically and returns a guard exposing the
    /// instrumented lock-holder [`Ctx`]. This is the multi-lock face of
    /// [`ElidableLock::execute`]'s pessimistic path: while the guard
    /// lives, this thread *is* the §4 lock holder — concurrent operations
    /// on the same lock keep speculating on the instrumented slow path
    /// and may commit alongside it.
    ///
    /// Composing guards over several locks is how cross-domain (e.g.
    /// cross-shard) transactions are built; callers must acquire the
    /// guards in a globally consistent order (ascending shard index, for
    /// sharded containers) — that total order is the deadlock-freedom
    /// argument. Dropping the guard runs the holder exit protocol
    /// (write-flag reset / pre-release epoch bump) and releases the lock.
    ///
    /// A panic while the guard is held leaves the lock held (poisoned),
    /// matching [`ElidableLock::execute`]'s panic semantics.
    pub fn lock_section(&self) -> LockedSection<'_, B> {
        self.lock.acquire();
        self.quiesce_software();
        self.stats.record_commit(Path::UnderLock);
        self.stats.record_op();
        let t0 = Instant::now();
        let (ctx, fg_on, holder_epoch) = self.locked_prologue(None);
        LockedSection {
            lock: self,
            ctx,
            t0,
            fg_on,
            holder_epoch,
        }
    }
}

impl<B: HtmBackend> ElidableLock<B> {
    /// Registers this lock with a live scrape registry under `name`:
    /// the lock itself (kind `"lock"`: commit-path mix including the
    /// software-TM path, plus the backend-name label) and, when a
    /// recorder is installed, the recorder as `<name>_recorder` — the
    /// same two-source pattern sharded maps use.
    pub fn register_live(self: &Arc<Self>, registry: &MetricsRegistry, name: &str)
    where
        B: 'static,
        ElidableLock<B>: Send + Sync,
    {
        registry.register(name, Arc::clone(self) as Arc<dyn LiveSource>);
        if let Some(rec) = self.recorder() {
            registry.register(
                format!("{name}_recorder"),
                Arc::clone(rec) as Arc<dyn LiveSource>,
            );
        }
    }
}

/// Live-registry view of one lock: the always-on [`ExecStats`] counters
/// (unsampled, unlike the recorder's), with the software-TM backend name
/// as an identity label so `diag top` and `/metrics` show which software
/// path is live.
impl<B: HtmBackend> LiveSource for ElidableLock<B>
where
    ElidableLock<B>: Send + Sync,
{
    fn live_snapshot(&self) -> SourceSnapshot {
        let s = self.stats.snapshot();
        SourceSnapshot {
            kind: "lock",
            counters: vec![
                ("ops".into(), s.ops),
                ("commits_fast_htm".into(), s.fast_commits),
                ("commits_slow_htm".into(), s.slow_commits),
                ("commits_stm".into(), s.stm_commits),
                ("commits_lock".into(), s.lock_acquisitions),
                ("aborts_fast".into(), s.fast_aborts),
                ("aborts_slow".into(), s.slow_aborts),
            ],
            gauges: vec![("lock_fallback_rate".into(), s.lock_fallback_rate())],
            windows: Vec::new(),
            labels: self
                .software_backend_name()
                .map(|n| ("software_backend".to_string(), n.to_string()))
                .into_iter()
                .collect(),
        }
    }
}

/// A held pessimistic critical section: the guard returned by
/// [`ElidableLock::lock_section`]. Access shared state through
/// [`LockedSection::ctx`]; the lock is released (after the holder exit
/// protocol) when the guard drops.
pub struct LockedSection<'a, B: HtmBackend> {
    lock: &'a ElidableLock<B>,
    ctx: Ctx<'a>,
    t0: Instant,
    fg_on: bool,
    holder_epoch: u64,
}

impl<'a, B: HtmBackend> LockedSection<'a, B> {
    /// The instrumented lock-holder execution context.
    pub fn ctx(&self) -> &Ctx<'a> {
        &self.ctx
    }
}

impl<B: HtmBackend> Drop for LockedSection<'_, B> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // A panicking critical section leaves the lock held (poisoned),
            // exactly like the closure-based pessimistic path.
            return;
        }
        self.lock
            .locked_epilogue(self.fg_on, self.holder_epoch, None);
        self.lock.stats.record_time_locked(self.t0.elapsed());
        self.lock.lock.release();
    }
}

/// An external software transaction's presence on one lock: while alive,
/// the lock's `sw_running` counter is raised, so pessimistic acquirers
/// wait in `quiesce_software` before touching the lock's data. Returned
/// by [`ElidableLock::try_software_presence`]; dropping it (including via
/// unwind, when a software attempt aborts) retreats the counter.
pub struct SoftwarePresence<'a> {
    counter: &'a TxCell<u64>,
}

impl Drop for SoftwarePresence<'_> {
    fn drop(&mut self) {
        self.counter.fetch_add_plain(u64::MAX);
    }
}

impl<B: HtmBackend> std::fmt::Debug for ElidableLock<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElidableLock")
            .field("policy", &self.policy.label())
            .field("backend", &self.backend.name())
            .field("held", &self.lock.is_held())
            .finish_non_exhaustive()
    }
}

/// Slow-path aborts that cannot succeed while the current holder runs:
/// wait for the release instead of burning CPU on doomed retries.
fn slow_attempt_hopeless(code: AbortCode) -> bool {
    match code {
        AbortCode::Explicit(c) => matches!(
            c,
            abort_codes::WRITE_FLAG_SET
                | abort_codes::RW_SLOW_WRITE
                | abort_codes::FG_DISABLED
                | abort_codes::LAZY_LOCK_HELD
        ),
        AbortCode::Unsupported | AbortCode::Capacity => true,
        _ => false,
    }
}

/// Short fixed pause between hopeful slow-path retries.
#[inline]
fn brief_pause() {
    for _ in 0..64 {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    fn policies() -> Vec<ElisionPolicy> {
        vec![
            ElisionPolicy::LockOnly,
            ElisionPolicy::Tle,
            ElisionPolicy::RwTle,
            ElisionPolicy::FgTle { orecs: 1 },
            ElisionPolicy::FgTle { orecs: 64 },
            ElisionPolicy::AdaptiveFgTle {
                initial_orecs: 16,
                max_orecs: 1024,
            },
        ]
    }

    #[test]
    fn single_thread_counter_all_policies() {
        for p in policies() {
            let lock = ElidableLock::builder().policy(p).build();
            let c = TxCell::new(0u64);
            for _ in 0..100 {
                lock.execute(|ctx| {
                    let v = ctx.read(&c);
                    ctx.write(&c, v + 1);
                });
            }
            assert_eq!(c.read_plain(), 100, "{}", p.label());
            assert_eq!(lock.stats().snapshot().ops, 100);
        }
    }

    #[test]
    fn multi_thread_counter_all_policies() {
        const THREADS: usize = 4;
        const OPS: usize = 500;
        for p in policies() {
            let lock = Arc::new(ElidableLock::builder().policy(p).build());
            let c = Arc::new(TxCell::new(0u64));
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let (lock, c) = (Arc::clone(&lock), Arc::clone(&c));
                    std::thread::spawn(move || {
                        for _ in 0..OPS {
                            lock.execute(|ctx| {
                                let v = ctx.read(&c);
                                ctx.write(&c, v + 1);
                            });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.read_plain(), (THREADS * OPS) as u64, "{}", p.label());
        }
    }

    /// Read-only transactions must commit on the slow path *while the lock
    /// is held* for RW-TLE and FG-TLE — the paper's core claim.
    #[test]
    fn slow_path_commits_while_lock_held() {
        for p in [ElisionPolicy::RwTle, ElisionPolicy::FgTle { orecs: 64 }] {
            let lock = Arc::new(ElidableLock::builder().policy(p).build());
            let data = Arc::new(TxCell::new(7u64));
            let in_cs = Arc::new(AtomicBool::new(false));
            let reader_done = Arc::new(AtomicBool::new(false));

            // Holder: read-only critical section that lingers until the
            // reader finishes (or a timeout, to avoid deadlocking on a
            // regression — which the final assert then catches).
            let holder = {
                let (lock, data, in_cs, reader_done) = (
                    Arc::clone(&lock),
                    Arc::clone(&data),
                    Arc::clone(&in_cs),
                    Arc::clone(&reader_done),
                );
                std::thread::spawn(move || {
                    lock.execute(|ctx| {
                        // Force the pessimistic path deterministically.
                        rtle_htm::htm_unfriendly_instruction();
                        let _ = ctx.read(&data);
                        in_cs.store(true, Ordering::SeqCst);
                        let start = std::time::Instant::now();
                        while !reader_done.load(Ordering::SeqCst)
                            && start.elapsed() < std::time::Duration::from_secs(2)
                        {
                            std::hint::spin_loop();
                        }
                    });
                })
            };

            // The holder's first execution may commit on the fast path
            // (lock free); retry until the CS actually holds the lock.
            while !in_cs.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }

            if lock.stats().snapshot().lock_acquisitions > 0 {
                // Reader: read-only CS, must complete via the slow path
                // while the holder is still inside.
                let v = lock.execute(|ctx| ctx.read(&data));
                assert_eq!(v, 7);
                let snap = lock.stats().snapshot();
                assert!(
                    snap.slow_commits >= 1,
                    "{}: expected a slow-path commit, got {snap:?}",
                    p.label()
                );
            }
            reader_done.store(true, Ordering::SeqCst);
            holder.join().unwrap();
        }
    }

    /// FG-TLE slow path: writers to disjoint data commit while the lock is
    /// held, provided the orecs do not alias.
    #[test]
    fn fg_slow_path_allows_disjoint_writes() {
        let lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 8192 }).build());
        let holder_cell = Arc::new(TxCell::new(0u64));
        let writer_cell = Arc::new(TxCell::new(0u64));
        let in_cs = Arc::new(AtomicBool::new(false));
        let writer_done = Arc::new(AtomicBool::new(false));

        let holder = {
            let (lock, holder_cell, in_cs, writer_done) = (
                Arc::clone(&lock),
                Arc::clone(&holder_cell),
                Arc::clone(&in_cs),
                Arc::clone(&writer_done),
            );
            std::thread::spawn(move || {
                lock.execute(|ctx| {
                    rtle_htm::htm_unfriendly_instruction();
                    ctx.write(&holder_cell, 1);
                    in_cs.store(true, Ordering::SeqCst);
                    let start = std::time::Instant::now();
                    while !writer_done.load(Ordering::SeqCst)
                        && start.elapsed() < std::time::Duration::from_secs(2)
                    {
                        std::hint::spin_loop();
                    }
                });
            })
        };

        while !in_cs.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }

        if lock.stats().snapshot().lock_acquisitions > 0 {
            lock.execute(|ctx| {
                let v = ctx.read(&writer_cell);
                ctx.write(&writer_cell, v + 41);
            });
            let snap = lock.stats().snapshot();
            assert!(
                snap.slow_commits >= 1,
                "disjoint write should commit on slow path: {snap:?}"
            );
        }
        writer_done.store(true, Ordering::SeqCst);
        holder.join().unwrap();
        assert_eq!(writer_cell.read_plain(), 41);
        assert_eq!(holder_cell.read_plain(), 1);
    }

    /// With lazy subscription (§5), no critical section may complete while
    /// the lock is held — restoring the Figure 4 "lock as barrier" pattern.
    #[test]
    fn lazy_subscription_restores_barrier_semantics() {
        let retry = RetryPolicy {
            lazy_subscription: true,
            ..Default::default()
        };
        let lock = Arc::new(
            ElidableLock::builder()
                .policy(ElisionPolicy::FgTle { orecs: 64 })
                .retry(retry)
                .build(),
        );
        let in_cs = Arc::new(AtomicBool::new(false));
        let released = Arc::new(AtomicBool::new(false));
        let observer_finished_early = Arc::new(AtomicBool::new(false));

        let holder = {
            let (lock, in_cs, released) =
                (Arc::clone(&lock), Arc::clone(&in_cs), Arc::clone(&released));
            std::thread::spawn(move || {
                lock.execute(|_ctx| {
                    rtle_htm::htm_unfriendly_instruction();
                    in_cs.store(true, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    // Set *inside* the CS: if the observer returns before
                    // this is true, it completed while the lock was held.
                    released.store(true, Ordering::SeqCst);
                });
            })
        };

        while !in_cs.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        assert!(lock.stats().snapshot().lock_acquisitions > 0);
        // Empty critical section (the Figure 4 pattern). With lazy
        // subscription it must not return before the holder releases.
        lock.execute(|_ctx| {});
        if !released.load(Ordering::SeqCst) {
            observer_finished_early.store(true, Ordering::SeqCst);
        }
        assert!(
            !observer_finished_early.load(Ordering::SeqCst),
            "empty CS completed while the lock was held despite lazy subscription"
        );
        holder.join().unwrap();
    }

    /// Without lazy subscription, the same empty CS *does* complete while
    /// the lock is held under FG-TLE — the §5 caveat, demonstrated.
    #[test]
    fn eager_refined_tle_breaks_barrier_semantics() {
        let lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }).build());
        let in_cs = Arc::new(AtomicBool::new(false));
        let released = Arc::new(AtomicBool::new(false));

        let holder = {
            let (lock, in_cs, released) =
                (Arc::clone(&lock), Arc::clone(&in_cs), Arc::clone(&released));
            std::thread::spawn(move || {
                lock.execute(|_ctx| {
                    rtle_htm::htm_unfriendly_instruction();
                    in_cs.store(true, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    released.store(true, Ordering::SeqCst);
                });
            })
        };

        while !in_cs.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        assert!(lock.stats().snapshot().lock_acquisitions > 0);
        lock.execute(|_ctx| {});
        let finished_early = !released.load(Ordering::SeqCst);
        holder.join().unwrap();
        // The holder might have raced to release; only assert when the CS
        // really was concurrent (which the 100ms sleep makes overwhelmingly
        // likely).
        if lock.stats().snapshot().slow_commits >= 1 {
            assert!(
                finished_early,
                "FG-TLE should complete an empty CS concurrently"
            );
        }
    }

    /// Unsupported instructions force the lock path.
    #[test]
    fn unsupported_instruction_falls_back_to_lock() {
        let lock = ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 16 }).build();
        let c = TxCell::new(0u64);
        lock.execute(|ctx| {
            rtle_htm::htm_unfriendly_instruction();
            let v = ctx.read(&c);
            ctx.write(&c, v + 1);
        });
        assert_eq!(c.read_plain(), 1);
        let snap = lock.stats().snapshot();
        assert_eq!(snap.lock_acquisitions, 1);
        assert!(snap.aborts_unsupported >= 1);
        assert!(snap.time_locked > std::time::Duration::ZERO);
    }

    /// The retry budget is respected: a CS that always aborts explicitly
    /// uses exactly `max_attempts` fast attempts before locking.
    #[test]
    fn retry_budget_respected() {
        let lock = ElidableLock::builder().policy(ElisionPolicy::Tle).build();
        let tries = AtomicU64::new(0);
        lock.execute(|ctx| {
            if ctx.is_speculative() {
                tries.fetch_add(1, Ordering::Relaxed);
                rtle_htm::abort(42);
            }
        });
        assert_eq!(
            tries.load(Ordering::Relaxed),
            5,
            "paper's static 5-attempt policy"
        );
        let snap = lock.stats().snapshot();
        assert_eq!(snap.fast_aborts, 5);
        assert_eq!(snap.lock_acquisitions, 1);
    }

    #[test]
    fn debug_impl_mentions_policy() {
        let lock = ElidableLock::builder().policy(ElisionPolicy::RwTle).build();
        let s = format!("{lock:?}");
        assert!(s.contains("RW-TLE"));
        assert!(s.contains("swhtm"));
    }

    /// Heatmap invariant: every `OREC_CONFLICT` self-abort is attributed to
    /// exactly one orec slot, so the per-slot sums equal the aggregate
    /// counter even under multi-threaded contention.
    #[test]
    fn heatmap_conflicts_sum_to_aggregate_abort_counter() {
        const THREADS: usize = 8;
        const OPS: usize = 400;
        let lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 4 }).build());
        // Many cells hashing over few orecs: slow-path attempts regularly
        // collide with the holder's acquired orecs.
        let cells: Arc<Vec<TxCell<u64>>> = Arc::new((0..64).map(|_| TxCell::new(0)).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (lock, cells) = (Arc::clone(&lock), Arc::clone(&cells));
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        lock.execute(|ctx| {
                            let a = &cells[(t * 31 + i * 7) % cells.len()];
                            let b = &cells[(t * 13 + i * 3) % cells.len()];
                            let v = ctx.read(a);
                            ctx.write(b, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let heat = lock.orec_heatmap().expect("FG-TLE has orecs");
        let snap = lock.stats().snapshot();
        assert_eq!(
            heat.total_conflicts(),
            snap.aborts_by_code[abort_codes::OREC_CONFLICT as usize],
            "per-slot conflict sums match the aggregate self-abort counter"
        );
        assert_eq!(heat.conflicts.iter().sum::<u64>(), heat.total_conflicts());
    }

    #[test]
    fn builder_configures_the_full_matrix() {
        let retry = RetryPolicy {
            max_attempts: 3,
            lazy_subscription: true,
            ..Default::default()
        };
        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::FgTle { orecs: 32 })
            .retry(retry)
            .recorder(Arc::new(rtle_obs::Recorder::new(
                rtle_obs::ObsConfig::default(),
            )))
            .build();
        assert_eq!(lock.policy(), ElisionPolicy::FgTle { orecs: 32 });
        assert_eq!(lock.retry_policy(), retry);
        assert!(lock.recorder().is_some());
        assert!(lock.orec_table().is_some());

        // The default builder is a plain-TLE lock on the emulated HTM.
        let plain = ElidableLock::builder().build();
        assert_eq!(plain.policy(), ElisionPolicy::Tle);
        assert_eq!(plain.retry_policy(), RetryPolicy::default());
        assert!(plain.recorder().is_none());
    }

    /// `with_live` wires the lock's recorder into a scrape registry —
    /// installing a windowed default recorder when none was configured —
    /// and live scrapes then see the lock's traffic without disturbing
    /// the destructive end-of-run snapshot.
    #[test]
    fn with_live_registers_recorder_with_the_registry() {
        let registry = MetricsRegistry::new();
        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::Tle)
            .with_live(&registry, "demo_lock")
            .build();
        assert!(lock.recorder().is_some(), "with_live installs a default recorder");
        assert!(
            lock.recorder().unwrap().windows().is_some(),
            "the default live recorder is windowed"
        );
        let c = TxCell::new(0u64);
        for _ in 0..50 {
            lock.execute(|ctx| {
                let v = ctx.read(&c);
                ctx.write(&c, v + 1);
            });
        }
        let scrape = registry.scrape();
        assert_eq!(scrape.len(), 1);
        assert_eq!(scrape[0].0, "demo_lock");
        let commits: u64 = scrape[0]
            .1
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("commits_"))
            .map(|&(_, n)| n)
            .sum();
        assert_eq!(commits, 50, "every sampled op is visible to the scrape");
        let text = registry.to_prometheus();
        assert!(text.contains("rtle_commits_fast_htm{source=\"demo_lock\",kind=\"recorder\"}"));

        // An explicitly-installed recorder is reused, not replaced.
        let rec = Arc::new(rtle_obs::Recorder::new(rtle_obs::ObsConfig::default()));
        let lock2 = ElidableLock::builder()
            .recorder(Arc::clone(&rec))
            .with_live(&registry, "second")
            .build();
        assert!(Arc::ptr_eq(lock2.recorder().unwrap(), &rec));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn builder_is_the_only_constructor() {
        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::RwTle)
            .retry(RetryPolicy {
                max_attempts: 2,
                ..Default::default()
            })
            .build();
        assert_eq!(lock.policy(), ElisionPolicy::RwTle);
        assert_eq!(lock.retry_policy().max_attempts, 2);
    }

    /// `lock_section` is the pessimistic path as a guard: it must hold the
    /// lock while live, run the instrumented holder protocol, and release
    /// (with the epoch bump) on drop.
    #[test]
    fn lock_section_guard_holds_runs_instrumented_and_releases() {
        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::FgTle { orecs: 16 })
            .build();
        let c = TxCell::new(0u64);
        {
            let g = lock.lock_section();
            assert_eq!(g.ctx().mode(), crate::ExecMode::UnderLock);
            let v = g.ctx().read(&c);
            g.ctx().write(&c, v + 9);
            // The guard is the lock holder; the lock word is set.
            assert!(lock.lock.is_held());
        }
        assert!(!lock.lock.is_held(), "drop releases");
        assert_eq!(c.read_plain(), 9);
        let snap = lock.stats().snapshot();
        assert_eq!(snap.ops, 1);
        assert_eq!(snap.lock_acquisitions, 1);
        assert!(snap.time_locked > std::time::Duration::ZERO);
        // The orec epoch ended even (no locked section in progress), so a
        // later slow-path attempt sees all orecs released.
        assert_eq!(lock.epoch.snapshot() % 2, 0);
    }

    /// Slow-path speculation commits concurrently with a `lock_section`
    /// holder, exactly as with the closure-based pessimistic path — the
    /// property cross-shard transactions rely on.
    #[test]
    fn slow_path_commits_while_section_guard_held() {
        let lock = Arc::new(
            ElidableLock::builder()
                .policy(ElisionPolicy::FgTle { orecs: 4096 })
                .build(),
        );
        let holder_cell = Arc::new(TxCell::new(0u64));
        let other_cell = Arc::new(TxCell::new(0u64));

        let g = lock.lock_section();
        g.ctx().write(&holder_cell, 1);

        // A concurrent operation on a disjoint cell commits on the slow
        // path while the guard is still alive.
        let t = {
            let (lock, other_cell) = (Arc::clone(&lock), Arc::clone(&other_cell));
            std::thread::spawn(move || {
                lock.execute(|ctx| {
                    let v = ctx.read(&other_cell);
                    ctx.write(&other_cell, v + 5);
                });
            })
        };
        t.join().unwrap();
        let snap = lock.stats().snapshot();
        assert!(
            snap.slow_commits >= 1,
            "disjoint op should commit on the slow path: {snap:?}"
        );
        drop(g);
        assert_eq!(other_cell.read_plain(), 5);
        assert_eq!(holder_cell.read_plain(), 1);
    }

    /// A software backend turns the "speculation exhausted" fallback into
    /// a software transaction: the lock is never acquired, and the commit
    /// lands on the STM path.
    #[test]
    fn software_backend_replaces_the_lock_fallback() {
        for tm in [
            Arc::new(rtle_hytm::Norec::new()) as Arc<dyn SoftwareTm>,
            Arc::new(rtle_hytm::Tl2::new()) as Arc<dyn SoftwareTm>,
        ] {
            let name = tm.name();
            let lock = ElidableLock::builder()
                .policy(ElisionPolicy::Tle)
                .with_software_backend(tm)
                .build();
            assert_eq!(lock.software_backend_name(), Some(name));
            let c = TxCell::new(0u64);
            for _ in 0..10 {
                lock.execute(|ctx| {
                    // Dooms every hardware attempt; the operation must
                    // complete on the software path, not under the lock.
                    rtle_htm::htm_unfriendly_instruction();
                    let v = ctx.read(&c);
                    ctx.write(&c, v + 1);
                });
            }
            assert_eq!(c.read_plain(), 10, "{name}");
            let snap = lock.stats().snapshot();
            assert_eq!(snap.stm_commits, 10, "{name}: all ops via STM");
            assert_eq!(snap.lock_acquisitions, 0, "{name}: lock never taken");
        }
    }

    /// Multi-threaded conservation through the software path: concurrent
    /// increments through a TL2 backend are neither lost nor duplicated,
    /// and hardware commits interleave correctly with software ones.
    #[test]
    fn software_backend_multithread_conservation() {
        const THREADS: usize = 4;
        const OPS: usize = 300;
        let lock = Arc::new(
            ElidableLock::builder()
                .policy(ElisionPolicy::Tle)
                .with_software_backend(Arc::new(rtle_hytm::Tl2::new()))
                .build(),
        );
        let c = Arc::new(TxCell::new(0u64));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (lock, c) = (Arc::clone(&lock), Arc::clone(&c));
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        lock.execute(|ctx| {
                            // Odd thread/op pairs force the software path;
                            // the rest stay eligible for hardware.
                            if (t + i) % 2 == 1 {
                                rtle_htm::htm_unfriendly_instruction();
                            }
                            let v = ctx.read(&c);
                            ctx.write(&c, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read_plain(), (THREADS * OPS) as u64);
        let snap = lock.stats().snapshot();
        assert!(snap.stm_commits > 0, "software path exercised: {snap:?}");
    }

    /// Software transactions and pessimistic lock holders exclude each
    /// other: a `lock_section` holder's uninstrumented writes never
    /// overlap a software transaction's validated reads.
    #[test]
    fn software_and_lock_holders_exclude_each_other() {
        const OPS: usize = 200;
        let lock = Arc::new(
            ElidableLock::builder()
                .policy(ElisionPolicy::Tle)
                .with_software_backend(Arc::new(rtle_hytm::Tl2::new()))
                .build(),
        );
        let c = Arc::new(TxCell::new(0u64));
        let sw = {
            let (lock, c) = (Arc::clone(&lock), Arc::clone(&c));
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    lock.execute(|ctx| {
                        rtle_htm::htm_unfriendly_instruction();
                        let v = ctx.read(&c);
                        ctx.write(&c, v + 1);
                    });
                }
            })
        };
        for _ in 0..OPS {
            let g = lock.lock_section();
            let v = g.ctx().read(&c);
            g.ctx().write(&c, v + 1);
        }
        sw.join().unwrap();
        assert_eq!(c.read_plain(), 2 * OPS as u64);
    }

    /// With two backends the heatmap decides; without signal (or without
    /// orecs) the first registered backend wins.
    #[test]
    fn two_backends_default_to_the_first() {
        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::FgTle { orecs: 16 })
            .with_software_backend(Arc::new(rtle_hytm::Norec::new()))
            .with_software_backend(Arc::new(rtle_hytm::Tl2::new()))
            .build();
        // No conflict signal yet: the hot-key-immune first backend.
        assert_eq!(lock.software_backend_name(), Some("norec"));
        // Policies without orecs have no heatmap at all — still the first.
        let plain = ElidableLock::builder()
            .policy(ElisionPolicy::Tle)
            .with_software_backend(Arc::new(rtle_hytm::Norec::new()))
            .with_software_backend(Arc::new(rtle_hytm::Tl2::new()))
            .build();
        assert_eq!(plain.software_backend_name(), Some("norec"));
    }

    /// The lock's own live source: kind `"lock"`, STM commits counted,
    /// and the software-backend name exported as an identity label all
    /// the way into the Prometheus exposition.
    #[test]
    fn register_live_exports_backend_name_label() {
        let registry = MetricsRegistry::new();
        let lock = Arc::new(
            ElidableLock::builder()
                .policy(ElisionPolicy::Tle)
                .with_software_backend(Arc::new(rtle_hytm::Tl2::new()))
                .build(),
        );
        lock.register_live(&registry, "demo");
        let c = TxCell::new(0u64);
        for _ in 0..5 {
            lock.execute(|ctx| {
                rtle_htm::htm_unfriendly_instruction();
                let v = ctx.read(&c);
                ctx.write(&c, v + 1);
            });
        }
        let scrape = registry.scrape();
        assert_eq!(scrape.len(), 1, "no recorder installed: just the lock");
        let snap = &scrape[0].1;
        assert_eq!(snap.kind, "lock");
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "commits_stm" && *v == 5));
        assert_eq!(
            snap.labels,
            vec![("software_backend".to_string(), "tl2".to_string())]
        );
        let text = registry.to_prometheus();
        assert!(
            text.contains(
                "rtle_commits_stm{source=\"demo\",kind=\"lock\",software_backend=\"tl2\"} 5"
            ),
            "{text}"
        );
    }

    /// Ordered multi-lock acquisition: the composition pattern cross-shard
    /// transactions use. Two guards held at once, both instrumented.
    #[test]
    fn ordered_two_lock_sections_compose() {
        let a = ElidableLock::builder()
            .policy(ElisionPolicy::FgTle { orecs: 8 })
            .build();
        let b = ElidableLock::builder()
            .policy(ElisionPolicy::RwTle)
            .build();
        let ca = TxCell::new(10u64);
        let cb = TxCell::new(0u64);
        {
            let ga = a.lock_section();
            let gb = b.lock_section();
            let v = ga.ctx().read(&ca);
            ga.ctx().write(&ca, v - 10);
            let w = gb.ctx().read(&cb);
            gb.ctx().write(&cb, w + 10);
        }
        assert_eq!(ca.read_plain(), 0);
        assert_eq!(cb.read_plain(), 10);
        assert!(!a.lock.is_held() && !b.lock.is_held());
    }
}
