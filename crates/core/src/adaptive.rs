//! Adaptive FG-TLE (§4.2.1) — the paper sketches it as future work; this is
//! a concrete implementation of the two knobs the sketch names:
//!
//! 1. **Resizing the active orec range.** "Changing the number of orecs can
//!    be trivially done while a thread is holding the lock" — the holder
//!    inspects recent slow-path benefit and grows the range when slow-path
//!    transactions keep dying on orec conflicts, or shrinks it when the
//!    slow path is idle (fewer orecs means the holder reaches the
//!    `uniq_*_orecs == N` shortcut sooner and pays less instrumentation).
//! 2. **Collapsing to plain TLE.** "Add a flag that is initially set and is
//!    always read by hardware transactions in the slow path" — when even
//!    one active orec buys nothing, the holder clears `fg_enabled`; slow
//!    path attempts then self-abort immediately and the runtime behaves
//!    like standard TLE. The flag is re-examined periodically so a changed
//!    workload can re-enable the slow path.
//!
//! All decisions are made by the lock holder (single writer), read by
//! everyone else — the same asymmetry the rest of FG-TLE enjoys.

use std::sync::atomic::{AtomicU64, Ordering};

use rtle_htm::TxCell;
use rtle_obs::{AdaptAction, AdaptDecision, Recorder};

use crate::orec::OrecTable;
use crate::stats::ExecStats;

/// Decision cadence: adapt every this many lock acquisitions.
const WINDOW: u64 = 32;
/// Re-enable probe cadence (in windows) once the slow path was disabled.
const REENABLE_WINDOWS: u64 = 32;
/// Grow when slow aborts exceed this multiple of slow commits.
const GROW_ABORT_FACTOR: u64 = 4;

/// Holder-maintained adaptation state for one lock.
#[derive(Debug, Default)]
pub(crate) struct AdaptiveState {
    sections: AtomicU64,
    last_slow_commits: AtomicU64,
    last_slow_aborts: AtomicU64,
    idle_windows: AtomicU64,
    disabled_windows: AtomicU64,
    initial_orecs: u64,
}

impl AdaptiveState {
    pub fn new(initial_orecs: usize) -> Self {
        AdaptiveState {
            initial_orecs: initial_orecs as u64,
            ..Default::default()
        }
    }

    /// Called by the lock holder right after acquiring the lock, before the
    /// critical section runs (resizes are only legal in that window).
    ///
    /// Every resize / collapse / re-enable is traced to `recorder` (when
    /// one is installed) with the window's slow-commit/abort signal, so a
    /// run can be debugged from its decision history.
    pub fn on_lock_acquired(
        &self,
        orecs: &OrecTable,
        fg_enabled: &TxCell<bool>,
        stats: &ExecStats,
        recorder: Option<&Recorder>,
    ) {
        let n = self.sections.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(WINDOW) {
            return;
        }

        let sc = stats.slow_commits_now();
        let sa = stats.slow_aborts_now();
        let dsc = sc - self.last_slow_commits.swap(sc, Ordering::Relaxed);
        let dsa = sa - self.last_slow_aborts.swap(sa, Ordering::Relaxed);
        let trace = |action: AdaptAction, before: usize, after: usize, hot: Option<(u64, u64)>| {
            if let Some(rec) = recorder {
                rec.record_decision(AdaptDecision {
                    action,
                    orecs_before: before as u64,
                    orecs_after: after as u64,
                    slow_commits: dsc,
                    slow_aborts: dsa,
                    hot_slot: hot,
                });
            }
        };

        if !fg_enabled.read_plain() {
            // Currently collapsed to plain TLE. Slow-path attempts during
            // this state abort with FG_DISABLED and show up as slow
            // aborts — that is *demand*: threads found the lock held and
            // wanted to speculate. Re-enable immediately on demand, and
            // probe periodically even without it.
            let dw = self.disabled_windows.fetch_add(1, Ordering::Relaxed) + 1;
            if dsa > 0 || dw.is_multiple_of(REENABLE_WINDOWS) {
                let before = orecs.active_plain();
                let restored = (self.initial_orecs as usize).clamp(1, orecs.capacity());
                orecs.resize_active(restored);
                fg_enabled.write(true);
                self.idle_windows.store(0, Ordering::Relaxed);
                trace(AdaptAction::Reenable, before, restored, None);
            }
            return;
        }

        let active = orecs.active_plain();
        if dsc == 0 && dsa == 0 {
            // Slow path idle this window: the instrumentation under lock is
            // pure overhead. Shrink; after two consecutive idle windows at
            // a single orec, collapse to plain TLE.
            let idle = self.idle_windows.fetch_add(1, Ordering::Relaxed) + 1;
            if active > 1 {
                let target = (active / 2).max(1);
                orecs.resize_active(target);
                trace(AdaptAction::Shrink, active, target, None);
            } else if idle >= 2 {
                fg_enabled.write(false);
                self.disabled_windows.store(0, Ordering::Relaxed);
                trace(AdaptAction::Collapse, active, active, None);
            }
        } else {
            self.idle_windows.store(0, Ordering::Relaxed);
            if dsa > GROW_ABORT_FACTOR * dsc.max(1) && active < orecs.capacity() {
                // Slow path keeps aborting: most likely orec aliasing. The
                // conflict heatmap names the hottest slot so the decision
                // trace shows *where* the aliasing concentrated.
                let target = (active * 2).min(orecs.capacity());
                orecs.resize_active(target);
                let hot = orecs
                    .hottest_conflict_slot()
                    .map(|(slot, n)| (slot as u64, n));
                trace(AdaptAction::Grow, active, target, hot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Path;
    use rtle_htm::AbortCode;

    fn run_windows(
        st: &AdaptiveState,
        orecs: &OrecTable,
        fg: &TxCell<bool>,
        stats: &ExecStats,
        k: u64,
    ) {
        for _ in 0..k * WINDOW {
            st.on_lock_acquired(orecs, fg, stats, None);
        }
    }

    #[test]
    fn idle_slow_path_shrinks_then_disables() {
        let st = AdaptiveState::new(8);
        let orecs = OrecTable::with_active(8, 8);
        let fg = TxCell::new(true);
        let stats = ExecStats::new();

        // 8 -> 4 -> 2 -> 1 takes 3 windows; two more idle windows disable.
        run_windows(&st, &orecs, &fg, &stats, 3);
        assert_eq!(orecs.active_plain(), 1);
        assert!(fg.read_plain());
        run_windows(&st, &orecs, &fg, &stats, 2);
        assert!(!fg.read_plain(), "collapsed to plain TLE");
    }

    #[test]
    fn aborting_slow_path_grows() {
        let st = AdaptiveState::new(2);
        let orecs = OrecTable::with_active(1024, 2);
        let fg = TxCell::new(true);
        let stats = ExecStats::new();

        // Simulate a window with heavy slow-path aborting and no commits.
        for _ in 0..WINDOW - 1 {
            st.on_lock_acquired(&orecs, &fg, &stats, None);
        }
        for _ in 0..100 {
            stats.record_abort(Path::SlowHtm, AbortCode::Explicit(4));
        }
        st.on_lock_acquired(&orecs, &fg, &stats, None);
        assert_eq!(orecs.active_plain(), 4, "doubled under abort pressure");
    }

    #[test]
    fn disabled_state_reenables_eventually() {
        let st = AdaptiveState::new(8);
        let orecs = OrecTable::with_active(8, 8);
        let fg = TxCell::new(true);
        let stats = ExecStats::new();

        run_windows(&st, &orecs, &fg, &stats, 5);
        assert!(!fg.read_plain());
        // After at most REENABLE_WINDOWS more idle windows, it probes
        // again; check the restored size at the moment of re-enablement.
        let mut reenabled = false;
        for _ in 0..REENABLE_WINDOWS {
            run_windows(&st, &orecs, &fg, &stats, 1);
            if fg.read_plain() {
                reenabled = true;
                break;
            }
        }
        assert!(reenabled, "slow path re-enabled for probing");
        assert_eq!(orecs.active_plain(), 8, "active restored to initial");
    }

    #[test]
    fn disabled_state_reenables_immediately_on_demand() {
        let st = AdaptiveState::new(8);
        let orecs = OrecTable::with_active(8, 8);
        let fg = TxCell::new(true);
        let stats = ExecStats::new();

        run_windows(&st, &orecs, &fg, &stats, 5);
        assert!(!fg.read_plain(), "collapsed");
        // Threads now find the lock held and attempt the slow path: their
        // FG_DISABLED aborts are the demand signal.
        for _ in 0..10 {
            stats.record_abort(Path::SlowHtm, AbortCode::Explicit(5));
        }
        run_windows(&st, &orecs, &fg, &stats, 1);
        assert!(fg.read_plain(), "re-enabled on demand within one window");
        assert_eq!(orecs.active_plain(), 8);
    }

    #[test]
    fn healthy_slow_path_keeps_size() {
        let st = AdaptiveState::new(16);
        let orecs = OrecTable::with_active(16, 16);
        let fg = TxCell::new(true);
        let stats = ExecStats::new();

        for w in 0..4u64 {
            for _ in 0..WINDOW - 1 {
                st.on_lock_acquired(&orecs, &fg, &stats, None);
            }
            // Commits dominate aborts in every window.
            for _ in 0..20 {
                stats.record_commit(Path::SlowHtm);
            }
            stats.record_abort(Path::SlowHtm, AbortCode::Conflict);
            st.on_lock_acquired(&orecs, &fg, &stats, None);
            assert_eq!(orecs.active_plain(), 16, "window {w}: size stable");
            assert!(fg.read_plain());
        }
    }

    /// Every adaptation is traceable: the full shrink → collapse →
    /// re-enable → grow lifecycle appears in the recorder's decision
    /// trace, with the window signals that triggered each step.
    #[test]
    fn decisions_are_traced_with_signals() {
        let st = AdaptiveState::new(4);
        let orecs = OrecTable::with_active(1024, 4);
        let fg = TxCell::new(true);
        let stats = ExecStats::new();
        let rec = Recorder::new(rtle_obs::ObsConfig::default());
        let step = |k: u64| {
            for _ in 0..k * WINDOW {
                st.on_lock_acquired(&orecs, &fg, &stats, Some(&rec));
            }
        };

        // Idle: 4 -> 2 -> 1, then two more idle windows collapse.
        step(4);
        assert!(!fg.read_plain());
        // Demand (FG_DISABLED aborts) re-enables within one window.
        for _ in 0..5 {
            stats.record_abort(Path::SlowHtm, AbortCode::Explicit(5));
        }
        step(1);
        assert!(fg.read_plain());
        // Abort pressure grows the range; the aborts concentrate on one
        // orec slot, which the heatmap attributes.
        for _ in 0..100 {
            stats.record_abort(Path::SlowHtm, AbortCode::Explicit(4));
            orecs.note_conflict(3, 1);
        }
        step(1);

        let actions: Vec<AdaptAction> = rec.decisions().iter().map(|d| d.action).collect();
        assert_eq!(
            actions,
            vec![
                AdaptAction::Shrink,   // 4 -> 2
                AdaptAction::Shrink,   // 2 -> 1
                AdaptAction::Collapse, // idle at 1
                AdaptAction::Reenable, // demand
                AdaptAction::Grow,     // abort pressure
            ]
        );
        let d = rec.decisions();
        assert_eq!((d[0].orecs_before, d[0].orecs_after), (4, 2));
        assert_eq!(d[3].orecs_after, 4, "re-enable restores initial size");
        assert!(d[3].slow_aborts >= 5, "demand signal captured");
        assert_eq!((d[4].orecs_before, d[4].orecs_after), (4, 8));
        assert!(d[4].slow_aborts >= 100);
        assert_eq!(d[4].hot_slot, Some((3, 100)), "grow cites the hot slot");
        assert!(d[..4].iter().all(|d| d.hot_slot.is_none()));
    }
}
