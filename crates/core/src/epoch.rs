//! The FG-TLE epoch counter (`global_seq_number`, §4.2).
//!
//! The thread holding the lock increments the counter **twice**: once right
//! after acquiring the lock and once just before releasing it. Acquiring an
//! ownership record is a single store of the current (odd) epoch; the
//! pre-release increment implicitly releases every orec at once — an orec is
//! *owned* exactly when its stored epoch is `>=` the snapshot a slow-path
//! transaction took before starting (`local_seq_number`).
//!
//! Invariants maintained here:
//! * the counter is odd while a critical section runs under the lock, even
//!   otherwise;
//! * snapshots taken while the lock is free are strictly greater than every
//!   epoch stored by past critical sections.

use rtle_htm::TxCell;

/// The global sequence (epoch) counter of one [`crate::ElidableLock`].
///
/// Stored in a [`TxCell`] so slow-path hardware transactions may read it
/// transactionally if they wish; the protocol itself only needs plain reads
/// (the snapshot is taken *before* the transaction starts).
#[derive(Debug)]
pub struct SeqEpoch {
    counter: TxCell<u64>,
}

impl Default for SeqEpoch {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqEpoch {
    /// New counter at 0 (even: no critical section running).
    pub fn new() -> Self {
        SeqEpoch::starting_at(0)
    }

    /// New counter at an arbitrary even value — exists so overflow
    /// behavior near `u64::MAX` is testable without 2^63 critical
    /// sections.
    pub fn starting_at(value: u64) -> Self {
        assert_eq!(value & 1, 0, "epoch must start even (no section running)");
        SeqEpoch {
            counter: TxCell::new(value),
        }
    }

    /// Plain snapshot — the `local_seq_number` of the FG-TLE pseudo-code.
    /// Taken by slow-path threads before they start a hardware transaction.
    #[inline]
    pub fn snapshot(&self) -> u64 {
        self.counter.read_plain()
    }

    /// Post-acquire increment (even → odd). Returns the new, odd epoch the
    /// holder will store into orecs it acquires.
    ///
    /// Only the lock holder calls this, so a plain read-modify-write is
    /// race-free.
    #[inline]
    pub fn begin_locked_section(&self) -> u64 {
        let v = self.counter.read_plain();
        debug_assert_eq!(v & 1, 0, "epoch must be even when the lock is acquired");
        let odd = v.wrapping_add(1);
        self.counter.write(odd);
        odd
    }

    /// Pre-release increment (odd → even): implicitly releases every orec
    /// the holder acquired, without aborting slow-path transactions.
    #[inline]
    pub fn end_locked_section(&self) {
        let v = self.counter.read_plain();
        debug_assert_eq!(v & 1, 1, "epoch must be odd while the lock is held");
        self.counter.write(v.wrapping_add(1));
    }

    /// Whether an orec stamped `orec_epoch` is owned from the point of view
    /// of a transaction whose snapshot is `local_seq` (Figure 3's
    /// comparisons): owned iff `orec_epoch >= local_seq`.
    ///
    /// Across a wraparound of the 64-bit counter this comparison is
    /// *conservative*: stamps from before the wrap are numerically huge and
    /// read as owned by post-wrap snapshots, so affected slow-path
    /// transactions abort spuriously (never the unsafe direction). The
    /// window heals as post-wrap critical sections re-stamp the orecs.
    #[inline]
    pub fn owned(orec_epoch: u64, local_seq: u64) -> bool {
        orec_epoch >= local_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_parity_lifecycle() {
        let e = SeqEpoch::new();
        assert_eq!(e.snapshot(), 0);
        let odd = e.begin_locked_section();
        assert_eq!(odd, 1);
        assert_eq!(e.snapshot(), 1);
        e.end_locked_section();
        assert_eq!(e.snapshot(), 2);
        assert_eq!(e.begin_locked_section(), 3);
        e.end_locked_section();
        assert_eq!(e.snapshot(), 4);
    }

    #[test]
    fn ownership_rule() {
        // Holder acquired the lock: epoch 1; it stamps orecs with 1.
        // A slow-path txn that started *during* this critical section has
        // local_seq == 1 and must see the orec as owned.
        assert!(SeqEpoch::owned(1, 1));
        // A txn started after release (snapshot 2) must see it free.
        assert!(!SeqEpoch::owned(1, 2));
        // Orecs from even older sections are free too.
        assert!(!SeqEpoch::owned(1, 4));
        // And a new section's stamps (3) are owned for snapshot 3.
        assert!(SeqEpoch::owned(3, 3));
        assert!(!SeqEpoch::owned(3, 4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "even")]
    fn double_begin_is_a_bug() {
        let e = SeqEpoch::new();
        e.begin_locked_section();
        e.begin_locked_section();
    }

    #[test]
    fn wraparound_preserves_parity_lifecycle() {
        // u64::MAX is odd, so the last pre-wrap section begins at MAX and
        // ends by wrapping to 0 — parity (even = free, odd = held) must
        // survive the wrap without panicking.
        let e = SeqEpoch::starting_at(u64::MAX - 1);
        assert_eq!(e.begin_locked_section(), u64::MAX);
        e.end_locked_section();
        assert_eq!(e.snapshot(), 0, "counter wraps to 0, which is even");
        assert_eq!(e.begin_locked_section(), 1);
        e.end_locked_section();
        assert_eq!(e.snapshot(), 2);
    }

    #[test]
    fn wraparound_ownership_is_conservative() {
        // A stamp from the final pre-wrap section vs. a post-wrap snapshot:
        // the orec looks owned (spurious abort), never un-owned while the
        // stamping section still runs.
        let pre_wrap_stamp = u64::MAX;
        assert!(
            SeqEpoch::owned(pre_wrap_stamp, 0),
            "stale pre-wrap stamps read as owned by post-wrap snapshots (safe direction)"
        );
        // Within the pre-wrap section itself the rule is exact.
        assert!(SeqEpoch::owned(pre_wrap_stamp, u64::MAX));
        // Once post-wrap sections re-stamp, exactness returns.
        assert!(SeqEpoch::owned(1, 1));
        assert!(!SeqEpoch::owned(1, 2));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn starting_at_rejects_odd() {
        let _ = SeqEpoch::starting_at(u64::MAX);
    }
}
