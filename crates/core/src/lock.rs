//! The elided lock itself: a test-and-test-and-set spin lock with bounded
//! exponential backoff, exactly the lock the paper's evaluation uses
//! ("a simple test-and-test-and-set lock with exponential backoff", §6.2).
//!
//! The lock word is a [`TxCell`] so that speculating hardware transactions
//! can **subscribe** to it: a transactional read of the word puts it in the
//! transaction's read set, and a subsequent acquisition (a plain
//! compare-and-swap) dooms every subscribed transaction — the mechanism
//! TLE's correctness rests on.

use rtle_htm::TxCell;
use std::hint;

const FREE: u64 = 0;
const HELD: u64 = 1;

/// Initial backoff spin count; doubled on each failed acquisition attempt.
pub(crate) const BACKOFF_MIN: u32 = 1 << 4;
/// Backoff ceiling.
pub(crate) const BACKOFF_MAX: u32 = 1 << 14;

/// One saturated-backoff wait: spin `BACKOFF_MAX` then yield the CPU.
/// Pure spinning is right for the short holds TLE expects, but once
/// backoff saturates the hold is long (a pessimistic section doing real
/// work — or a blocking wait), and on an oversubscribed host a pure
/// spinner steals entire scheduler quanta from the very holder it waits
/// for, multiplying the convoy. The yield keeps the paper's
/// test-and-test-and-set-with-backoff shape while degrading gracefully
/// when threads outnumber cores.
#[inline]
pub(crate) fn saturated_pause() {
    for _ in 0..BACKOFF_MAX {
        hint::spin_loop();
    }
    std::thread::yield_now();
}

/// Test-and-test-and-set spin lock with exponential backoff, built on a
/// transactionally visible word.
///
/// Not reentrant; no fairness/anti-starvation machinery (the paper
/// explicitly leaves that out, §6.2.1, noting it is trivial to add).
#[derive(Debug, Default)]
pub struct TatasLock {
    word: TxCell<u64>,
}

impl TatasLock {
    /// A new, free lock.
    pub fn new() -> Self {
        TatasLock {
            word: TxCell::new(FREE),
        }
    }

    /// Non-transactional probe: is the lock currently held?
    ///
    /// This is the *test* step done before starting a hardware transaction
    /// (Figure 1's "is lock available?" diamond) — probing outside the
    /// transaction avoids pointless aborts while the lock is held.
    #[inline]
    pub fn is_held(&self) -> bool {
        self.word.read_plain() == HELD
    }

    /// Transactional probe: reads the lock word *inside* the current
    /// hardware transaction, adding it to the read set. Any later
    /// acquisition aborts the subscriber. Returns whether the lock was held
    /// at subscription time.
    #[inline]
    pub fn subscribe(&self) -> bool {
        self.word.read() == HELD
    }

    /// One acquisition attempt (test, then atomic test-and-set). Returns
    /// `true` on success. The CAS is a strongly atomic plain write, so it
    /// dooms every transaction subscribed to the lock word.
    #[inline]
    pub fn try_acquire(&self) -> bool {
        !self.is_held() && self.word.compare_exchange_plain(FREE, HELD)
    }

    /// Acquires the lock, spinning with exponential backoff (yielding
    /// once the backoff saturates — see [`saturated_pause`]).
    pub fn acquire(&self) {
        let mut backoff = BACKOFF_MIN;
        loop {
            if self.try_acquire() {
                return;
            }
            if backoff >= BACKOFF_MAX {
                saturated_pause();
            } else {
                for _ in 0..backoff {
                    hint::spin_loop();
                }
                backoff <<= 1;
            }
        }
    }

    /// Releases the lock.
    #[inline]
    pub fn release(&self) {
        debug_assert!(self.is_held(), "release of a free TatasLock");
        self.word.write(FREE);
    }

    /// Spins (with backoff) until the lock is observed free. Used by the
    /// retry policy: "we spin until the lock is not held after every
    /// failure" (§6.2.1, citing Kleen's TSX anti-patterns \[16\]).
    pub fn spin_while_held(&self) {
        let mut backoff = BACKOFF_MIN;
        while self.is_held() {
            if backoff >= BACKOFF_MAX {
                saturated_pause();
            } else {
                for _ in 0..backoff {
                    hint::spin_loop();
                }
                backoff <<= 1;
            }
        }
    }

    /// Test hook: force the lock word to `HELD` without the CAS protocol,
    /// modelling an acquisition landing from another thread mid-test.
    #[doc(hidden)]
    pub fn force_held_for_test(&self) {
        self.word.store_plain_for_test(HELD);
    }
}

/// FIFO ticket lock — the fairness building block for the anti-starvation
/// mechanism the paper notes is "trivial to add" (§6.2.1).
///
/// Unlike [`TatasLock`], acquisition order is the arrival order, so a
/// thread that stops speculating (e.g. after exhausting
/// [`crate::RetryPolicy::max_slow_attempts`]) is served in bounded time no
/// matter how many other threads keep hammering the lock. Both words are
/// [`TxCell`]s, so hardware transactions can subscribe exactly as with the
/// TATAS lock.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: TxCell<u64>,
    serving: TxCell<u64>,
}

impl TicketLock {
    /// A new, free lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Non-transactional probe.
    #[inline]
    pub fn is_held(&self) -> bool {
        self.serving.read_plain() != self.next.read_plain()
    }

    /// Transactional probe/subscription: reads both words inside the
    /// current transaction; any later ticket draw or hand-off aborts the
    /// subscriber. Returns whether the lock was held.
    #[inline]
    pub fn subscribe(&self) -> bool {
        self.serving.read() != self.next.read()
    }

    /// Acquires (FIFO). Returns the ticket number served.
    pub fn acquire(&self) -> u64 {
        let ticket = self.next.fetch_add_plain(1);
        let mut backoff = BACKOFF_MIN;
        while self.serving.read_plain() != ticket {
            for _ in 0..backoff {
                hint::spin_loop();
            }
            backoff = (backoff << 1).min(BACKOFF_MAX);
        }
        ticket
    }

    /// Releases, handing the lock to the next ticket holder.
    pub fn release(&self) {
        let s = self.serving.read_plain();
        debug_assert!(s != self.next.read_plain(), "release of a free TicketLock");
        self.serving.write(s + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_roundtrip() {
        let l = TatasLock::new();
        assert!(!l.is_held());
        l.acquire();
        assert!(l.is_held());
        assert!(!l.try_acquire());
        l.release();
        assert!(!l.is_held());
        assert!(l.try_acquire());
        l.release();
    }

    #[test]
    fn mutual_exclusion() {
        let l = Arc::new(TatasLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let inside = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (l, counter, inside) =
                    (Arc::clone(&l), Arc::clone(&counter), Arc::clone(&inside));
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        l.acquire();
                        let now = inside.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(now, 0, "two threads inside the lock");
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        inside.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        l.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2000);
    }

    #[test]
    fn subscription_dooms_speculator() {
        // A transaction subscribes to a free lock; the lock is then taken
        // (plain store). The transaction must fail.
        let l = TatasLock::new();
        let r = rtle_htm::swhtm::try_txn(|| {
            assert!(!l.subscribe());
            // Simulate a concurrent acquisition landing mid-transaction.
            l.force_held_for_test();
            // Re-reading observes the doomed snapshot -> conflict abort.
            l.subscribe()
        });
        assert!(r.is_err());
        // Clean up the forced state.
        l.release();
    }

    #[test]
    fn ticket_lock_roundtrip_and_exclusion() {
        let l = Arc::new(TicketLock::new());
        assert!(!l.is_held());
        let t = l.acquire();
        assert_eq!(t, 0);
        assert!(l.is_held());
        l.release();
        assert!(!l.is_held());

        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let inside = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (l, counter, inside) =
                    (Arc::clone(&l), Arc::clone(&counter), Arc::clone(&inside));
                scope.spawn(move || {
                    for _ in 0..500 {
                        l.acquire();
                        assert_eq!(inside.fetch_add(1, std::sync::atomic::Ordering::SeqCst), 0);
                        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        inside.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                        l.release();
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2000);
    }

    #[test]
    fn ticket_lock_is_fifo() {
        // Tickets are served in draw order: a queue of acquisitions from
        // one thread observes strictly increasing tickets.
        let l = TicketLock::new();
        for expect in 0..10u64 {
            assert_eq!(l.acquire(), expect);
            l.release();
        }
    }

    #[test]
    fn ticket_subscription_dooms_speculator() {
        let l = TicketLock::new();
        let r = rtle_htm::swhtm::try_txn(|| {
            assert!(!l.subscribe());
            // A concurrent arrival draws a ticket (modelled via the
            // external-writer test hook; a real plain RMW from another
            // thread behaves identically).
            let n = l.next.read_unvalidated();
            l.next.store_plain_for_test(n + 1);
            l.subscribe()
        });
        assert!(r.is_err(), "ticket draw must doom the subscriber");
        // Restore.
        l.serving.write(l.next.read_plain());
    }

    #[test]
    fn spin_while_held_returns_when_freed() {
        let l = Arc::new(TatasLock::new());
        l.acquire();
        let waiter = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.spin_while_held();
                true
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        l.release();
        assert!(waiter.join().unwrap());
    }
}
