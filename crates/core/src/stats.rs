//! Execution statistics, mirroring the "various lightweight statistics" the
//! paper instruments its runs with (§6.2.1): per-path commit counts, abort
//! counts by cause, lock acquisitions, and total time spent with the lock
//! held. Figures 6 and 7 are plotted directly from these quantities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rtle_htm::AbortCode;

/// Which execution path completed (or attempted) a critical section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Path {
    /// Uninstrumented hardware transaction (lock observed free).
    FastHtm,
    /// Instrumented hardware transaction running while the lock is held.
    SlowHtm,
    /// Pessimistic execution under the lock.
    UnderLock,
}

/// Shared, relaxed counters attached to one [`crate::ElidableLock`].
#[derive(Debug, Default)]
pub struct ExecStats {
    ops: AtomicU64,
    fast_commits: AtomicU64,
    slow_commits: AtomicU64,
    stm_commits: AtomicU64,
    lock_acquisitions: AtomicU64,
    fast_aborts: AtomicU64,
    slow_aborts: AtomicU64,
    aborts_conflict: AtomicU64,
    aborts_capacity: AtomicU64,
    aborts_explicit: AtomicU64,
    aborts_unsupported: AtomicU64,
    aborts_other: AtomicU64,
    /// Explicit aborts broken down by runtime code (index =
    /// `crate::abort_codes::*`, 0..8).
    aborts_by_code: [AtomicU64; 8],
    /// Aborts reported against [`Path::UnderLock`] — a caller bug (the
    /// pessimistic path cannot abort), but counted rather than silently
    /// dropped so release-build misuse is observable.
    lock_path_aborts: AtomicU64,
    time_locked_ns: AtomicU64,
}

impl ExecStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_commit(&self, path: Path) {
        match path {
            Path::FastHtm => &self.fast_commits,
            Path::SlowHtm => &self.slow_commits,
            Path::UnderLock => &self.lock_acquisitions,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_abort(&self, path: Path, code: AbortCode) {
        match path {
            Path::FastHtm => self.fast_aborts.fetch_add(1, Ordering::Relaxed),
            Path::SlowHtm => self.slow_aborts.fetch_add(1, Ordering::Relaxed),
            Path::UnderLock => {
                debug_assert!(false, "lock path cannot abort (code {code:?})");
                self.lock_path_aborts.fetch_add(1, Ordering::Relaxed)
            }
        };
        match code {
            AbortCode::Conflict => &self.aborts_conflict,
            AbortCode::Capacity => &self.aborts_capacity,
            AbortCode::Explicit(c) => {
                if let Some(slot) = self.aborts_by_code.get(c as usize) {
                    slot.fetch_add(1, Ordering::Relaxed);
                }
                &self.aborts_explicit
            }
            AbortCode::Unsupported => &self.aborts_unsupported,
            AbortCode::Nested | AbortCode::Spurious => &self.aborts_other,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// One critical section completed on a pluggable software-TM backend
    /// (outside [`Path`]: the software path never aborts at this level —
    /// the backend retries internally and reports its own abort counters).
    #[inline]
    pub(crate) fn record_stm_commit(&self) {
        self.stm_commits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_time_locked(&self, d: Duration) {
        self.time_locked_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Number of slow-path HTM commits so far (used by the adaptive
    /// heuristic as its benefit signal).
    #[inline]
    pub(crate) fn slow_commits_now(&self) -> u64 {
        self.slow_commits.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn slow_aborts_now(&self) -> u64 {
        self.slow_aborts.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ops: self.ops.load(Ordering::Relaxed),
            fast_commits: self.fast_commits.load(Ordering::Relaxed),
            slow_commits: self.slow_commits.load(Ordering::Relaxed),
            stm_commits: self.stm_commits.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            fast_aborts: self.fast_aborts.load(Ordering::Relaxed),
            slow_aborts: self.slow_aborts.load(Ordering::Relaxed),
            aborts_conflict: self.aborts_conflict.load(Ordering::Relaxed),
            aborts_capacity: self.aborts_capacity.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
            aborts_unsupported: self.aborts_unsupported.load(Ordering::Relaxed),
            aborts_other: self.aborts_other.load(Ordering::Relaxed),
            aborts_by_code: std::array::from_fn(|i| self.aborts_by_code[i].load(Ordering::Relaxed)),
            lock_path_aborts: self.lock_path_aborts.load(Ordering::Relaxed),
            time_locked: Duration::from_nanos(self.time_locked_ns.load(Ordering::Relaxed)),
            taken_at_ns: rtle_obs::epoch::now_ns(),
        }
    }
}

/// Immutable view of [`ExecStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Critical sections completed (by any path).
    pub ops: u64,
    /// Commits on the uninstrumented fast path.
    pub fast_commits: u64,
    /// Commits on the instrumented slow path (concurrent with a holder).
    pub slow_commits: u64,
    /// Commits on a pluggable software-TM backend (the lock-free
    /// fallback installed via `with_software_backend`; zero without one).
    pub stm_commits: u64,
    /// Times the lock was actually acquired (pessimistic executions).
    pub lock_acquisitions: u64,
    /// Hardware aborts on the fast path.
    pub fast_aborts: u64,
    /// Hardware aborts on the slow path.
    pub slow_aborts: u64,
    /// Aborts caused by data conflicts.
    pub aborts_conflict: u64,
    /// Aborts caused by capacity overflow.
    pub aborts_capacity: u64,
    /// Explicit aborts (see [`crate::abort_codes`] and `aborts_by_code`).
    pub aborts_explicit: u64,
    /// Aborts from HTM-unfriendly operations.
    pub aborts_unsupported: u64,
    /// Nested/spurious aborts.
    pub aborts_other: u64,
    /// Explicit aborts by runtime code (index = `crate::abort_codes::*`).
    pub aborts_by_code: [u64; 8],
    /// Aborts misreported against the pessimistic path (always 0 unless a
    /// caller violates the recording contract; see `ExecStats`).
    pub lock_path_aborts: u64,
    /// Total wall time some thread held the lock.
    pub time_locked: Duration,
    /// When this snapshot was taken, in ns since the process-start
    /// monotonic epoch ([`rtle_obs::epoch`]) — the same timebase live
    /// scrapes, window series, and flight records use, so offline
    /// reports can be lined up against a scrape of the same run. Zero
    /// for hand-built snapshots. `merge` keeps the later stamp; `since`
    /// yields the interval between the two snapshots.
    pub taken_at_ns: u64,
}

impl StatsSnapshot {
    /// Fraction of completed operations that fell back to the lock — the
    /// "failure rate" the paper quotes for ccTSA (§6.4.2).
    pub fn lock_fallback_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.lock_acquisitions as f64 / self.ops as f64
        }
    }

    /// Completed operations per millisecond of `elapsed` wall time — the
    /// paper's throughput metric.
    pub fn ops_per_ms(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / elapsed.as_secs_f64() / 1e3
        }
    }

    /// Field-wise sum of two snapshots — the aggregation sharded
    /// containers use to present one lock-shaped view over many locks.
    /// Saturating, like every other snapshot combinator.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            ops: self.ops.saturating_add(other.ops),
            fast_commits: self.fast_commits.saturating_add(other.fast_commits),
            slow_commits: self.slow_commits.saturating_add(other.slow_commits),
            stm_commits: self.stm_commits.saturating_add(other.stm_commits),
            lock_acquisitions: self.lock_acquisitions.saturating_add(other.lock_acquisitions),
            fast_aborts: self.fast_aborts.saturating_add(other.fast_aborts),
            slow_aborts: self.slow_aborts.saturating_add(other.slow_aborts),
            aborts_conflict: self.aborts_conflict.saturating_add(other.aborts_conflict),
            aborts_capacity: self.aborts_capacity.saturating_add(other.aborts_capacity),
            aborts_explicit: self.aborts_explicit.saturating_add(other.aborts_explicit),
            aborts_unsupported: self.aborts_unsupported.saturating_add(other.aborts_unsupported),
            aborts_other: self.aborts_other.saturating_add(other.aborts_other),
            aborts_by_code: std::array::from_fn(|i| {
                self.aborts_by_code[i].saturating_add(other.aborts_by_code[i])
            }),
            lock_path_aborts: self.lock_path_aborts.saturating_add(other.lock_path_aborts),
            time_locked: self.time_locked.saturating_add(other.time_locked),
            taken_at_ns: self.taken_at_ns.max(other.taken_at_ns),
        }
    }

    /// Counter deltas relative to `earlier`.
    ///
    /// All subtractions saturate: the counters race under `Relaxed`
    /// loads, so a snapshot taken "later" can trail `earlier` on an
    /// individual field, and a plain `-` would panic in debug builds.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            ops: self.ops.saturating_sub(earlier.ops),
            fast_commits: self.fast_commits.saturating_sub(earlier.fast_commits),
            slow_commits: self.slow_commits.saturating_sub(earlier.slow_commits),
            stm_commits: self.stm_commits.saturating_sub(earlier.stm_commits),
            lock_acquisitions: self.lock_acquisitions.saturating_sub(earlier.lock_acquisitions),
            fast_aborts: self.fast_aborts.saturating_sub(earlier.fast_aborts),
            slow_aborts: self.slow_aborts.saturating_sub(earlier.slow_aborts),
            aborts_conflict: self.aborts_conflict.saturating_sub(earlier.aborts_conflict),
            aborts_capacity: self.aborts_capacity.saturating_sub(earlier.aborts_capacity),
            aborts_explicit: self.aborts_explicit.saturating_sub(earlier.aborts_explicit),
            aborts_unsupported: self.aborts_unsupported.saturating_sub(earlier.aborts_unsupported),
            aborts_other: self.aborts_other.saturating_sub(earlier.aborts_other),
            aborts_by_code: std::array::from_fn(|i| {
                self.aborts_by_code[i].saturating_sub(earlier.aborts_by_code[i])
            }),
            lock_path_aborts: self.lock_path_aborts.saturating_sub(earlier.lock_path_aborts),
            time_locked: self.time_locked.saturating_sub(earlier.time_locked),
            taken_at_ns: self.taken_at_ns.saturating_sub(earlier.taken_at_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = ExecStats::new();
        s.record_op();
        s.record_op();
        s.record_commit(Path::FastHtm);
        s.record_commit(Path::SlowHtm);
        s.record_commit(Path::UnderLock);
        s.record_abort(Path::FastHtm, AbortCode::Conflict);
        s.record_abort(Path::SlowHtm, AbortCode::Explicit(4));
        s.record_time_locked(Duration::from_micros(5));

        let snap = s.snapshot();
        assert_eq!(snap.ops, 2);
        assert_eq!(snap.fast_commits, 1);
        assert_eq!(snap.slow_commits, 1);
        assert_eq!(snap.lock_acquisitions, 1);
        assert_eq!(snap.fast_aborts, 1);
        assert_eq!(snap.slow_aborts, 1);
        assert_eq!(snap.aborts_conflict, 1);
        assert_eq!(snap.aborts_explicit, 1);
        assert_eq!(snap.time_locked, Duration::from_micros(5));
        assert!(snap.taken_at_ns > 0, "snapshots stamp the process epoch");
    }

    #[test]
    fn epoch_stamps_merge_to_latest_and_diff_to_interval() {
        let a = StatsSnapshot {
            ops: 10,
            taken_at_ns: 1_000,
            ..Default::default()
        };
        let b = StatsSnapshot {
            ops: 20,
            taken_at_ns: 4_500,
            ..Default::default()
        };
        assert_eq!(a.merge(&b).taken_at_ns, 4_500, "merged view is as fresh as its freshest part");
        assert_eq!(b.since(&a).taken_at_ns, 3_500, "delta carries the measurement interval");
        assert_eq!(a.since(&b).taken_at_ns, 0, "racing order saturates");
    }

    #[test]
    fn derived_metrics() {
        let snap = StatsSnapshot {
            ops: 1000,
            lock_acquisitions: 15,
            ..Default::default()
        };
        assert!((snap.lock_fallback_rate() - 0.015).abs() < 1e-12);
        let tput = snap.ops_per_ms(Duration::from_secs(1));
        assert!((tput - 1.0).abs() < 1e-9, "1000 ops / 1000 ms");
        assert_eq!(StatsSnapshot::default().lock_fallback_rate(), 0.0);
        assert_eq!(StatsSnapshot::default().ops_per_ms(Duration::ZERO), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let a = StatsSnapshot {
            ops: 10,
            fast_commits: 4,
            ..Default::default()
        };
        let b = StatsSnapshot {
            ops: 25,
            fast_commits: 9,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.ops, 15);
        assert_eq!(d.fast_commits, 5);
    }

    /// Relaxed counters can make a "later" snapshot trail an earlier one
    /// on individual fields; `since` must clamp to zero, not panic.
    #[test]
    fn since_saturates_on_racing_counters() {
        let earlier = StatsSnapshot {
            ops: 100,
            fast_commits: 90,
            slow_aborts: 7,
            aborts_by_code: [3; 8],
            lock_path_aborts: 1,
            ..Default::default()
        };
        let later = StatsSnapshot {
            ops: 99, // trails despite being sampled later
            fast_commits: 95,
            ..Default::default()
        };
        let d = later.since(&earlier);
        assert_eq!(d.ops, 0);
        assert_eq!(d.fast_commits, 5);
        assert_eq!(d.slow_aborts, 0);
        assert_eq!(d.aborts_by_code, [0; 8]);
        assert_eq!(d.lock_path_aborts, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lock_path_abort_is_a_debug_assertion() {
        let s = ExecStats::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.record_abort(Path::UnderLock, AbortCode::Conflict)
        }));
        assert!(r.is_err(), "misuse must trip the debug assertion");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn lock_path_abort_is_counted_in_release() {
        let s = ExecStats::new();
        s.record_abort(Path::UnderLock, AbortCode::Conflict);
        let snap = s.snapshot();
        assert_eq!(snap.lock_path_aborts, 1, "misuse is observable");
        assert_eq!(snap.aborts_conflict, 1);
        assert_eq!(snap.fast_aborts, 0);
        assert_eq!(snap.slow_aborts, 0);
    }
}
