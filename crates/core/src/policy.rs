//! Elision policies and the retry policy.

/// Which synchronization algorithm an [`crate::ElidableLock`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElisionPolicy {
    /// Never elide: every critical section acquires the lock. The paper's
    /// `Lock` baseline.
    LockOnly,
    /// Standard transactional lock elision: speculate while the lock is
    /// free, *wait* whenever it is held (Figure 1, left column).
    Tle,
    /// Refined TLE with write-only instrumentation (§3): read-only hardware
    /// transactions run concurrently with the lock holder until the
    /// holder's first write.
    RwTle,
    /// Refined TLE with full instrumentation over `orecs` ownership records
    /// (§4): any non-conflicting hardware transaction runs concurrently
    /// with the lock holder. The paper evaluates 1–8192 orecs.
    FgTle {
        /// Number of ownership records (the X of FG-TLE(X)).
        orecs: usize,
    },
    /// The adaptive extension sketched in §4.2.1: starts as FG-TLE with
    /// `initial_orecs` active, and the lock holder may resize the active
    /// orec range (up to `max_orecs`) or disable the slow path entirely
    /// based on observed benefit.
    AdaptiveFgTle {
        /// Active orecs at start.
        initial_orecs: usize,
        /// Allocated ceiling the holder may grow to.
        max_orecs: usize,
    },
}

impl ElisionPolicy {
    /// Whether this policy has an instrumented slow path at all.
    pub fn has_slow_path(self) -> bool {
        !matches!(self, ElisionPolicy::LockOnly | ElisionPolicy::Tle)
    }

    /// Whether the policy needs orec arrays.
    pub fn orec_capacity(self) -> Option<usize> {
        match self {
            ElisionPolicy::FgTle { orecs } => Some(orecs),
            ElisionPolicy::AdaptiveFgTle { max_orecs, .. } => Some(max_orecs),
            _ => None,
        }
    }

    /// Short display name matching the paper's figure legends.
    pub fn label(self) -> String {
        match self {
            ElisionPolicy::LockOnly => "Lock".to_string(),
            ElisionPolicy::Tle => "TLE".to_string(),
            ElisionPolicy::RwTle => "RW-TLE".to_string(),
            ElisionPolicy::FgTle { orecs } => format!("FG-TLE({orecs})"),
            ElisionPolicy::AdaptiveFgTle { .. } => "FG-TLE(adaptive)".to_string(),
        }
    }
}

/// Retry policy: how speculation failures escalate to the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Fast-path HTM attempts before acquiring the lock. The paper's
    /// experiments use a static 5 (§2 footnote 1: raised from libitm's 2).
    /// Slow-path failures are *not* held against this budget (§6.2.1).
    pub max_attempts: u32,
    /// Subscribe to the lock just before commit instead of right after
    /// begin (§5). Restores the Figure 4 "lock as barrier" semantics for
    /// refined TLE at some cost in slow-path parallelism; always safe for
    /// RW-/FG-TLE because their slow paths are instrumented.
    pub lazy_subscription: bool,
    /// Abort the whole fast-path budget early on an abort that can never
    /// succeed (e.g. an unsupported instruction).
    pub give_up_on_unsupported: bool,
    /// Anti-starvation bound (§6.2.1 notes one is "trivial to add"): cap
    /// the *hopeful* slow-path retries of a single operation; once
    /// exceeded, the operation stops speculating and queues on the lock,
    /// which bounds its total work. `None` reproduces the paper's
    /// unlimited-slow-retries configuration.
    pub max_slow_attempts: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            lazy_subscription: false,
            give_up_on_unsupported: true,
            max_slow_attempts: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ElisionPolicy::LockOnly.label(), "Lock");
        assert_eq!(ElisionPolicy::Tle.label(), "TLE");
        assert_eq!(ElisionPolicy::RwTle.label(), "RW-TLE");
        assert_eq!(ElisionPolicy::FgTle { orecs: 256 }.label(), "FG-TLE(256)");
    }

    #[test]
    fn slow_path_classification() {
        assert!(!ElisionPolicy::LockOnly.has_slow_path());
        assert!(!ElisionPolicy::Tle.has_slow_path());
        assert!(ElisionPolicy::RwTle.has_slow_path());
        assert!(ElisionPolicy::FgTle { orecs: 1 }.has_slow_path());
        assert!(ElisionPolicy::AdaptiveFgTle {
            initial_orecs: 64,
            max_orecs: 8192
        }
        .has_slow_path());
    }

    #[test]
    fn orec_capacity() {
        assert_eq!(ElisionPolicy::Tle.orec_capacity(), None);
        assert_eq!(ElisionPolicy::FgTle { orecs: 16 }.orec_capacity(), Some(16));
        assert_eq!(
            ElisionPolicy::AdaptiveFgTle {
                initial_orecs: 4,
                max_orecs: 1024
            }
            .orec_capacity(),
            Some(1024)
        );
    }

    #[test]
    fn default_retry_matches_paper() {
        let r = RetryPolicy::default();
        assert_eq!(r.max_attempts, 5);
        assert!(!r.lazy_subscription);
        assert_eq!(
            r.max_slow_attempts, None,
            "unlimited slow retries, as evaluated"
        );
    }
}
