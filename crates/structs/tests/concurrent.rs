//! Concurrent correctness of the extra data structures under every
//! synchronization method — including the linked list's designed behavior
//! of overflowing HTM capacity and escalating to the lock.

use std::sync::atomic::{AtomicI64, Ordering};

use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::TxAccess;
use rtle_hytm::{Norec, RhNorec};
use rtle_structs::{TxHashSet, TxListSet};

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[derive(Clone, Copy)]
enum Op {
    Insert,
    Remove,
    Find,
}

fn drive(threads: usize, ops: usize, range: u64, exec: impl Fn(Op, u64) -> i64 + Sync) -> i64 {
    let balance = AtomicI64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let exec = &exec;
            let balance = &balance;
            scope.spawn(move || {
                let mut rng = 0xfeed_beef ^ (t as u64 + 1);
                for _ in 0..ops {
                    let r = xorshift(&mut rng);
                    let key = (r >> 16) % range;
                    let op = match r % 4 {
                        0 => Op::Insert,
                        1 => Op::Remove,
                        _ => Op::Find,
                    };
                    balance.fetch_add(exec(op, key), Ordering::Relaxed);
                }
            });
        }
    });
    balance.load(Ordering::Relaxed)
}

fn apply_hash<A: TxAccess + ?Sized>(s: &TxHashSet, a: &A, op: Op, key: u64) -> i64 {
    match op {
        Op::Insert => i64::from(s.insert(a, key)),
        Op::Remove => -i64::from(s.remove(a, key)),
        Op::Find => {
            let _ = s.contains(a, key);
            0
        }
    }
}

fn apply_list<A: TxAccess + ?Sized>(s: &TxListSet, a: &A, op: Op, key: u64) -> i64 {
    match op {
        Op::Insert => i64::from(s.insert(a, key)),
        Op::Remove => -i64::from(s.remove(a, key)),
        Op::Find => {
            let _ = s.contains(a, key);
            0
        }
    }
}

#[test]
fn hashset_under_all_policies() {
    for policy in [
        ElisionPolicy::LockOnly,
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 256 },
    ] {
        let set = TxHashSet::with_capacity(2048);
        let lock = ElidableLock::builder().policy(policy).build();
        let balance = drive(4, 1_500, 512, |op, key| {
            lock.execute(|ctx| apply_hash(&set, ctx, op, key))
        });
        assert!(balance >= 0, "{}", policy.label());
        assert_eq!(
            set.len_plain() as i64,
            balance,
            "{}: lost updates",
            policy.label()
        );
    }
}

#[test]
fn hashset_under_tms() {
    let set = TxHashSet::with_capacity(2048);
    let norec = Norec::new();
    let balance = drive(4, 1_200, 512, |op, key| {
        norec.execute(|ctx| apply_hash(&set, ctx, op, key))
    });
    assert_eq!(set.len_plain() as i64, balance, "NOrec");

    let set2 = TxHashSet::with_capacity(2048);
    let rh = RhNorec::new();
    let balance2 = drive(4, 1_200, 512, |op, key| {
        rh.execute(|ctx| apply_hash(&set2, ctx, op, key))
    });
    assert_eq!(set2.len_plain() as i64, balance2, "RHNOrec");
}

#[test]
fn list_under_policies_with_capacity_pressure() {
    // 600-key range: traversals overflow the default 4096-line read
    // capacity only rarely, but with a tightened capacity the lock path
    // must absorb long operations — correctness must hold either way.
    let cfg = rtle_htm::HtmConfig {
        read_capacity: 128,
        write_capacity: 128,
        spurious_one_in: 0,
        ..rtle_htm::HtmConfig::default()
    };
    cfg.with_installed(|| {
        for policy in [ElisionPolicy::Tle, ElisionPolicy::FgTle { orecs: 256 }] {
            let set = TxListSet::with_key_range(600);
            let lock = ElidableLock::builder().policy(policy).build();
            let balance = drive(3, 500, 600, |op, key| {
                lock.execute(|ctx| apply_list(&set, ctx, op, key))
            });
            set.check_invariants_plain().unwrap();
            assert_eq!(set.len_plain() as i64, balance, "{}", policy.label());
            let snap = lock.stats().snapshot();
            assert!(
                snap.aborts_capacity > 0 || snap.lock_acquisitions > 0,
                "{}: long chains should pressure HTM capacity: {snap:?}",
                policy.label()
            );
        }
    });
}

#[test]
fn list_sequential_differential() {
    use std::collections::BTreeSet;
    let set = TxListSet::with_key_range(128);
    let mut model = BTreeSet::new();
    let a = rtle_htm::PlainAccess;
    let mut rng = 0x1234u64;
    for _ in 0..5_000 {
        let r = xorshift(&mut rng);
        let key = (r >> 8) % 128;
        match r % 3 {
            0 => assert_eq!(set.insert(&a, key), model.insert(key)),
            1 => assert_eq!(set.remove(&a, key), model.remove(&key)),
            _ => assert_eq!(set.contains(&a, key), model.contains(&key)),
        }
    }
    assert_eq!(set.keys_plain(), model.into_iter().collect::<Vec<_>>());
    set.check_invariants_plain().unwrap();
}
