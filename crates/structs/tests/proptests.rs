//! Differential property tests for the extra structures.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rtle_htm::PlainAccess;
use rtle_structs::{TxHashSet, TxListSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn ops(range: u64, n: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..range).prop_map(Op::Insert),
            (0..range).prop_map(Op::Remove),
            (0..range).prop_map(Op::Contains),
        ],
        0..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hashset_matches_btreeset(ops in ops(96, 300)) {
        let s = TxHashSet::with_capacity(1024);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in &ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(s.insert(&a, *k), model.insert(*k)),
                Op::Remove(k) => prop_assert_eq!(s.remove(&a, *k), model.remove(k)),
                Op::Contains(k) => prop_assert_eq!(s.contains(&a, *k), model.contains(k)),
            }
        }
        let mut keys = s.keys_plain();
        keys.sort_unstable();
        prop_assert_eq!(keys, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn listset_matches_btreeset(ops in ops(64, 250)) {
        let s = TxListSet::with_key_range(64);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in &ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(s.insert(&a, *k), model.insert(*k)),
                Op::Remove(k) => prop_assert_eq!(s.remove(&a, *k), model.remove(k)),
                Op::Contains(k) => prop_assert_eq!(s.contains(&a, *k), model.contains(k)),
            }
        }
        prop_assert!(s.check_invariants_plain().is_ok());
        prop_assert_eq!(s.keys_plain(), model.into_iter().collect::<Vec<_>>());
    }

    /// Heavy churn on a tiny hash set: tombstone reuse must never lose or
    /// resurrect keys, even when tombstones outnumber live entries.
    #[test]
    fn hashset_tombstone_churn(seq in proptest::collection::vec(0u64..6, 0..400)) {
        let s = TxHashSet::with_capacity(16);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for (i, k) in seq.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert_eq!(s.insert(&a, *k), model.insert(*k));
            } else {
                prop_assert_eq!(s.remove(&a, *k), model.remove(k));
            }
        }
        let mut keys = s.keys_plain();
        keys.sort_unstable();
        prop_assert_eq!(keys, model.into_iter().collect::<Vec<_>>());
    }
}
