//! Randomized differential tests for the extra structures, driven by a
//! seeded [`SplitMix64`] stream (dependency-free stand-in for a
//! property-testing harness; failures reproduce from the fixed seeds).

use std::collections::BTreeSet;

use rtle_htm::prng::SplitMix64;
use rtle_htm::PlainAccess;
use rtle_structs::{TxHashSet, TxListSet};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn gen_ops(rng: &mut SplitMix64, range: u64, max_len: u64) -> Vec<Op> {
    (0..rng.below(max_len))
        .map(|_| {
            let k = rng.below(range);
            match rng.below(3) {
                0 => Op::Insert(k),
                1 => Op::Remove(k),
                _ => Op::Contains(k),
            }
        })
        .collect()
}

#[test]
fn hashset_matches_btreeset() {
    let mut rng = SplitMix64::new(0x51e9_5701);
    for case in 0..128 {
        let ops = gen_ops(&mut rng, 96, 300);
        let s = TxHashSet::with_capacity(1024);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in &ops {
            match op {
                Op::Insert(k) => assert_eq!(s.insert(&a, *k), model.insert(*k)),
                Op::Remove(k) => assert_eq!(s.remove(&a, *k), model.remove(k)),
                Op::Contains(k) => assert_eq!(s.contains(&a, *k), model.contains(k)),
            }
        }
        let mut keys = s.keys_plain();
        keys.sort_unstable();
        assert_eq!(keys, model.into_iter().collect::<Vec<_>>(), "case {case}");
    }
}

#[test]
fn listset_matches_btreeset() {
    let mut rng = SplitMix64::new(0x51e9_5702);
    for case in 0..128 {
        let ops = gen_ops(&mut rng, 64, 250);
        let s = TxListSet::with_key_range(64);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in &ops {
            match op {
                Op::Insert(k) => assert_eq!(s.insert(&a, *k), model.insert(*k)),
                Op::Remove(k) => assert_eq!(s.remove(&a, *k), model.remove(k)),
                Op::Contains(k) => assert_eq!(s.contains(&a, *k), model.contains(k)),
            }
        }
        assert!(s.check_invariants_plain().is_ok(), "case {case}");
        assert_eq!(s.keys_plain(), model.into_iter().collect::<Vec<_>>());
    }
}

/// Heavy churn on a tiny hash set: tombstone reuse must never lose or
/// resurrect keys, even when tombstones outnumber live entries.
#[test]
fn hashset_tombstone_churn() {
    let mut rng = SplitMix64::new(0x51e9_5703);
    for case in 0..128 {
        let seq: Vec<u64> = (0..rng.below(400)).map(|_| rng.below(6)).collect();
        let s = TxHashSet::with_capacity(16);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for (i, k) in seq.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(s.insert(&a, *k), model.insert(*k));
            } else {
                assert_eq!(s.remove(&a, *k), model.remove(k));
            }
        }
        let mut keys = s.keys_plain();
        keys.sort_unstable();
        assert_eq!(keys, model.into_iter().collect::<Vec<_>>(), "case {case}");
    }
}
