//! Open-addressing transactional hash set.

use rtle_htm::hash::wang_mix64;
use rtle_htm::{PlainAccess, TxAccess, TxCell};

/// Slot encoding: 0 = never used, 1 = tombstone, key + 2 = occupied.
const EMPTY: u64 = 0;
const TOMBSTONE: u64 = 1;

/// One slot, cache-line padded so distinct slots never share a conflict
/// line (probing neighbours stay independent).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Slot {
    word: TxCell<u64>,
}

/// A fixed-capacity set of `u64` keys with linear-probing open addressing.
///
/// Deletions leave tombstones (probe chains stay intact); the structure
/// never rehashes, so size it at ≥ 2× the expected live keys plus churn.
/// All operations are generic over [`TxAccess`].
#[derive(Debug)]
pub struct TxHashSet {
    slots: Box<[Slot]>,
    mask: u64,
    max_key: u64,
}

impl TxHashSet {
    /// Allocates a set with at least `capacity` slots (rounded to a power
    /// of two). Keys up to `u64::MAX - 2` are supported.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        TxHashSet {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            mask: cap as u64 - 1,
            max_key: u64::MAX - 2,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn encode(&self, key: u64) -> u64 {
        assert!(key <= self.max_key, "key too large");
        key + 2
    }

    /// Membership test. Reads the probe chain only.
    pub fn contains<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        for _ in 0..self.slots.len() {
            let w = a.load(&self.slots[i as usize].word);
            if w == stored {
                return true;
            }
            if w == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
        false
    }

    /// Inserts `key`; returns `false` if already present (read-only in
    /// that case — the §3 shape that lets RW-TLE commit it concurrently
    /// with a lock holder).
    pub fn insert<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        let mut first_tombstone: Option<u64> = None;
        for _ in 0..self.slots.len() {
            let w = a.load(&self.slots[i as usize].word);
            if w == stored {
                return false;
            }
            if w == TOMBSTONE && first_tombstone.is_none() {
                first_tombstone = Some(i);
            }
            if w == EMPTY {
                let target = first_tombstone.unwrap_or(i);
                a.store(&self.slots[target as usize].word, stored);
                return true;
            }
            i = (i + 1) & self.mask;
        }
        // No EMPTY found: reuse a tombstone if the probe found one.
        if let Some(t) = first_tombstone {
            a.store(&self.slots[t as usize].word, stored);
            return true;
        }
        panic!("TxHashSet full: size it at >= 2x the expected keys");
    }

    /// Removes `key`; returns `false` if absent (read-only in that case).
    pub fn remove<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let stored = self.encode(key);
        let mut i = wang_mix64(key) & self.mask;
        for _ in 0..self.slots.len() {
            let w = a.load(&self.slots[i as usize].word);
            if w == stored {
                a.store(&self.slots[i as usize].word, TOMBSTONE);
                return true;
            }
            if w == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
        false
    }

    /// Returns an arbitrary present key, transactionally — the classic
    /// "take any work item" shape for composable consumers: pair with a
    /// transactional `remove` and a `retry` when `None`, and the consumer
    /// blocks until a producer commits an insert. O(capacity) scan; size
    /// the set for the working set, not the key space.
    pub fn any_key<A: TxAccess + ?Sized>(&self, a: &A) -> Option<u64> {
        for slot in self.slots.iter() {
            let w = a.load(&slot.word);
            if w >= 2 {
                return Some(w - 2);
            }
        }
        None
    }

    /// Live key count. O(capacity); quiescent use only.
    pub fn len_plain(&self) -> usize {
        let a = PlainAccess;
        self.slots.iter().filter(|s| a.load(&s.word) >= 2).count()
    }

    /// All keys, unordered. Quiescent use only.
    pub fn keys_plain(&self) -> Vec<u64> {
        let a = PlainAccess;
        self.slots
            .iter()
            .filter_map(|s| {
                let w = a.load(&s.word);
                if w >= 2 {
                    Some(w - 2)
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let s = TxHashSet::with_capacity(64);
        let a = PlainAccess;
        assert!(!s.contains(&a, 7));
        assert!(s.insert(&a, 7));
        assert!(!s.insert(&a, 7));
        assert!(s.contains(&a, 7));
        assert!(s.remove(&a, 7));
        assert!(!s.remove(&a, 7));
        assert!(!s.contains(&a, 7));
        assert_eq!(s.len_plain(), 0);
    }

    #[test]
    fn key_zero_and_one_are_fine() {
        // The EMPTY/TOMBSTONE sentinels must not collide with small keys.
        let s = TxHashSet::with_capacity(16);
        let a = PlainAccess;
        assert!(s.insert(&a, 0));
        assert!(s.insert(&a, 1));
        assert!(s.contains(&a, 0));
        assert!(s.contains(&a, 1));
        assert!(s.remove(&a, 0));
        assert!(s.contains(&a, 1));
    }

    #[test]
    fn tombstones_keep_probe_chains_intact() {
        let s = TxHashSet::with_capacity(8); // force collisions
        let a = PlainAccess;
        for k in 0..5 {
            assert!(s.insert(&a, k));
        }
        // Remove a middle-of-chain key; the rest must stay reachable.
        assert!(s.remove(&a, 2));
        for k in [0u64, 1, 3, 4] {
            assert!(s.contains(&a, k), "key {k} lost after tombstoning");
        }
        // Reinsertion reuses the tombstone.
        assert!(s.insert(&a, 2));
        assert_eq!(s.len_plain(), 5);
    }

    #[test]
    fn slots_are_line_padded() {
        assert_eq!(std::mem::size_of::<Slot>(), 64);
    }

    #[test]
    #[should_panic(expected = "TxHashSet full")]
    fn full_set_panics() {
        let s = TxHashSet::with_capacity(8);
        let a = PlainAccess;
        for k in 0..9 {
            s.insert(&a, k);
        }
    }
}
