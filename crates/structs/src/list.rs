//! Sorted singly-linked list set — the long-read-chain stress shape.

use rtle_htm::{PlainAccess, TxAccess, TxCell};

/// Null link; slot 0 is the head sentinel, key `k` owns slot `k + 1`.
const NIL: u32 = u32::MAX;

/// One node: just the next link (the key is the slot index), padded to a
/// cache line so each traversal hop is one tracked line — maximal read
/// footprint, exactly what makes lists hard for best-effort HTM.
#[repr(align(64))]
#[derive(Debug)]
struct Node {
    next: TxCell<u32>,
}

/// A sorted linked-list set of keys in `[0, key_range)`.
///
/// `contains`/`insert`/`remove` traverse from the head, reading O(n)
/// cache lines: with a few hundred live keys the read set exceeds the
/// emulated HTM's capacity and operations *must* fall back — the designed
/// use of this structure in tests and benchmarks.
#[derive(Debug)]
pub struct TxListSet {
    /// `nodes[0]` is the head sentinel.
    nodes: Box<[Node]>,
    key_range: u64,
}

impl TxListSet {
    /// An empty set for keys in `[0, key_range)`.
    pub fn with_key_range(key_range: u64) -> Self {
        assert!(key_range >= 1 && key_range < (u32::MAX as u64) - 2);
        TxListSet {
            nodes: (0..=key_range)
                .map(|_| Node {
                    next: TxCell::new(NIL),
                })
                .collect(),
            key_range,
        }
    }

    /// The accepted key range.
    pub fn key_range(&self) -> u64 {
        self.key_range
    }

    #[inline]
    fn slot(&self, key: u64) -> u32 {
        assert!(key < self.key_range, "key {key} out of range");
        (key + 1) as u32
    }

    /// Finds the insertion point: returns `(prev, cur)` where `cur` is the
    /// first node with slot ≥ `target` (or NIL), and `prev` precedes it.
    fn locate<A: TxAccess + ?Sized>(&self, a: &A, target: u32) -> (u32, u32) {
        let mut prev = 0u32; // head sentinel
        let mut cur = a.load(&self.nodes[0].next);
        while cur != NIL && cur < target {
            prev = cur;
            cur = a.load(&self.nodes[cur as usize].next);
        }
        (prev, cur)
    }

    /// Membership test (reads the chain up to the key's position).
    pub fn contains<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let target = self.slot(key);
        let (_, cur) = self.locate(a, target);
        cur == target
    }

    /// Inserts `key`; `false` (and no writes) if present.
    pub fn insert<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let target = self.slot(key);
        let (prev, cur) = self.locate(a, target);
        if cur == target {
            return false;
        }
        a.store(&self.nodes[target as usize].next, cur);
        a.store(&self.nodes[prev as usize].next, target);
        true
    }

    /// Removes `key`; `false` (and no writes) if absent.
    pub fn remove<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let target = self.slot(key);
        let (prev, cur) = self.locate(a, target);
        if cur != target {
            return false;
        }
        let nxt = a.load(&self.nodes[target as usize].next);
        a.store(&self.nodes[prev as usize].next, nxt);
        a.store(&self.nodes[target as usize].next, NIL);
        true
    }

    /// Keys in ascending order. Quiescent use only.
    pub fn keys_plain(&self) -> Vec<u64> {
        let a = PlainAccess;
        let mut out = Vec::new();
        let mut cur = a.load(&self.nodes[0].next);
        while cur != NIL {
            out.push(cur as u64 - 1);
            cur = a.load(&self.nodes[cur as usize].next);
        }
        out
    }

    /// Live key count. Quiescent use only.
    pub fn len_plain(&self) -> usize {
        self.keys_plain().len()
    }

    /// Checks the sorted-chain invariant. Quiescent use only.
    pub fn check_invariants_plain(&self) -> Result<(), String> {
        let keys = self.keys_plain();
        if keys.len() > self.key_range as usize {
            return Err("cycle detected (more nodes than keys)".into());
        }
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("ordering violated: {} !< {}", w[0], w[1]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_semantics() {
        let s = TxListSet::with_key_range(100);
        let a = PlainAccess;
        assert!(!s.contains(&a, 5));
        assert!(s.insert(&a, 5));
        assert!(!s.insert(&a, 5));
        assert!(s.insert(&a, 3));
        assert!(s.insert(&a, 9));
        assert_eq!(s.keys_plain(), vec![3, 5, 9]);
        assert!(s.remove(&a, 5));
        assert!(!s.remove(&a, 5));
        assert_eq!(s.keys_plain(), vec![3, 9]);
        s.check_invariants_plain().unwrap();
    }

    #[test]
    fn boundary_keys() {
        let s = TxListSet::with_key_range(10);
        let a = PlainAccess;
        assert!(s.insert(&a, 0));
        assert!(s.insert(&a, 9));
        assert_eq!(s.keys_plain(), vec![0, 9]);
        assert!(s.remove(&a, 0));
        assert_eq!(s.keys_plain(), vec![9]);
    }

    #[test]
    fn long_chain_reads_exceed_htm_capacity() {
        use rtle_htm::{swhtm, AbortCode, HtmConfig};
        let s = TxListSet::with_key_range(256);
        let a = PlainAccess;
        for k in 0..256 {
            s.insert(&a, k);
        }
        // A transactional lookup of the last key reads 256 chained lines;
        // with a 64-line read capacity it must abort for capacity.
        let cfg = HtmConfig {
            read_capacity: 64,
            write_capacity: 64,
            spurious_one_in: 0,
            ..HtmConfig::default()
        };
        let r = cfg.with_installed(|| swhtm::try_txn(|| s.contains(&swhtm_access(), 255)));
        assert_eq!(r, Err(AbortCode::Capacity));
    }

    /// Inside a software transaction, PlainAccess would bypass tracking;
    /// this shim routes loads through the transactional path.
    fn swhtm_access() -> TxAccessShim {
        TxAccessShim
    }
    struct TxAccessShim;
    impl TxAccess for TxAccessShim {
        fn load<T: rtle_htm::TxWord>(&self, cell: &TxCell<T>) -> T {
            cell.read()
        }
        fn store<T: rtle_htm::TxWord>(&self, cell: &TxCell<T>, v: T) {
            cell.write(v)
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let s = TxListSet::with_key_range(4);
        s.contains(&PlainAccess, 4);
    }
}
