#![warn(missing_docs)]
//! # rtle-structs: more transactional data structures
//!
//! Companions to the AVL tree of `rtle-avltree`, covering the other
//! critical-section shapes the paper's discussion leans on:
//!
//! * [`TxHashSet`] — an open-addressing hash set. §3 motivates RW-TLE with
//!   exactly this shape: "a look up operation in a hash table, or an
//!   insert operation … which does not modify the data structure when the
//!   given key is already present". Operations touch O(1) lines, so they
//!   almost never abort for capacity and the read-only prefix is short.
//! * [`TxListSet`] — a sorted singly-linked list set. The classic
//!   transactional-memory stress shape: `contains(k)` reads a *chain* of
//!   O(n) lines, so long lists exceed best-effort HTM read capacity and
//!   exercise the capacity-abort → lock-fallback path that pure tree/hash
//!   workloads rarely hit.
//!
//! Both are arena-backed (slot per key, allocation-free operations) and
//! generic over [`rtle_htm::TxAccess`], so the same code runs under every
//! synchronization method in the repository.

mod hashset;
mod list;

pub use hashset::TxHashSet;
pub use list::TxListSet;
