//! Randomized differential testing of the AVL set against `BTreeSet`,
//! driven by the shared [`rtle_fuzz::ops`] generator family (seeded
//! [`SplitMix64`] streams; failures reproduce from the fixed seeds).
//!
//! The generators live in `rtle-fuzz` so the proptests, the chaos runner,
//! and the mixed-policy agreement test all draw from one audited source.
//! Unlike this file's original local generators, `gen_ops` can never
//! produce an empty op vector or an all-`Contains` one: every case
//! actually mutates the tree.

use std::collections::BTreeSet;

use rtle_avltree::AvlSet;
use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_fuzz::ops::{self, SetOp};
use rtle_htm::prng::SplitMix64;
use rtle_htm::PlainAccess;

/// Plain (sequential) execution matches BTreeSet exactly, and the AVL
/// structural invariants hold after every operation sequence.
#[test]
fn sequential_matches_btreeset() {
    let mut rng = SplitMix64::new(0x51e9_a411);
    for case in 0..128 {
        let ops = ops::gen_ops(&mut rng, 64, 1, 200);
        assert!(ops.iter().any(|op| op.is_mutation()));
        let set = AvlSet::with_key_range(64);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in ops {
            assert_eq!(ops::apply_avl(&set, &a, op), ops::apply_model(op, &mut model));
        }
        assert!(set.check_invariants_plain().is_ok(), "case {case}");
        assert_eq!(set.keys_plain(), model.iter().copied().collect::<Vec<_>>());
    }
}

/// Duplicate-key churn over a tiny hot set: the already-present /
/// already-absent branches and repeated rebalances around the same keys.
#[test]
fn churn_matches_btreeset() {
    let mut rng = SplitMix64::new(0x51e9_a415);
    for case in 0..64 {
        let hot = 1 + rng.below(6);
        let ops = ops::gen_ops_churn(&mut rng, hot, 400);
        let set = AvlSet::with_key_range(64);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in ops {
            assert_eq!(ops::apply_avl(&set, &a, op), ops::apply_model(op, &mut model));
        }
        assert!(set.check_invariants_plain().is_ok(), "case {case} (hot {hot})");
        assert_eq!(set.keys_plain(), model.iter().copied().collect::<Vec<_>>());
    }
}

/// Skewed key draws (monotone-ish runs forcing rotation chains) stay
/// correct and balanced.
#[test]
fn skewed_matches_btreeset() {
    let mut rng = SplitMix64::new(0x51e9_a416);
    for case in 0..64 {
        let ops = ops::gen_ops_skewed(&mut rng, 512, 500);
        let set = AvlSet::with_key_range(512);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in ops {
            assert_eq!(ops::apply_avl(&set, &a, op), ops::apply_model(op, &mut model));
        }
        assert!(set.check_invariants_plain().is_ok(), "case {case}");
        assert_eq!(set.keys_plain(), model.iter().copied().collect::<Vec<_>>());
    }
}

/// Executing the same operation sequence through an elided lock
/// (single-threaded, so speculation always succeeds or falls back
/// deterministically) produces identical results to plain execution.
#[test]
fn elided_execution_equals_plain() {
    let mut rng = SplitMix64::new(0x51e9_a412);
    for case in 0..48 {
        let ops = ops::gen_ops(&mut rng, 64, 1, 120);
        let orecs = [1usize, 16, 256][(case % 3) as usize];
        let plain_set = AvlSet::with_key_range(64);
        let elided_set = AvlSet::with_key_range(64);
        let lock = ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs }).build();
        let a = PlainAccess;

        for op in ops {
            let expected = ops::apply_avl(&plain_set, &a, op);
            let got = lock.execute(|ctx| ops::apply_avl(&elided_set, ctx, op));
            assert_eq!(got, expected, "case {case} {op:?}");
        }
        assert_eq!(plain_set.keys_plain(), elided_set.keys_plain());
        assert!(elided_set.check_invariants_plain().is_ok(), "case {case}");
    }
}

/// Tree height stays within the AVL bound 1.44·log2(n+2) for any
/// insertion order — including the skewed generator's rotation-chain
/// workloads.
#[test]
fn height_within_avl_bound() {
    let mut rng = SplitMix64::new(0x51e9_a413);
    for case in 0..64 {
        let set = AvlSet::with_key_range(2048);
        let a = PlainAccess;
        let mut keys = BTreeSet::new();
        if case % 2 == 0 {
            let n_keys = 1 + rng.below(299);
            while (keys.len() as u64) < n_keys {
                keys.insert(rng.below(2048));
            }
            for k in &keys {
                set.insert(&a, *k);
            }
        } else {
            for op in ops::gen_ops_skewed(&mut rng, 2048, 300) {
                if let SetOp::Insert(k) = op {
                    set.insert(&a, k);
                    keys.insert(k);
                }
            }
            if keys.is_empty() {
                set.insert(&a, 0);
                keys.insert(0);
            }
        }
        assert!(set.check_invariants_plain().is_ok());
        for k in &keys {
            assert!(set.contains(&a, *k));
        }
        let n = keys.len() as f64;
        let bound = (1.4405 * (n + 2.0).log2()).ceil() as usize + 1;
        assert!(
            set.root_height_plain() as usize <= bound,
            "height {} exceeds AVL bound {}",
            set.root_height_plain(),
            bound
        );
    }
}
