//! Property-based differential testing of the AVL set against `BTreeSet`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rtle_avltree::AvlSet;
use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::PlainAccess;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn op_strategy(range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..range).prop_map(Op::Insert),
        (0..range).prop_map(Op::Remove),
        (0..range).prop_map(Op::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Plain (sequential) execution matches BTreeSet exactly, and the AVL
    /// structural invariants hold after every operation sequence.
    #[test]
    fn sequential_matches_btreeset(ops in proptest::collection::vec(op_strategy(64), 0..200)) {
        let set = AvlSet::with_key_range(64);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in &ops {
            match op {
                Op::Insert(k) => prop_assert_eq!(set.insert(&a, *k), model.insert(*k)),
                Op::Remove(k) => prop_assert_eq!(set.remove(&a, *k), model.remove(k)),
                Op::Contains(k) => prop_assert_eq!(set.contains(&a, *k), model.contains(k)),
            }
        }
        prop_assert!(set.check_invariants_plain().is_ok());
        prop_assert_eq!(set.keys_plain(), model.iter().copied().collect::<Vec<_>>());
    }

    /// Executing the same operation sequence through an elided lock
    /// (single-threaded, so speculation always succeeds or falls back
    /// deterministically) produces identical results to plain execution.
    #[test]
    fn elided_execution_equals_plain(
        ops in proptest::collection::vec(op_strategy(64), 0..120),
        orecs in prop_oneof![Just(1usize), Just(16), Just(256)],
    ) {
        let plain_set = AvlSet::with_key_range(64);
        let elided_set = AvlSet::with_key_range(64);
        let lock = ElidableLock::new(ElisionPolicy::FgTle { orecs });
        let a = PlainAccess;

        for op in &ops {
            match op {
                Op::Insert(k) => {
                    let expected = plain_set.insert(&a, *k);
                    let got = lock.execute(|ctx| elided_set.insert(ctx, *k));
                    prop_assert_eq!(got, expected);
                }
                Op::Remove(k) => {
                    let expected = plain_set.remove(&a, *k);
                    let got = lock.execute(|ctx| elided_set.remove(ctx, *k));
                    prop_assert_eq!(got, expected);
                }
                Op::Contains(k) => {
                    let expected = plain_set.contains(&a, *k);
                    let got = lock.execute(|ctx| elided_set.contains(ctx, *k));
                    prop_assert_eq!(got, expected);
                }
            }
        }
        prop_assert_eq!(plain_set.keys_plain(), elided_set.keys_plain());
        prop_assert!(elided_set.check_invariants_plain().is_ok());
    }

    /// Tree height stays within the AVL bound 1.44·log2(n+2) for any
    /// insertion order.
    #[test]
    fn height_within_avl_bound(keys in proptest::collection::hash_set(0u64..2048, 1..300)) {
        let set = AvlSet::with_key_range(2048);
        let a = PlainAccess;
        for k in &keys {
            set.insert(&a, *k);
        }
        prop_assert!(set.check_invariants_plain().is_ok());
        for k in &keys {
            prop_assert!(set.contains(&a, *k));
        }
        let n = keys.len() as f64;
        let bound = (1.4405 * (n + 2.0).log2()).ceil() as usize + 1;
        prop_assert!(set.root_height_plain() as usize <= bound,
            "height {} exceeds AVL bound {}", set.root_height_plain(), bound);
    }
}
