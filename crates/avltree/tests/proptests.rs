//! Randomized differential testing of the AVL set against `BTreeSet`,
//! driven by a seeded [`SplitMix64`] stream (dependency-free stand-in for
//! a property-testing harness; failures reproduce from the fixed seeds).

use std::collections::BTreeSet;

use rtle_avltree::AvlSet;
use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::prng::SplitMix64;
use rtle_htm::PlainAccess;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn gen_op(rng: &mut SplitMix64, range: u64) -> Op {
    let k = rng.below(range);
    match rng.below(3) {
        0 => Op::Insert(k),
        1 => Op::Remove(k),
        _ => Op::Contains(k),
    }
}

fn gen_ops(rng: &mut SplitMix64, range: u64, max_len: u64) -> Vec<Op> {
    (0..rng.below(max_len)).map(|_| gen_op(rng, range)).collect()
}

/// Plain (sequential) execution matches BTreeSet exactly, and the AVL
/// structural invariants hold after every operation sequence.
#[test]
fn sequential_matches_btreeset() {
    let mut rng = SplitMix64::new(0x51e9_a411);
    for case in 0..128 {
        let ops = gen_ops(&mut rng, 64, 200);
        let set = AvlSet::with_key_range(64);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        for op in &ops {
            match op {
                Op::Insert(k) => assert_eq!(set.insert(&a, *k), model.insert(*k)),
                Op::Remove(k) => assert_eq!(set.remove(&a, *k), model.remove(k)),
                Op::Contains(k) => assert_eq!(set.contains(&a, *k), model.contains(k)),
            }
        }
        assert!(set.check_invariants_plain().is_ok(), "case {case}");
        assert_eq!(set.keys_plain(), model.iter().copied().collect::<Vec<_>>());
    }
}

/// Executing the same operation sequence through an elided lock
/// (single-threaded, so speculation always succeeds or falls back
/// deterministically) produces identical results to plain execution.
#[test]
fn elided_execution_equals_plain() {
    let mut rng = SplitMix64::new(0x51e9_a412);
    for case in 0..48 {
        let ops = gen_ops(&mut rng, 64, 120);
        let orecs = [1usize, 16, 256][(case % 3) as usize];
        let plain_set = AvlSet::with_key_range(64);
        let elided_set = AvlSet::with_key_range(64);
        let lock = ElidableLock::new(ElisionPolicy::FgTle { orecs });
        let a = PlainAccess;

        for op in &ops {
            match op {
                Op::Insert(k) => {
                    let expected = plain_set.insert(&a, *k);
                    let got = lock.execute(|ctx| elided_set.insert(ctx, *k));
                    assert_eq!(got, expected);
                }
                Op::Remove(k) => {
                    let expected = plain_set.remove(&a, *k);
                    let got = lock.execute(|ctx| elided_set.remove(ctx, *k));
                    assert_eq!(got, expected);
                }
                Op::Contains(k) => {
                    let expected = plain_set.contains(&a, *k);
                    let got = lock.execute(|ctx| elided_set.contains(ctx, *k));
                    assert_eq!(got, expected);
                }
            }
        }
        assert_eq!(plain_set.keys_plain(), elided_set.keys_plain());
        assert!(elided_set.check_invariants_plain().is_ok(), "case {case}");
    }
}

/// Tree height stays within the AVL bound 1.44·log2(n+2) for any
/// insertion order.
#[test]
fn height_within_avl_bound() {
    let mut rng = SplitMix64::new(0x51e9_a413);
    for _case in 0..64 {
        let mut keys = BTreeSet::new();
        let n_keys = 1 + rng.below(299);
        while (keys.len() as u64) < n_keys {
            keys.insert(rng.below(2048));
        }
        let set = AvlSet::with_key_range(2048);
        let a = PlainAccess;
        for k in &keys {
            set.insert(&a, *k);
        }
        assert!(set.check_invariants_plain().is_ok());
        for k in &keys {
            assert!(set.contains(&a, *k));
        }
        let n = keys.len() as f64;
        let bound = (1.4405 * (n + 2.0).log2()).ceil() as usize + 1;
        assert!(
            set.root_height_plain() as usize <= bound,
            "height {} exceeds AVL bound {}",
            set.root_height_plain(),
            bound
        );
    }
}
