//! Concurrent AVL-set tests: the same tree code running under every
//! synchronization method of the paper's evaluation, checked for
//! linearizable set semantics via operation-count accounting and
//! post-run structural invariants.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use rtle_avltree::{xorshift64, AvlSet};
use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::{PlainAccess, TxAccess};
use rtle_hytm::{Norec, RhNorec};

const KEY_RANGE: u64 = 256;
const THREADS: usize = 4;
const OPS: usize = 1_200;

#[derive(Clone, Copy)]
enum Op {
    Insert,
    Remove,
    Find,
}

/// Applies one set operation through an arbitrary barrier implementation;
/// returns the set-size delta it caused.
fn apply<A: TxAccess>(set: &AvlSet, a: &A, op: Op, key: u64) -> i64 {
    match op {
        Op::Insert => i64::from(set.insert(a, key)),
        Op::Remove => -i64::from(set.remove(a, key)),
        Op::Find => {
            let _ = set.contains(a, key);
            0
        }
    }
}

/// Drives the mixed workload from `THREADS` threads through `exec` (one
/// synchronized critical section per call) and returns the accumulated
/// size delta.
fn workload(exec: impl Fn(Op, u64) -> i64 + Sync) -> i64 {
    let balance = AtomicI64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let exec = &exec;
            let balance = &balance;
            scope.spawn(move || {
                let mut rng = 0x1234_5678_9abc_def0u64 ^ (t as u64 + 1);
                for _ in 0..OPS {
                    let r = xorshift64(&mut rng);
                    let key = (r >> 16) % KEY_RANGE;
                    let op = match r % 4 {
                        0 => Op::Insert,
                        1 => Op::Remove,
                        _ => Op::Find,
                    };
                    balance.fetch_add(exec(op, key), Ordering::Relaxed);
                }
            });
        }
    });
    balance.load(Ordering::Relaxed)
}

fn check(set: &AvlSet, balance: i64, label: &str) {
    set.check_invariants_plain()
        .unwrap_or_else(|e| panic!("{label}: invariants broken after concurrent run: {e}"));
    assert!(balance >= 0, "{label}: negative balance");
    assert_eq!(
        set.len_plain() as i64,
        balance,
        "{label}: lost or phantom updates"
    );
}

#[test]
fn avl_under_elision_policies() {
    for policy in [
        ElisionPolicy::LockOnly,
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 1 },
        ElisionPolicy::FgTle { orecs: 256 },
        ElisionPolicy::AdaptiveFgTle {
            initial_orecs: 64,
            max_orecs: 1024,
        },
    ] {
        let set = AvlSet::with_key_range(KEY_RANGE);
        let lock = ElidableLock::builder().policy(policy).build();
        let balance = workload(|op, key| lock.execute(|ctx| apply(&set, ctx, op, key)));
        check(&set, balance, &policy.label());
        assert_eq!(
            lock.stats().snapshot().ops as usize,
            THREADS * OPS,
            "{}",
            policy.label()
        );
    }
}

#[test]
fn avl_under_lazy_subscription_fg() {
    let retry = rtle_core::RetryPolicy {
        lazy_subscription: true,
        ..Default::default()
    };
    let set = AvlSet::with_key_range(KEY_RANGE);
    let lock = ElidableLock::builder()
        .policy(ElisionPolicy::FgTle { orecs: 256 })
        .retry(retry)
        .build();
    let balance = workload(|op, key| lock.execute(|ctx| apply(&set, ctx, op, key)));
    check(&set, balance, "FG-TLE(256)+lazy");
}

#[test]
fn avl_under_norec() {
    let set = AvlSet::with_key_range(KEY_RANGE);
    let tm = Norec::new();
    let balance = workload(|op, key| tm.execute(|ctx| apply(&set, ctx, op, key)));
    check(&set, balance, "NOrec");
    assert_eq!(tm.stats().snapshot().ops as usize, THREADS * OPS);
}

#[test]
fn avl_under_rhnorec() {
    let set = AvlSet::with_key_range(KEY_RANGE);
    let tm = RhNorec::new();
    let balance = workload(|op, key| tm.execute(|ctx| apply(&set, ctx, op, key)));
    check(&set, balance, "RHNOrec");
    assert_eq!(tm.stats().snapshot().ops as usize, THREADS * OPS);
}

#[test]
fn avl_htm_hostile_updater_with_finders() {
    // The Figure 12 corner case, as a correctness test: one thread whose
    // updates always abort HTM (forcing the lock), others doing finds.
    let lock = Arc::new(ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 4096 }).build());
    let set = Arc::new(AvlSet::with_key_range(KEY_RANGE));

    // Pre-fill half the range.
    {
        let a = PlainAccess;
        for k in (0..KEY_RANGE).step_by(2) {
            set.insert(&a, k);
        }
    }

    std::thread::scope(|scope| {
        // Hostile updater.
        {
            let (lock, set) = (Arc::clone(&lock), Arc::clone(&set));
            scope.spawn(move || {
                let mut rng = 7u64;
                for _ in 0..400 {
                    let key = xorshift64(&mut rng) % KEY_RANGE;
                    let ins = xorshift64(&mut rng).is_multiple_of(2);
                    lock.execute(|ctx| {
                        rtle_htm::htm_unfriendly_instruction();
                        if ins {
                            set.insert(ctx, key);
                        } else {
                            set.remove(ctx, key);
                        }
                    });
                }
            });
        }
        // Finders.
        for t in 0..3 {
            let (lock, set) = (Arc::clone(&lock), Arc::clone(&set));
            scope.spawn(move || {
                let mut rng = 100 + t as u64;
                for _ in 0..2_000 {
                    let key = xorshift64(&mut rng) % KEY_RANGE;
                    lock.execute(|ctx| {
                        let _ = set.contains(ctx, key);
                    });
                }
            });
        }
    });

    set.check_invariants_plain().unwrap();
    let snap = lock.stats().snapshot();
    assert!(
        snap.lock_acquisitions >= 400,
        "hostile updates must lock: {snap:?}"
    );
}
