//! Arena node of the transactional AVL tree.

use rtle_htm::TxCell;

/// Null link: slot 0 is never a real node.
pub(crate) const NIL: u32 = 0;

/// One tree node. Cache-line aligned so that distinct nodes never share a
/// conflict-detection line (the benchmark tree the paper uses has one node
/// per line too; the paper's bank benchmark likewise pads its counters).
///
/// The node's key is implicit: the node for key `k` lives at arena index
/// `k + 1`, and index order equals key order, so traversals compare
/// indices and never need to load a key field.
#[repr(align(64))]
#[derive(Debug)]
pub(crate) struct Node {
    pub left: TxCell<u32>,
    pub right: TxCell<u32>,
    /// AVL height of the subtree rooted here (1 for a leaf). 0 only while
    /// unlinked.
    pub height: TxCell<u32>,
}

impl Node {
    pub fn new() -> Self {
        Node {
            left: TxCell::new(NIL),
            right: TxCell::new(NIL),
            height: TxCell::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Node>(), 64);
        assert_eq!(std::mem::size_of::<Node>(), 64);
    }

    #[test]
    fn fresh_node_is_unlinked() {
        let n = Node::new();
        assert_eq!(n.left.read_plain(), NIL);
        assert_eq!(n.right.read_plain(), NIL);
        assert_eq!(n.height.read_plain(), 0);
    }
}
