//! The transactional AVL set.

use rtle_htm::{PlainAccess, TxAccess, TxCell};

use crate::node::{Node, NIL};

/// A set of keys in `[0, key_range)` backed by an internal AVL tree.
///
/// See the crate docs for the slot-per-key arena design. All operations
/// are generic over [`TxAccess`], so the same code runs uninstrumented on
/// an HTM fast path, instrumented on a refined-TLE slow path, under a
/// lock, or inside an STM transaction.
#[derive(Debug)]
pub struct AvlSet {
    /// `nodes[0]` is the unused null sentinel; key `k` owns `nodes[k + 1]`.
    nodes: Box<[Node]>,
    root: TxCell<u32>,
    key_range: u64,
}

impl AvlSet {
    /// Creates an empty set accepting keys in `[0, key_range)`.
    pub fn with_key_range(key_range: u64) -> Self {
        assert!(key_range >= 1, "empty key range");
        assert!(
            key_range < u32::MAX as u64 - 1,
            "key range too large for u32 links"
        );
        AvlSet {
            nodes: (0..=key_range).map(|_| Node::new()).collect(),
            root: TxCell::new(NIL),
            key_range,
        }
    }

    /// The accepted key range.
    pub fn key_range(&self) -> u64 {
        self.key_range
    }

    #[inline]
    fn idx(&self, key: u64) -> u32 {
        assert!(
            key < self.key_range,
            "key {key} out of range {}",
            self.key_range
        );
        (key + 1) as u32
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node {
        debug_assert_ne!(idx, NIL);
        &self.nodes[idx as usize]
    }

    #[inline]
    fn height<A: TxAccess + ?Sized>(&self, a: &A, idx: u32) -> u32 {
        if idx == NIL {
            0
        } else {
            a.load(&self.node(idx).height)
        }
    }

    /// Membership test. Reads only link words along the search path (keys
    /// are implied by slot indices).
    pub fn contains<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let target = self.idx(key);
        let mut cur = a.load(&self.root);
        while cur != NIL {
            if cur == target {
                return true;
            }
            let n = self.node(cur);
            cur = if target < cur {
                a.load(&n.left)
            } else {
                a.load(&n.right)
            };
        }
        false
    }

    /// Smallest key in the set, transactionally: walks the left spine,
    /// reading only link words. A composable consumer can pair this with
    /// `remove` and a retry-on-`None` to block for the next item in key
    /// order (a transactional priority queue).
    pub fn min<A: TxAccess + ?Sized>(&self, a: &A) -> Option<u64> {
        let mut cur = a.load(&self.root);
        if cur == NIL {
            return None;
        }
        loop {
            let l = a.load(&self.node(cur).left);
            if l == NIL {
                return Some(cur as u64 - 1);
            }
            cur = l;
        }
    }

    /// Largest key in the set, transactionally (right-spine walk).
    pub fn max<A: TxAccess + ?Sized>(&self, a: &A) -> Option<u64> {
        let mut cur = a.load(&self.root);
        if cur == NIL {
            return None;
        }
        loop {
            let r = a.load(&self.node(cur).right);
            if r == NIL {
                return Some(cur as u64 - 1);
            }
            cur = r;
        }
    }

    /// Inserts `key`; returns `false` if it was already present (in which
    /// case nothing is written — the read-only prefix that makes even
    /// "update" operations often commit on RW-TLE's slow path, §3).
    pub fn insert<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let target = self.idx(key);
        let root = a.load(&self.root);
        let (new_root, inserted) = self.insert_rec(a, root, target);
        if new_root != root {
            a.store(&self.root, new_root);
        }
        inserted
    }

    fn insert_rec<A: TxAccess + ?Sized>(&self, a: &A, cur: u32, target: u32) -> (u32, bool) {
        if cur == NIL {
            let n = self.node(target);
            a.store(&n.left, NIL);
            a.store(&n.right, NIL);
            a.store(&n.height, 1);
            return (target, true);
        }
        if target == cur {
            return (cur, false);
        }
        let n = self.node(cur);
        if target < cur {
            let l = a.load(&n.left);
            let (nl, ins) = self.insert_rec(a, l, target);
            if !ins {
                return (cur, false);
            }
            if nl != l {
                a.store(&n.left, nl);
            }
        } else {
            let r = a.load(&n.right);
            let (nr, ins) = self.insert_rec(a, r, target);
            if !ins {
                return (cur, false);
            }
            if nr != r {
                a.store(&n.right, nr);
            }
        }
        (self.rebalance(a, cur), true)
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove<A: TxAccess + ?Sized>(&self, a: &A, key: u64) -> bool {
        let target = self.idx(key);
        let root = a.load(&self.root);
        let (new_root, removed) = self.remove_rec(a, root, target);
        if removed && new_root != root {
            a.store(&self.root, new_root);
        }
        removed
    }

    fn remove_rec<A: TxAccess + ?Sized>(&self, a: &A, cur: u32, target: u32) -> (u32, bool) {
        if cur == NIL {
            return (NIL, false);
        }
        let n = self.node(cur);
        if target < cur {
            let l = a.load(&n.left);
            let (nl, rem) = self.remove_rec(a, l, target);
            if !rem {
                return (cur, false);
            }
            if nl != l {
                a.store(&n.left, nl);
            }
            return (self.rebalance(a, cur), true);
        }
        if target > cur {
            let r = a.load(&n.right);
            let (nr, rem) = self.remove_rec(a, r, target);
            if !rem {
                return (cur, false);
            }
            if nr != r {
                a.store(&n.right, nr);
            }
            return (self.rebalance(a, cur), true);
        }

        // cur == target: unlink this node.
        let l = a.load(&n.left);
        let r = a.load(&n.right);
        a.store(&n.height, 0); // mark unlinked
        if l == NIL {
            return (r, true);
        }
        if r == NIL {
            return (l, true);
        }
        // Two children: splice the in-order successor (min of the right
        // subtree) into this position. The key is bound to the slot, so
        // the successor node itself is relinked (no key copying).
        let (nr, succ) = self.unlink_min(a, r);
        let s = self.node(succ);
        a.store(&s.left, l);
        a.store(&s.right, nr);
        (self.rebalance(a, succ), true)
    }

    /// Unlinks the minimum node of the subtree rooted at `cur`; returns the
    /// (rebalanced) remaining subtree and the unlinked node's index.
    fn unlink_min<A: TxAccess + ?Sized>(&self, a: &A, cur: u32) -> (u32, u32) {
        let n = self.node(cur);
        let l = a.load(&n.left);
        if l == NIL {
            return (a.load(&n.right), cur);
        }
        let (nl, min) = self.unlink_min(a, l);
        if nl != l {
            a.store(&n.left, nl);
        }
        (self.rebalance(a, cur), min)
    }

    /// Recomputes `cur`'s height and applies at most two rotations,
    /// returning the subtree's (possibly new) root.
    fn rebalance<A: TxAccess + ?Sized>(&self, a: &A, cur: u32) -> u32 {
        let n = self.node(cur);
        let lh = self.height(a, a.load(&n.left));
        let rh = self.height(a, a.load(&n.right));

        if lh > rh + 1 {
            // Left-heavy. For the zig-zag case rotate the child first.
            let l = a.load(&n.left);
            let ln = self.node(l);
            if self.height(a, a.load(&ln.left)) < self.height(a, a.load(&ln.right)) {
                a.store(&n.left, self.rotate_left(a, l));
            }
            return self.rotate_right(a, cur);
        }
        if rh > lh + 1 {
            let r = a.load(&n.right);
            let rn = self.node(r);
            if self.height(a, a.load(&rn.right)) < self.height(a, a.load(&rn.left)) {
                a.store(&n.right, self.rotate_right(a, r));
            }
            return self.rotate_left(a, cur);
        }

        self.set_height(a, cur, lh.max(rh) + 1);
        cur
    }

    fn rotate_right<A: TxAccess + ?Sized>(&self, a: &A, cur: u32) -> u32 {
        let n = self.node(cur);
        let l = a.load(&n.left);
        debug_assert_ne!(l, NIL);
        let ln = self.node(l);
        let lr = a.load(&ln.right);
        a.store(&n.left, lr);
        a.store(&ln.right, cur);
        self.refresh_height(a, cur);
        self.refresh_height(a, l);
        l
    }

    fn rotate_left<A: TxAccess + ?Sized>(&self, a: &A, cur: u32) -> u32 {
        let n = self.node(cur);
        let r = a.load(&n.right);
        debug_assert_ne!(r, NIL);
        let rn = self.node(r);
        let rl = a.load(&rn.left);
        a.store(&n.right, rl);
        a.store(&rn.left, cur);
        self.refresh_height(a, cur);
        self.refresh_height(a, r);
        r
    }

    fn refresh_height<A: TxAccess + ?Sized>(&self, a: &A, cur: u32) {
        let n = self.node(cur);
        let h = self
            .height(a, a.load(&n.left))
            .max(self.height(a, a.load(&n.right)))
            + 1;
        self.set_height(a, cur, h);
    }

    /// Writes the height only when it changed, sparing a (potentially
    /// fenced / orec-stamped) store — the same "avoid writing the same
    /// value" optimization the paper applies to orecs (§4.2).
    fn set_height<A: TxAccess + ?Sized>(&self, a: &A, cur: u32, h: u32) {
        let n = self.node(cur);
        if a.load(&n.height) != h {
            a.store(&n.height, h);
        }
    }

    // ------------------------------------------------------------------
    // Quiescent (non-transactional) inspection helpers.
    // ------------------------------------------------------------------

    /// Number of keys currently in the set. O(n); quiescent use only.
    pub fn len_plain(&self) -> usize {
        let mut count = 0;
        self.walk_plain(self.root.read_plain(), &mut |_| count += 1);
        count
    }

    /// All keys in ascending order. Quiescent use only.
    pub fn keys_plain(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        self.walk_plain(self.root.read_plain(), &mut |idx| keys.push(idx as u64 - 1));
        keys
    }

    fn walk_plain(&self, cur: u32, f: &mut impl FnMut(u32)) {
        if cur == NIL {
            return;
        }
        let a = PlainAccess;
        let n = self.node(cur);
        self.walk_plain(a.load(&n.left), f);
        f(cur);
        self.walk_plain(a.load(&n.right), f);
    }

    /// Base cache-line index of the node arena: the node for key `k` lives
    /// entirely on line `node_line_base() + k + 1` (nodes are 64-byte
    /// sized and aligned). Used by the simulator's trace generator to name
    /// node lines without touching them.
    pub fn node_line_base(&self) -> u64 {
        (self.nodes.as_ptr() as usize >> 6) as u64
    }

    /// Cache line of the root link cell (outside the node arena). Used by
    /// the simulator to translate recorded addresses into stable,
    /// address-independent line ids.
    pub fn root_cell_line(&self) -> u64 {
        (self.root.addr() >> 6) as u64
    }

    /// Stored height of the root (0 when empty). Quiescent use only.
    pub fn root_height_plain(&self) -> u32 {
        let r = self.root.read_plain();
        if r == NIL {
            0
        } else {
            self.node(r).height.read_plain()
        }
    }

    /// Verifies the BST ordering and AVL height/balance invariants over the
    /// whole tree. Quiescent use only.
    pub fn check_invariants_plain(&self) -> Result<(), String> {
        self.check_rec(self.root.read_plain(), NIL, u32::MAX)
            .map(|_| ())
    }

    /// Returns the verified height of the subtree.
    fn check_rec(&self, cur: u32, lo: u32, hi: u32) -> Result<u32, String> {
        if cur == NIL {
            return Ok(0);
        }
        if !(lo < cur && cur < hi) {
            return Err(format!("BST violation at node {cur}: not in ({lo}, {hi})"));
        }
        let a = PlainAccess;
        let n = self.node(cur);
        let lh = self.check_rec(a.load(&n.left), lo, cur)?;
        let rh = self.check_rec(a.load(&n.right), cur, hi)?;
        let h = a.load(&n.height);
        if h != lh.max(rh) + 1 {
            return Err(format!(
                "height violation at {cur}: stored {h}, actual {}",
                lh.max(rh) + 1
            ));
        }
        if lh.abs_diff(rh) > 1 {
            return Err(format!("balance violation at {cur}: |{lh} - {rh}| > 1"));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xorshift64;
    use std::collections::BTreeSet;

    #[test]
    fn basic_insert_contains_remove() {
        let s = AvlSet::with_key_range(100);
        let a = PlainAccess;
        assert!(!s.contains(&a, 5));
        assert!(s.insert(&a, 5));
        assert!(s.contains(&a, 5));
        assert!(!s.insert(&a, 5));
        assert!(s.remove(&a, 5));
        assert!(!s.contains(&a, 5));
        assert!(!s.remove(&a, 5));
        assert_eq!(s.len_plain(), 0);
        s.check_invariants_plain().unwrap();
    }

    #[test]
    fn ascending_insertion_stays_balanced() {
        let s = AvlSet::with_key_range(1024);
        let a = PlainAccess;
        for k in 0..1024 {
            assert!(s.insert(&a, k));
        }
        s.check_invariants_plain().unwrap();
        assert_eq!(s.len_plain(), 1024);
        // A balanced tree of 1024 nodes has height ≤ 1.44·log2(1025) ≈ 14.
        let h = s.nodes[s.root.read_plain() as usize].height.read_plain();
        assert!(h <= 14, "height {h} too large for AVL");
        assert_eq!(s.keys_plain(), (0..1024).collect::<Vec<_>>());
    }

    #[test]
    fn descending_insertion_stays_balanced() {
        let s = AvlSet::with_key_range(512);
        let a = PlainAccess;
        for k in (0..512).rev() {
            assert!(s.insert(&a, k));
        }
        s.check_invariants_plain().unwrap();
        assert_eq!(s.keys_plain(), (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn removal_rebalances() {
        let s = AvlSet::with_key_range(256);
        let a = PlainAccess;
        for k in 0..256 {
            s.insert(&a, k);
        }
        // Remove one half, skewing the tree repeatedly.
        for k in 0..128 {
            assert!(s.remove(&a, k), "remove {k}");
            s.check_invariants_plain()
                .unwrap_or_else(|e| panic!("after removing {k}: {e}"));
        }
        assert_eq!(s.keys_plain(), (128..256).collect::<Vec<_>>());
    }

    #[test]
    fn two_child_removal_uses_successor() {
        let s = AvlSet::with_key_range(16);
        let a = PlainAccess;
        for k in [8, 4, 12, 2, 6, 10, 14] {
            s.insert(&a, k);
        }
        // 8 has two children; its successor is 10.
        assert!(s.remove(&a, 8));
        s.check_invariants_plain().unwrap();
        assert_eq!(s.keys_plain(), vec![2, 4, 6, 10, 12, 14]);
    }

    #[test]
    fn differential_random_ops_vs_btreeset() {
        let s = AvlSet::with_key_range(512);
        let mut model = BTreeSet::new();
        let a = PlainAccess;
        let mut rng = 0xdead_beef_u64;
        for i in 0..20_000 {
            let r = xorshift64(&mut rng);
            let key = (r >> 8) % 512;
            match r % 3 {
                0 => assert_eq!(s.insert(&a, key), model.insert(key), "insert {key} @ {i}"),
                1 => assert_eq!(s.remove(&a, key), model.remove(&key), "remove {key} @ {i}"),
                _ => assert_eq!(
                    s.contains(&a, key),
                    model.contains(&key),
                    "find {key} @ {i}"
                ),
            }
            if i % 1000 == 0 {
                s.check_invariants_plain().unwrap();
            }
        }
        s.check_invariants_plain().unwrap();
        assert_eq!(s.keys_plain(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        let s = AvlSet::with_key_range(8);
        s.contains(&PlainAccess, 8);
    }

    #[test]
    #[should_panic(expected = "empty key range")]
    fn zero_range_rejected() {
        let _ = AvlSet::with_key_range(0);
    }
}
