#![warn(missing_docs)]
//! # rtle-avltree: the paper's micro-benchmark data structure
//!
//! An internal, balanced (AVL) binary search tree implementing a set, in
//! the style of the OpenSolaris `avl` module the paper bases its benchmark
//! on (§6.2). All node fields live in [`rtle_htm::TxCell`]s and every
//! access goes through a generic [`rtle_htm::TxAccess`] barrier, so the
//! *same* tree code runs under every synchronization method in the
//! evaluation: plain lock, TLE, RW-TLE, FG-TLE(x), NOrec and RHNOrec.
//!
//! ## Memory layout
//!
//! The benchmark uses a bounded key range (the paper uses 8192 and 65536),
//! so the tree is arena-backed with **one slot per key**: the node for key
//! `k` permanently occupies arena slot `k + 1` (slot 0 is the null
//! sentinel). Insertion links the slot into the tree; removal unlinks it.
//! This makes the operations allocation-free — the transactional analogue
//! of the paper's "transaction-pure" malloc annotations — and each node is
//! cache-line aligned so the conflict footprint matches a pointer-based
//! tree, one node per line.
//!
//! ```
//! use rtle_avltree::AvlSet;
//! use rtle_htm::PlainAccess;
//!
//! let set = AvlSet::with_key_range(1024);
//! let a = PlainAccess;
//! assert!(set.insert(&a, 42));
//! assert!(!set.insert(&a, 42));
//! assert!(set.contains(&a, 42));
//! assert!(set.remove(&a, 42));
//! assert!(!set.contains(&a, 42));
//! ```

mod node;
mod set;

pub use set::AvlSet;

/// Cheap xorshift for seeding benchmark sets deterministically.
pub fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_moves() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(xorshift64(&mut a), xorshift64(&mut b));
        let first = a;
        assert_ne!(xorshift64(&mut a), first);
    }
}
