//! Live-telemetry plane integration tests.
//!
//! * A golden-file test pinning the Prometheus text exposition: the
//!   registry is fed hand-built deterministic sources (no wall-clock
//!   values appear in the text format by design), and the rendered page
//!   is compared against `tests/golden/live_metrics.prom`. Regenerate
//!   after an intentional format change with:
//!
//!   ```sh
//!   BLESS=1 cargo test -p rtle-obs --test live_scrape
//!   ```
//!
//! * A scrape-under-load test: 8 writers hammer a registered recorder
//!   while the main thread scrapes continuously; every sample must be
//!   present at the end and counters must read monotonically — scraping
//!   is non-destructive and never perturbs writers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use rtle_obs::{
    AttemptEvent, Histogram, Json, LiveServer, LiveSource, MetricsRegistry, ObsConfig, Outcome,
    PathKind, Recorder, SourceSnapshot, WindowCounts, WindowSnapshot,
};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/live_metrics.prom")
}

/// A fully deterministic window: fixed index, fixed counts, a latency
/// histogram built from fixed samples (bucket floors are deterministic).
fn fixed_window(index: u64, ops: u64) -> WindowSnapshot {
    let mut counts = WindowCounts::default();
    counts.commits[PathKind::FastHtm as usize] = ops * 7 / 10;
    counts.commits[PathKind::SlowHtm as usize] = ops * 2 / 10;
    counts.commits[PathKind::Lock as usize] = ops - counts.commits[0] - counts.commits[1];
    counts.aborts[1] = ops / 5; // index 1 = AbortConflict
    let h = Histogram::new();
    for i in 0..ops {
        h.record(500 + i * 37);
    }
    counts.latency = h.snapshot();
    WindowSnapshot {
        index,
        // Wall-clock-ish fields: deliberately nonzero here to prove the
        // text exposition never includes them.
        start_ns: 123_456_789 + index,
        len_ns: 100_000_000,
        counts,
    }
}

struct FixedSource {
    kind: &'static str,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    windows: Vec<WindowSnapshot>,
}

impl LiveSource for FixedSource {
    fn live_snapshot(&self) -> SourceSnapshot {
        SourceSnapshot {
            kind: self.kind,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            windows: self.windows.clone(),
            labels: Vec::new(),
        }
    }
}

fn deterministic_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    // Two sources sharing metric names: the golden pins that `# TYPE` is
    // emitted once per metric name, not once per source.
    registry.register(
        "single_lock",
        Arc::new(FixedSource {
            kind: "recorder",
            counters: vec![
                ("commits_fast_htm".into(), 900),
                ("commits_lock".into(), 100),
                ("aborts_conflict".into(), 40),
            ],
            gauges: vec![("cs_latency_p99".into(), 1536.0)],
            windows: vec![fixed_window(3, 100), fixed_window(4, 80)],
        }),
    );
    registry.register(
        "sharded16",
        Arc::new(FixedSource {
            kind: "shard_map",
            counters: vec![("commits_fast_htm".into(), 1800), ("shards".into(), 16)],
            gauges: vec![
                ("load_imbalance".into(), 1.25),
                // Exercises label escaping and name sanitization paths.
                ("lock_fallback_rate".into(), 0.0625),
            ],
            windows: Vec::new(),
        }),
    );
    registry.register(
        // A name needing sanitization ends up as a clean label value and
        // a legal metric suffix.
        "dog\"with\\quirks",
        Arc::new(FixedSource {
            kind: "watchdog",
            counters: vec![("collapse_fired_total".into(), 1)],
            gauges: vec![("armed".into(), 1.0)],
            windows: Vec::new(),
        }),
    );
    registry
}

#[test]
fn prometheus_text_matches_the_golden_file() {
    let text = deterministic_registry().to_prometheus();
    // The exposition must carry no wall-clock values: scrape time and
    // window start/length are epoch-relative runtime facts, not metrics.
    assert!(!text.contains("start_ns"), "{text}");
    assert!(!text.contains("taken_at"), "{text}");
    assert!(!text.contains("123456"), "window start leaked:\n{text}");

    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with BLESS=1", path.display())
    });
    assert_eq!(
        text, expected,
        "live_metrics.prom drifted; run `BLESS=1 cargo test -p rtle-obs --test live_scrape` \
         and review the diff"
    );
}

#[test]
fn golden_page_is_also_what_the_http_endpoint_serves() {
    use std::io::{Read as _, Write as _};

    let registry = Arc::new(deterministic_registry());
    let server = LiveServer::start(Arc::clone(&registry), "127.0.0.1:0").unwrap();
    let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
    write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = String::new();
    conn.read_to_string(&mut resp).unwrap();
    let body = resp.split_once("\r\n\r\n").expect("headers + body").1;
    assert_eq!(body, registry.to_prometheus());
}

#[test]
fn eight_writers_scrape_under_load_loses_nothing_and_never_blocks() {
    const WRITERS: u64 = 8;
    const OPS_PER_WRITER: u64 = 40_000;

    // Default `sample_shift` of 0 records every attempt: the test
    // counts exact totals.
    let rec = Arc::new(Recorder::new(ObsConfig::default()));
    let registry = Arc::new(MetricsRegistry::new());
    registry.register("hot", Arc::clone(&rec) as Arc<dyn LiveSource>);

    let commits_of = |scrape: &[(String, SourceSnapshot)]| -> u64 {
        scrape[0]
            .1
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("commits_"))
            .map(|(_, v)| v)
            .sum()
    };

    let done = Arc::new(AtomicBool::new(false));
    let scraper = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut scrapes = 0u64;
            while !done.load(Relaxed) {
                let scrape = registry.scrape();
                let now = commits_of(&scrape);
                assert!(
                    now >= last,
                    "counters must read monotonically under load ({now} < {last})"
                );
                last = now;
                // The text renderers must also hold up mid-load.
                let _ = rtle_obs::registry::render_prometheus(&scrape);
                scrapes += 1;
            }
            scrapes
        })
    };

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    rec.record_attempt(
                        t,
                        AttemptEvent {
                            path: PathKind::FastHtm,
                            outcome: Outcome::Commit,
                            attempt: 0,
                            latency: i & 0xffff,
                        },
                    );
                }
            });
        }
    });
    done.store(true, Relaxed);
    let scrapes = scraper.join().expect("scraper never panics");
    assert!(scrapes > 0, "the scraper must have run during the load");

    // Every sample is present: scraping drained nothing.
    let final_scrape = registry.scrape();
    assert_eq!(
        commits_of(&final_scrape),
        WRITERS * OPS_PER_WRITER,
        "no lost samples after {scrapes} concurrent scrapes"
    );
    let json = rtle_obs::registry::render_json(&final_scrape, 0);
    let back = rtle_obs::parse_json(&json.to_string_pretty()).unwrap();
    let counters = back
        .get("sources")
        .and_then(Json::as_arr)
        .and_then(|s| s[0].get("counters"))
        .expect("counters object");
    assert_eq!(
        counters.get("commits_fast_htm").and_then(Json::as_u64),
        Some(WRITERS * OPS_PER_WRITER)
    );
}
