//! Stress test for the windowed-telemetry rotation protocol: 8 writers
//! hammer a [`WindowCollector`] while a rotator flips the epoch as fast
//! as it can. The invariants under test are the module's core claims:
//!
//! * **no lost samples** — once writers quiesce and the collector is
//!   rotated twice more (draining both phase buffers), the sum over all
//!   closed windows equals exactly what the writers recorded;
//! * **merged == sum of stripes** — every rotation's merged window is
//!   the field-wise sum of its per-stripe drains.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;

use rtle_obs::window::WindowCounts;
use rtle_obs::{AttemptEvent, Outcome, PathKind, WindowCollector};

const WRITERS: u64 = 8;
const OPS_PER_WRITER: u64 = 40_000;

#[test]
#[cfg_attr(miri, ignore = "timing-sensitive 8-writer stress: rotator paces on wall-clock sleeps")]
fn no_samples_lost_across_epoch_flips() {
    let c = Arc::new(WindowCollector::new(1, 1 << 16, WRITERS as usize));
    let stop = Arc::new(AtomicBool::new(false));

    // The rotator: flip every millisecond-ish tick (throttled so the
    // bounded series can provably retain every window), checking the
    // merged-equals-stripe-sum invariant on every single rotation.
    let rotator = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rotations = 0u64;
            while !stop.load(Relaxed) {
                let rot = c.rotate();
                let mut sum = WindowCounts::default();
                for s in &rot.per_stripe {
                    sum.merge(s);
                }
                assert_eq!(rot.merged.counts, sum, "rotation {rotations}");
                rotations += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            rotations
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    let ev = if i % 5 == 4 {
                        AttemptEvent {
                            path: PathKind::SlowHtm,
                            outcome: Outcome::AbortExplicit(4),
                            attempt: 1,
                            latency: 0,
                        }
                    } else {
                        AttemptEvent {
                            path: PathKind::FastHtm,
                            outcome: Outcome::Commit,
                            attempt: 0,
                            latency: i % 512,
                        }
                    };
                    c.record_attempt(t, ev);
                    c.record_latency(t, 100 + (i * 7) % 10_000);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }

    stop.store(true, Relaxed);
    let rotations = rotator.join().unwrap();
    // Writers have quiesced; two more rotations drain both phase
    // buffers, collecting any straggler that was attributed late.
    c.rotate();
    c.rotate();

    let series = c.series();
    assert!(
        c.series_dropped() == 0,
        "series cap must hold every window for this accounting"
    );
    let mut all = WindowCounts::default();
    for w in &series {
        all.merge(&w.counts);
    }
    let total_ops = WRITERS * OPS_PER_WRITER;
    assert_eq!(
        all.latency.count, total_ops,
        "lost or duplicated latency samples across {rotations} live rotations"
    );
    assert_eq!(all.commits, [total_ops / 5 * 4, 0, 0], "lost commits");
    assert_eq!(all.aborts[3], total_ops / 5, "lost explicit aborts");
    assert_eq!(all.explicit[4], total_ops / 5, "lost explicit-code counts");
    assert!(
        series.iter().map(|w| w.ops()).max().unwrap() < total_ops,
        "sanity: the work actually spread across windows"
    );

    // Window indexes are the rotation epochs, strictly consecutive.
    for (i, pair) in series.windows(2).enumerate() {
        assert_eq!(pair[1].index, pair[0].index + 1, "gap after window {i}");
    }
}

#[test]
fn merged_window_equals_sum_of_per_thread_windows() {
    // Deterministic single-threaded shape check: distinct per-thread
    // loads land in distinct stripes (direct key striping) and the
    // merged window is exactly their sum.
    let c = WindowCollector::new(1_000, 16, 8);
    for t in 0..WRITERS {
        for i in 0..(t + 1) * 10 {
            c.record_attempt(
                t,
                AttemptEvent {
                    path: PathKind::FastHtm,
                    outcome: Outcome::Commit,
                    attempt: 0,
                    latency: i,
                },
            );
            c.record_latency(t, 1_000 * (t + 1));
        }
    }
    let rot = c.rotate();
    let mut sum = WindowCounts::default();
    for (t, stripe) in rot.per_stripe.iter().enumerate() {
        assert_eq!(
            stripe.commits[0],
            (t as u64 + 1) * 10,
            "stripe {t} holds exactly its thread's commits"
        );
        assert_eq!(stripe.latency.count, (t as u64 + 1) * 10);
        sum.merge(stripe);
    }
    assert_eq!(rot.merged.counts, sum);
    assert_eq!(
        rot.merged.ops(),
        (1..=WRITERS).map(|t| t * 10).sum::<u64>()
    );
}
