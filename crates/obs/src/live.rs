//! A zero-dependency scrape endpoint over [`MetricsRegistry`].
//!
//! The repo's rule is "no external crates", so there is no hyper, no
//! tokio, no tiny-http — just a `std::net::TcpListener`, one accept
//! thread, and enough HTTP/1.1 to satisfy Prometheus and `curl`:
//! parse the request line of a `GET`, discard headers, answer with
//! `Content-Length` and `Connection: close`. That subset is all a
//! scraper needs, and hand-rolling it keeps the endpoint auditable by
//! the same rtle-check passes as the rest of the stack.
//!
//! Serving is deliberately decoupled from recording: the accept thread
//! renders from the registry's non-destructive scrape path, so a slow
//! or hostile client can delay *its own response*, never a writer.
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4)
//! * `GET /json`    — schema-versioned `live-registry` JSON
//! * anything else  — 404 (405 for non-GET methods)
//!
//! The listener runs nonblocking with a shutdown flag so dropping the
//! [`LiveServer`] (or calling [`LiveServer::shutdown`]) reliably joins
//! the thread instead of leaking it into the test harness.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// How long the accept loop sleeps when no connection is pending.
const IDLE_POLL: Duration = Duration::from_millis(10);

/// Per-connection I/O budget; a stalled client is cut off, not waited
/// on.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request head we will buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 8192;

/// A running scrape endpoint. Shut down explicitly or on drop.
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread serving `registry`.
    pub fn start(
        registry: Arc<MetricsRegistry>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<LiveServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rtle-live".into())
            .spawn(move || accept_loop(listener, registry, thread_stop))?;
        Ok(LiveServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address — read this after starting on port 0.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer").field("addr", &self.addr).finish()
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: scrapes are small, periodic, and the
                // registry read path is non-blocking for writers, so a
                // second thread per connection buys nothing.
                let _ = serve_connection(stream, &registry);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_POLL);
            }
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    stream.set_nonblocking(false)?;

    let head = match read_request_head(&mut stream) {
        Ok(head) => head,
        Err(_) => {
            return write_response(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
        }
    };
    let (method, path) = match parse_request_line(&head) {
        Some(pair) => pair,
        None => {
            return write_response(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
        }
    };
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let body = registry.to_prometheus();
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/json" => {
            let body = registry.to_json().to_string_pretty();
            write_response(&mut stream, "200 OK", "application/json", &body)
        }
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "routes: /metrics /json\n",
        ),
    }
}

/// Reads until the blank line ending the request head (we never need a
/// body for GET). Bounded by [`MAX_REQUEST_BYTES`].
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    String::from_utf8(buf)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 request"))
}

/// Extracts `(method, path)` from `GET /metrics HTTP/1.1`, dropping
/// any query string.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{LiveSource, SourceSnapshot};

    struct One;
    impl LiveSource for One {
        fn live_snapshot(&self) -> SourceSnapshot {
            SourceSnapshot {
                kind: "test",
                counters: vec![("ops".into(), 42)],
                gauges: Vec::new(),
                windows: Vec::new(),
                labels: Vec::new(),
            }
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let split = text.find("\r\n\r\n").expect("head/body split");
        (text[..split].to_string(), text[split + 4..].to_string())
    }

    fn server() -> LiveServer {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register("lock", Arc::new(One));
        LiveServer::start(registry, "127.0.0.1:0").expect("bind ephemeral port")
    }

    #[test]
    fn serves_prometheus_and_json() {
        let srv = server();
        let (head, body) = get(srv.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("rtle_ops{source=\"lock\",kind=\"test\"} 42"));

        let (head, body) = get(srv.addr(), "/json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let doc = crate::json::parse(&body).expect("valid JSON body");
        assert_eq!(
            doc.get("kind").and_then(crate::json::Json::as_str),
            Some("live-registry")
        );
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let srv = server();
        let (head, _) = get(srv.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let mut stream = TcpStream::connect(srv.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"), "{text}");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let mut srv = server();
        let addr = srv.addr();
        srv.shutdown();
        // After shutdown the listener is gone; connecting must fail
        // (give the OS a beat to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err(), "port should be released");
    }
}
