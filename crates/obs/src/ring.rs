//! A striped, lock-free, bounded ring of packed events.
//!
//! The hot path pushes one `u64` per sampled attempt; the ring must never
//! block, allocate, or serialize writers. Each *stripe* is an independent
//! power-of-two circular buffer with its own wrapping cursor; a writer
//! picks a stripe by hashing its thread id, does one `fetch_add` to claim
//! a slot and one `Relaxed` store to publish the packed word. Old events
//! are overwritten — the ring keeps the most recent `capacity` events per
//! stripe, which is the right shape for "what just happened" diagnostics.
//!
//! Reads are racy by design: a drain sees whatever packed words are
//! published at that instant. Because an event is a single word with a
//! valid bit ([`crate::event::AttemptEvent::pack`]), a racy read yields
//! either a complete event or an empty slot, never a torn one.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::event::AttemptEvent;

/// Line-aligned so adjacent stripes' cursors never false-share: each
/// sampled push does a `fetch_add` on its stripe's cursor, and stripes
/// exist precisely so writers on different threads do not contend.
#[repr(align(64))]
struct Stripe {
    cursor: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl Stripe {
    fn new(capacity: usize) -> Stripe {
        Stripe {
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn push(&self, word: u64) {
        let at = self.cursor.fetch_add(1, Relaxed) as usize & (self.slots.len() - 1);
        self.slots[at].store(word, Relaxed);
    }
}

/// A bounded multi-writer event ring. See the module docs.
pub struct EventRing {
    stripes: Box<[Stripe]>,
}

impl EventRing {
    /// A ring with `stripes` independent buffers of `capacity` slots
    /// each. Both are rounded up to powers of two (minimum 1 stripe,
    /// 8 slots).
    pub fn new(stripes: usize, capacity: usize) -> EventRing {
        let stripes = stripes.max(1).next_power_of_two();
        let capacity = capacity.max(8).next_power_of_two();
        EventRing {
            stripes: (0..stripes).map(|_| Stripe::new(capacity)).collect(),
        }
    }

    /// Total slots across all stripes.
    pub fn capacity(&self) -> usize {
        self.stripes.len() * self.stripes[0].slots.len()
    }

    /// Publishes a packed event word to the stripe for `thread_key`
    /// (any per-thread value; callers hash a thread id once and reuse it).
    #[inline]
    pub fn push(&self, thread_key: u64, word: u64) {
        let s = rtle_htm::hash::wang_mix64(thread_key) as usize & (self.stripes.len() - 1);
        self.stripes[s].push(word);
    }

    /// Number of events published so far (monotone; includes
    /// overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.stripes.iter().map(|s| s.cursor.load(Relaxed)).sum()
    }

    /// Collects the currently resident events, oldest-first within each
    /// stripe. Racy with concurrent pushes (see module docs).
    pub fn drain(&self) -> Vec<AttemptEvent> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let n = stripe.slots.len();
            let cur = stripe.cursor.load(Relaxed) as usize;
            // Start at the oldest resident slot: `cur` is the next write
            // position, so `cur..cur+n` (mod n) is oldest..newest once the
            // stripe has wrapped, and skipping empty slots handles the
            // pre-wrap prefix.
            for i in 0..n {
                let word = stripe.slots[(cur + i) & (n - 1)].load(Relaxed);
                if let Some(ev) = AttemptEvent::unpack(word) {
                    out.push(ev);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Outcome, PathKind};
    use std::sync::Arc;

    fn ev(attempt: u8, latency: u64) -> AttemptEvent {
        AttemptEvent {
            path: PathKind::FastHtm,
            outcome: Outcome::Commit,
            attempt,
            latency,
        }
    }

    #[test]
    fn keeps_most_recent_when_overflowing() {
        let ring = EventRing::new(1, 8);
        for i in 0..20u64 {
            ring.push(0, ev(0, i).pack());
        }
        let events = ring.drain();
        assert_eq!(events.len(), 8);
        let latencies: Vec<u64> = events.iter().map(|e| e.latency).collect();
        assert_eq!(latencies, (12..20).collect::<Vec<_>>(), "oldest-first, most recent kept");
        assert_eq!(ring.pushed(), 20);
    }

    #[test]
    fn partial_fill_returns_only_written() {
        let ring = EventRing::new(2, 16);
        ring.push(1, ev(3, 77).pack());
        ring.push(2, ev(5, 99).pack());
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.latency == 77 && e.attempt == 3));
        assert!(events.iter().any(|e| e.latency == 99 && e.attempt == 5));
    }

    #[test]
    fn rounds_capacity_to_power_of_two() {
        let ring = EventRing::new(3, 100);
        assert_eq!(ring.capacity(), 4 * 128);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        let ring = Arc::new(EventRing::new(4, 64));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Encode thread & sequence so any torn word would
                        // decode to an impossible combination.
                        ring.push(t, ev((t as u8) * 8, i).pack());
                    }
                })
            })
            .collect();
        // Drain concurrently while writers run.
        for _ in 0..50 {
            for e in ring.drain() {
                assert!(e.attempt % 8 == 0 && e.attempt < 64);
                assert!(e.latency < 5_000);
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 8 * 5_000);
        assert!(!ring.drain().is_empty());
    }
}
