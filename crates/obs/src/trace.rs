//! Causal tracing: per-thread lock-free span buffers and Chrome
//! `trace_event` export.
//!
//! Counters (the rest of this crate) answer *how often*; this module
//! answers *when* and *in what order* — which lock-holder span a burst of
//! slow-path commits overlapped, when the write flag went up, where the
//! adaptive policy resized. Events are recorded into striped bounded
//! rings (the [`crate::ring::EventRing`] shape) and exported as Chrome
//! `trace_event` JSON that loads directly in Perfetto.
//!
//! A trace record needs more bits than an attempt event (timestamp +
//! duration + argument), so it packs into **two** `u64` words instead of
//! one. Torn reads are detected with a 7-bit *generation tag* stored in
//! both words: a writer claims a slot, writes word 1, then word 0 (which
//! carries the valid bit); a racy drain accepts a pair only when both
//! tags match. A tag collision needs the same slot to be mid-overwrite
//! exactly 128 generations apart — acceptable for a diagnostics buffer,
//! and impossible once writers have quiesced.
//!
//! ```text
//! word 0: bit 63     valid
//!         bits 62..56 generation tag (7)
//!         bits 55..50 kind (6)
//!         bits 49..40 thread id (10, saturating)
//!         bits 39..0  duration (40, saturating)
//! word 1: bits 63..57 generation tag (7)
//!         bits 56..16 timestamp (41, saturating — ns or sim cycles)
//!         bits 15..0  argument (16, saturating)
//! ```
//!
//! With the `trace` cargo feature **off**, [`Tracer`] is a zero-sized
//! type and every recording method is an empty `#[inline]` stub — the
//! fast path pays nothing, which `crates/bench/tests/overhead.rs`
//! asserts. The record/export *data* types below are never gated: they
//! manipulate plain values and let tools parse traces in any build.

use crate::json::Json;

/// What a trace record describes. Spans have a duration; instants are
/// points in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Committed fast-path HTM attempt (span).
    FastCommit,
    /// Aborted fast-path HTM attempt; `arg` = abort kind code (span).
    FastAbort,
    /// Committed slow-path attempt while a lock was held (span).
    SlowCommit,
    /// Aborted slow-path attempt; `arg` = explicit abort code (span).
    SlowAbort,
    /// Critical section run while holding the fallback lock (span).
    LockHeld,
    /// RW-TLE lock holder raised the write flag (instant).
    WriteFlagSet,
    /// FG-TLE lock holder released its orecs by bumping the epoch;
    /// `arg` = the epoch the holder ran at (instant).
    EpochBump,
    /// Adaptive policy halved the active orec range; `arg` = new size.
    AdaptShrink,
    /// Adaptive policy doubled the active orec range; `arg` = new size.
    AdaptGrow,
    /// Adaptive policy disabled the instrumented path; `arg` = new size.
    AdaptCollapse,
    /// Adaptive policy re-enabled the instrumented path; `arg` = size.
    AdaptReenable,
}

/// Every kind, in `code()` order (handy for exhaustive tests).
pub const TRACE_KINDS: [TraceKind; 11] = [
    TraceKind::FastCommit,
    TraceKind::FastAbort,
    TraceKind::SlowCommit,
    TraceKind::SlowAbort,
    TraceKind::LockHeld,
    TraceKind::WriteFlagSet,
    TraceKind::EpochBump,
    TraceKind::AdaptShrink,
    TraceKind::AdaptGrow,
    TraceKind::AdaptCollapse,
    TraceKind::AdaptReenable,
];

impl TraceKind {
    /// Stable event name used in Chrome exports.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::FastCommit => "fast_commit",
            TraceKind::FastAbort => "fast_abort",
            TraceKind::SlowCommit => "slow_commit",
            TraceKind::SlowAbort => "slow_abort",
            TraceKind::LockHeld => "lock_held",
            TraceKind::WriteFlagSet => "write_flag_set",
            TraceKind::EpochBump => "epoch_bump",
            TraceKind::AdaptShrink => "adapt_shrink",
            TraceKind::AdaptGrow => "adapt_grow",
            TraceKind::AdaptCollapse => "adapt_collapse",
            TraceKind::AdaptReenable => "adapt_reenable",
        }
    }

    /// The kind for a Chrome event name (inverse of [`Self::label`]).
    pub fn from_label(s: &str) -> Option<TraceKind> {
        TRACE_KINDS.into_iter().find(|k| k.label() == s)
    }

    /// `true` for kinds with a duration ("X" complete events).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            TraceKind::FastCommit
                | TraceKind::FastAbort
                | TraceKind::SlowCommit
                | TraceKind::SlowAbort
                | TraceKind::LockHeld
        )
    }

    /// `true` for the adaptive-policy instants (process-scoped in the
    /// Chrome export; everything else is thread-scoped).
    pub fn is_process_scoped(self) -> bool {
        matches!(
            self,
            TraceKind::AdaptShrink
                | TraceKind::AdaptGrow
                | TraceKind::AdaptCollapse
                | TraceKind::AdaptReenable
        )
    }

    fn code(self) -> u64 {
        match self {
            TraceKind::FastCommit => 0,
            TraceKind::FastAbort => 1,
            TraceKind::SlowCommit => 2,
            TraceKind::SlowAbort => 3,
            TraceKind::LockHeld => 4,
            TraceKind::WriteFlagSet => 5,
            TraceKind::EpochBump => 6,
            TraceKind::AdaptShrink => 7,
            TraceKind::AdaptGrow => 8,
            TraceKind::AdaptCollapse => 9,
            TraceKind::AdaptReenable => 10,
        }
    }

    fn from_code(c: u64) -> Option<TraceKind> {
        TRACE_KINDS.get(c as usize).copied()
    }
}

const TID_BITS: u32 = 10;
const DUR_BITS: u32 = 40;
const TS_BITS: u32 = 41;
const ARG_BITS: u32 = 16;
const TAG_MASK: u64 = 0x7f;

const W0_VALID: u64 = 1 << 63;
const W0_TAG_SHIFT: u32 = 56;
const W0_KIND_SHIFT: u32 = 50;
const W0_TID_SHIFT: u32 = DUR_BITS; // 40
const W1_TAG_SHIFT: u32 = 57;
const W1_TS_SHIFT: u32 = ARG_BITS; // 16

/// One decoded trace record. Field widths saturate on packing — see the
/// module docs for the exact layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Recording thread (saturates at 1023).
    pub tid: u16,
    /// What happened.
    pub kind: TraceKind,
    /// Start time in the tracer's unit (ns on hardware, cycles in the
    /// simulator), relative to the tracer's epoch.
    pub ts: u64,
    /// Duration in the same unit; 0 for instants.
    pub dur: u64,
    /// Kind-specific argument (abort code, epoch, orec count, ...).
    pub arg: u64,
}

impl TraceRecord {
    /// Packs the record into two words carrying generation tag `tag`.
    pub fn pack(self, tag: u64) -> (u64, u64) {
        let tag = tag & TAG_MASK;
        let w0 = W0_VALID
            | (tag << W0_TAG_SHIFT)
            | (self.kind.code() << W0_KIND_SHIFT)
            | ((self.tid as u64).min((1 << TID_BITS) - 1) << W0_TID_SHIFT)
            | self.dur.min((1 << DUR_BITS) - 1);
        let w1 = (tag << W1_TAG_SHIFT)
            | (self.ts.min((1 << TS_BITS) - 1) << W1_TS_SHIFT)
            | self.arg.min((1 << ARG_BITS) - 1);
        (w0, w1)
    }

    /// Decodes a word pair. `None` for an empty slot, a torn pair
    /// (generation tags disagree), or an unknown kind code.
    pub fn unpack(w0: u64, w1: u64) -> Option<TraceRecord> {
        if w0 & W0_VALID == 0 {
            return None;
        }
        if (w0 >> W0_TAG_SHIFT) & TAG_MASK != (w1 >> W1_TAG_SHIFT) & TAG_MASK {
            return None; // torn: words from different generations
        }
        Some(TraceRecord {
            tid: ((w0 >> W0_TID_SHIFT) & ((1 << TID_BITS) - 1)) as u16,
            kind: TraceKind::from_code((w0 >> W0_KIND_SHIFT) & 0x3f)?,
            ts: (w1 >> W1_TS_SHIFT) & ((1 << TS_BITS) - 1),
            dur: w0 & ((1 << DUR_BITS) - 1),
            arg: w1 & ((1 << ARG_BITS) - 1),
        })
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::{TraceRecord, TAG_MASK};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub(super) struct TraceStripe {
        cursor: AtomicU64,
        /// `2 * capacity` words: slot `i` occupies words `2i` and `2i+1`.
        words: Box<[AtomicU64]>,
    }

    impl TraceStripe {
        pub(super) fn new(capacity: usize) -> TraceStripe {
            TraceStripe {
                cursor: AtomicU64::new(0),
                words: (0..2 * capacity).map(|_| AtomicU64::new(0)).collect(),
            }
        }

        #[inline]
        pub(super) fn push(&self, rec: TraceRecord) {
            let cap = self.words.len() / 2;
            let claim = self.cursor.fetch_add(1, Relaxed);
            let at = (claim as usize & (cap - 1)) * 2;
            // The generation tag is the wrap count: two writers racing on
            // the same slot are `cap` claims apart, so their tags differ.
            let (w0, w1) = rec.pack((claim / cap as u64) & TAG_MASK);
            // Word 1 first, then word 0 (the valid bit): a drain that
            // sees the new w0 with the old w1 rejects on tag mismatch.
            self.words[at + 1].store(w1, Relaxed);
            self.words[at].store(w0, Relaxed);
        }

        pub(super) fn pushed(&self) -> u64 {
            self.cursor.load(Relaxed)
        }

        pub(super) fn drain_into(&self, out: &mut Vec<TraceRecord>) {
            let cap = self.words.len() / 2;
            let cur = self.cursor.load(Relaxed) as usize;
            for i in 0..cap {
                let at = ((cur + i) & (cap - 1)) * 2;
                let w0 = self.words[at].load(Relaxed);
                let w1 = self.words[at + 1].load(Relaxed);
                if let Some(rec) = TraceRecord::unpack(w0, w1) {
                    out.push(rec);
                }
            }
        }
    }
}

/// Records [`TraceRecord`]s into striped bounded rings. With the `trace`
/// feature off this is a zero-sized type whose methods do nothing — see
/// the module docs.
pub struct Tracer {
    #[cfg(feature = "trace")]
    stripes: Box<[imp::TraceStripe]>,
}

#[cfg(feature = "trace")]
fn epoch_instant() -> std::time::Instant {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

impl Tracer {
    /// A tracer with `stripes` independent rings of `capacity` slots each
    /// (both rounded up to powers of two). With the feature off the
    /// arguments are ignored.
    pub fn new(stripes: usize, capacity: usize) -> Tracer {
        #[cfg(not(feature = "trace"))]
        {
            let _ = (stripes, capacity);
            Tracer {}
        }
        #[cfg(feature = "trace")]
        {
            let stripes = stripes.max(1).next_power_of_two();
            let capacity = capacity.max(8).next_power_of_two();
            Tracer {
                stripes: (0..stripes).map(|_| imp::TraceStripe::new(capacity)).collect(),
            }
        }
    }

    /// Whether this build records traces (`trace` feature on).
    #[inline]
    pub const fn enabled(&self) -> bool {
        cfg!(feature = "trace")
    }

    /// Nanoseconds since the tracer's process-wide epoch (first call).
    /// Returns 0 with the feature off — callers gate on [`Self::enabled`]
    /// so the clock read itself is compiled out.
    #[inline]
    pub fn now(&self) -> u64 {
        #[cfg(not(feature = "trace"))]
        {
            0
        }
        #[cfg(feature = "trace")]
        {
            epoch_instant().elapsed().as_nanos() as u64
        }
    }

    /// Records a span with an explicit start time (simulator clock).
    #[inline]
    pub fn span_at(&self, tid: u64, kind: TraceKind, ts: u64, dur: u64, arg: u64) {
        #[cfg(not(feature = "trace"))]
        let _ = (tid, kind, ts, dur, arg);
        #[cfg(feature = "trace")]
        self.push(TraceRecord {
            tid: tid.min(u16::MAX as u64) as u16,
            kind,
            ts,
            dur,
            arg,
        });
    }

    /// Records a span that ends now and lasted `dur` nanoseconds.
    #[inline]
    pub fn span_ending_now(&self, tid: u64, kind: TraceKind, dur: u64, arg: u64) {
        #[cfg(not(feature = "trace"))]
        let _ = (tid, kind, dur, arg);
        #[cfg(feature = "trace")]
        self.span_at(tid, kind, self.now().saturating_sub(dur), dur, arg);
    }

    /// Records an instant at an explicit time (simulator clock).
    #[inline]
    pub fn instant_at(&self, tid: u64, kind: TraceKind, ts: u64, arg: u64) {
        self.span_at(tid, kind, ts, 0, arg);
    }

    /// Records an instant happening now.
    #[inline]
    pub fn instant_now(&self, tid: u64, kind: TraceKind, arg: u64) {
        #[cfg(not(feature = "trace"))]
        let _ = (tid, kind, arg);
        #[cfg(feature = "trace")]
        self.instant_at(tid, kind, self.now(), arg);
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn push(&self, rec: TraceRecord) {
        let s = rtle_htm::hash::wang_mix64(rec.tid as u64) as usize & (self.stripes.len() - 1);
        self.stripes[s].push(rec);
    }

    /// Total records published (monotone; includes overwritten ones).
    /// Always 0 with the feature off.
    pub fn recorded(&self) -> u64 {
        #[cfg(not(feature = "trace"))]
        {
            0
        }
        #[cfg(feature = "trace")]
        {
            self.stripes.iter().map(|s| s.pushed()).sum()
        }
    }

    /// Collects the resident records, sorted by start time. Racy with
    /// concurrent pushes (torn pairs are discarded — module docs).
    /// Always empty with the feature off.
    pub fn drain(&self) -> Vec<TraceRecord> {
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
        #[cfg(feature = "trace")]
        {
            let mut out = Vec::new();
            for s in self.stripes.iter() {
                s.drain_into(&mut out);
            }
            out.sort_by_key(|r| (r.ts, r.tid, r.dur));
            out
        }
    }
}

/// One record as a Chrome `trace_event` object. Spans become `"X"`
/// (complete) events with `dur`; instants become `"i"` events with a
/// thread or process `s` scope. Times are exported in microseconds (the
/// trace_event unit) as fractional values, and the exact raw values ride
/// along under `args` so tools can round-trip losslessly.
pub fn chrome_event(rec: &TraceRecord, pid: u64) -> Json {
    let mut args = vec![("raw_ts", Json::UInt(rec.ts)), ("raw_dur", Json::UInt(rec.dur))];
    if rec.arg != 0 || !rec.kind.is_span() {
        args.push(("arg", Json::UInt(rec.arg)));
    }
    let mut pairs = vec![
        ("name", Json::Str(rec.kind.label().into())),
        ("cat", Json::Str("rtle".into())),
        ("ph", Json::Str(if rec.kind.is_span() { "X" } else { "i" }.into())),
        ("ts", Json::Num(rec.ts as f64 / 1_000.0)),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(rec.tid as u64)),
        ("args", Json::obj(args)),
    ];
    if rec.kind.is_span() {
        pairs.push(("dur", Json::Num(rec.dur as f64 / 1_000.0)));
    } else {
        pairs.push((
            "s",
            Json::Str(if rec.kind.is_process_scoped() { "p" } else { "t" }.into()),
        ));
    }
    Json::obj(pairs)
}

/// A `"M"` process-name metadata event (labels the pid row in Perfetto).
pub fn chrome_process_name(pid: u64, name: &str) -> Json {
    Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("ts", Json::Num(0.0)),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(0)),
        ("args", Json::obj([("name", Json::Str(name.into()))])),
    ])
}

/// Wraps pre-built events into the JSON-object trace format Perfetto
/// loads: `{"traceEvents": [...], "displayTimeUnit": "...", ...}`.
/// `unit` documents what the raw timestamps mean ("ns" or "cycles").
pub fn chrome_document(events: Vec<Json>, unit: &str) -> Json {
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
        (
            "otherData",
            Json::obj([
                ("tool", Json::Str("rtle-trace".into())),
                ("raw_time_unit", Json::Str(unit.into())),
            ]),
        ),
    ])
}

/// Records → complete single-process Chrome trace document.
pub fn to_chrome_json(records: &[TraceRecord], process: &str, unit: &str) -> Json {
    let mut events = vec![chrome_process_name(1, process)];
    events.extend(records.iter().map(|r| chrome_event(r, 1)));
    chrome_document(events, unit)
}

/// Rebuilds records from a document produced by [`to_chrome_json`] /
/// [`chrome_document`] (metadata events are skipped). `None` when the
/// document does not have the trace_event shape.
pub fn records_from_chrome_json(j: &Json) -> Option<Vec<TraceRecord>> {
    let events = j.get("traceEvents")?.as_arr()?;
    let mut out = Vec::new();
    for e in events {
        let ph = e.get("ph")?.as_str()?;
        if ph == "M" {
            continue;
        }
        let kind = TraceKind::from_label(e.get("name")?.as_str()?)?;
        let args = e.get("args")?;
        out.push(TraceRecord {
            tid: e.get("tid")?.as_u64()? as u16,
            kind,
            ts: args.get("raw_ts")?.as_u64()?,
            dur: args.get("raw_dur")?.as_u64()?,
            arg: args.get("arg").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Some(out)
}

/// Structural validation of a Chrome trace document: every event must
/// carry the keys Perfetto requires (`name`/`ph`/`ts`/`pid`/`tid`, plus
/// `dur` for `"X"` spans and `s` for `"i"` instants). Returns the event
/// count, or what is missing.
pub fn validate_chrome(j: &Json) -> Result<usize, String> {
    let Some(events) = j.get("traceEvents").and_then(Json::as_arr) else {
        return Err("document has no traceEvents array".into());
    };
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i} is missing required key `{key}`"));
            }
        }
        match e.get("ph").and_then(Json::as_str) {
            Some("X") => {
                if e.get("dur").is_none() {
                    return Err(format!("complete event {i} has no `dur`"));
                }
            }
            Some("i") => {
                if e.get("s").is_none() {
                    return Err(format!("instant event {i} has no scope `s`"));
                }
            }
            Some("M") => {}
            other => return Err(format!("event {i} has unsupported ph {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tid: u16, kind: TraceKind, ts: u64, dur: u64, arg: u64) -> TraceRecord {
        TraceRecord { tid, kind, ts, dur, arg }
    }

    #[test]
    fn pack_round_trips_every_kind() {
        for (i, kind) in TRACE_KINDS.into_iter().enumerate() {
            let r = rec(i as u16 * 3, kind, 1_000 * i as u64, 77, i as u64);
            let (w0, w1) = r.pack(i as u64);
            assert_eq!(TraceRecord::unpack(w0, w1), Some(r), "{kind:?}");
        }
    }

    #[test]
    fn saturating_fields_do_not_corrupt_neighbours() {
        let r = rec(u16::MAX, TraceKind::LockHeld, u64::MAX, u64::MAX, u64::MAX);
        let (w0, w1) = r.pack(0);
        let back = TraceRecord::unpack(w0, w1).unwrap();
        assert_eq!(back.tid, (1 << TID_BITS) - 1);
        assert_eq!(back.ts, (1 << TS_BITS) - 1);
        assert_eq!(back.dur, (1 << DUR_BITS) - 1);
        assert_eq!(back.arg, (1 << ARG_BITS) - 1);
        assert_eq!(back.kind, TraceKind::LockHeld);
    }

    #[test]
    fn torn_pairs_and_empty_slots_are_rejected() {
        assert_eq!(TraceRecord::unpack(0, 0), None);
        let a = rec(1, TraceKind::FastCommit, 10, 5, 0);
        let b = rec(1, TraceKind::SlowCommit, 900, 5, 0);
        let (w0_new, _) = a.pack(3);
        let (_, w1_old) = b.pack(2);
        assert_eq!(TraceRecord::unpack(w0_new, w1_old), None, "tag mismatch");
    }

    #[test]
    fn chrome_export_has_perfetto_shape_and_round_trips() {
        let records = vec![
            rec(0, TraceKind::LockHeld, 100, 900, 0),
            rec(1, TraceKind::SlowCommit, 150, 40, 0),
            rec(0, TraceKind::WriteFlagSet, 120, 0, 0),
            rec(0, TraceKind::AdaptGrow, 500, 0, 128),
            rec(2, TraceKind::FastAbort, 1_200, 30, 4),
        ];
        let doc = to_chrome_json(&records, "rtle", "ns");
        // Survives the hand-rolled writer + parser.
        let text = doc.to_string_pretty();
        let parsed = crate::json::parse(&text).expect("trace JSON parses");
        // Perfetto-required keys on every event.
        let n = validate_chrome(&parsed).expect("valid trace_event shape");
        assert_eq!(n, records.len() + 1, "events + process_name metadata");
        // Exact record round-trip via the raw args.
        let back = records_from_chrome_json(&parsed).expect("records parse back");
        assert_eq!(back, records);
        // Instants carry the right scopes.
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let scope_of = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("s"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(scope_of("write_flag_set").as_deref(), Some("t"));
        assert_eq!(scope_of("adapt_grow").as_deref(), Some("p"));
        assert_eq!(scope_of("lock_held"), None, "spans have no scope");
    }

    #[test]
    fn validator_rejects_missing_keys() {
        let doc = Json::obj([(
            "traceEvents",
            Json::Arr(vec![Json::obj([
                ("name", Json::Str("x".into())),
                ("ph", Json::Str("X".into())),
                ("ts", Json::Num(0.0)),
                ("pid", Json::UInt(1)),
                // tid missing
            ])]),
        )]);
        assert!(validate_chrome(&doc).unwrap_err().contains("tid"));
    }

    #[test]
    fn disabled_tracer_is_inert_when_feature_off() {
        let t = Tracer::new(4, 64);
        t.span_ending_now(0, TraceKind::FastCommit, 10, 0);
        t.instant_now(0, TraceKind::EpochBump, 3);
        if !t.enabled() {
            assert_eq!(t.recorded(), 0);
            assert!(t.drain().is_empty());
            assert_eq!(std::mem::size_of::<Tracer>(), 0, "ZST when off");
        } else {
            assert_eq!(t.recorded(), 2);
        }
    }

    #[cfg(feature = "trace")]
    mod recording {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn records_spans_and_instants() {
            let t = Tracer::new(2, 128);
            assert!(t.enabled());
            t.span_at(3, TraceKind::LockHeld, 1_000, 500, 0);
            t.span_at(4, TraceKind::SlowCommit, 1_100, 50, 0);
            t.instant_at(3, TraceKind::EpochBump, 1_500, 7);
            let records = t.drain();
            assert_eq!(records.len(), 3);
            assert_eq!(records[0].kind, TraceKind::LockHeld);
            assert_eq!(records[0].dur, 500);
            assert_eq!(records[2].arg, 7);
            assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts), "sorted");
            assert_eq!(t.recorded(), 3);
        }

        #[test]
        fn span_ending_now_uses_the_monotonic_epoch() {
            let t = Tracer::new(1, 16);
            let before = t.now();
            t.span_ending_now(0, TraceKind::FastCommit, 5, 0);
            let r = t.drain();
            assert_eq!(r.len(), 1);
            assert_eq!(r[0].dur, 5);
            assert!(r[0].ts + 5 >= before, "ends at-or-after the pre-read clock");
        }

        #[test]
        fn overwrites_keep_most_recent() {
            let t = Tracer::new(1, 8);
            for i in 0..50u64 {
                t.span_at(0, TraceKind::FastCommit, i, 1, 0);
            }
            let r = t.drain();
            assert_eq!(r.len(), 8);
            assert_eq!(r.iter().map(|x| x.ts).collect::<Vec<_>>(), (42..50).collect::<Vec<_>>());
            assert_eq!(t.recorded(), 50);
        }

        #[test]
        fn concurrent_pushes_never_yield_torn_records() {
            let t = Arc::new(Tracer::new(2, 64));
            let threads: Vec<_> = (0..8u64)
                .map(|id| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        for i in 0..5_000u64 {
                            // tid and arg agree so a torn pair that slipped
                            // through would decode to an impossible record.
                            t.span_at(id, TraceKind::SlowCommit, i, i & 0xff, id);
                        }
                    })
                })
                .collect();
            for _ in 0..50 {
                for r in t.drain() {
                    assert_eq!(r.kind, TraceKind::SlowCommit);
                    assert_eq!(r.arg, r.tid as u64);
                    assert!(r.ts < 5_000);
                }
            }
            for th in threads {
                th.join().unwrap();
            }
            assert_eq!(t.recorded(), 8 * 5_000);
        }
    }
}
