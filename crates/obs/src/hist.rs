//! Log-linear (HDR-style) histograms with lock-free recording.
//!
//! Latencies in the elision runtime span five orders of magnitude — a fast
//! HTM commit is tens of nanoseconds, a contended lock acquisition can be
//! milliseconds — so linear buckets are useless and exact reservoirs are
//! too expensive for the hot path. A log-linear layout (the HdrHistogram
//! scheme) keeps relative error bounded by the sub-bucket resolution at
//! every magnitude: values are grouped by their floor-log2 into *tiers*,
//! and each tier is split into [`SUB_BUCKETS`] linear sub-buckets.
//!
//! Recording is one atomic fetch-add on a `Relaxed` counter; histograms
//! are therefore safe to share across threads behind an `Arc` and can be
//! merged (summed bucket-wise) after the fact.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::json::Json;

/// Linear sub-buckets per power-of-two tier. 32 gives ~3% worst-case
/// relative error, plenty for p50/p99 reporting.
pub const SUB_BUCKETS: usize = 32;
const SUB_SHIFT: u32 = 5; // log2(SUB_BUCKETS)
/// Power-of-two tiers covered. Tier 0 holds values `< 2*SUB_BUCKETS`
/// exactly; the top tier caps recording at ~2^44, far above any latency
/// we time in ns or cycles.
pub const TIERS: usize = 40;
const BUCKETS: usize = TIERS * SUB_BUCKETS;

/// A concurrent log-linear histogram of `u64` values (unit-agnostic:
/// nanoseconds, simulator cycles, or plain counts like retries).
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    /// Sum of recorded values (saturating on overflow in practice —
    /// wrapping is acceptable for a diagnostics mean).
    total: AtomicU64,
    /// Running maximum, maintained with a CAS loop only on increase.
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let counts = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts,
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `v`.
    ///
    /// Values below `2 * SUB_BUCKETS` are recorded exactly (tiers 0 and 1
    /// are both linear with step 1); above that, the tier is
    /// `floor(log2(v))` and the sub-bucket takes the next [`SUB_SHIFT`]
    /// bits below the leading one.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v < (2 * SUB_BUCKETS) as u64 {
            return v as usize;
        }
        let tier = 63 - v.leading_zeros(); // >= 6 here
        let sub = ((v >> (tier - SUB_SHIFT)) & (SUB_BUCKETS as u64 - 1)) as usize;
        // Tiers 0 and 1 (values < 64) occupy indices 0..2*SUB_BUCKETS at
        // unit resolution, so the log region for tier t starts at index
        // 2*SUB_BUCKETS + (t - 6)*SUB_BUCKETS = (t - 4)*SUB_BUCKETS.
        let logical_tier = (tier as usize - (SUB_SHIFT as usize - 1)).min(TIERS - 1);
        logical_tier * SUB_BUCKETS + sub
    }

    /// Lower bound of the value range covered by bucket `idx` — the value
    /// reported for every sample that landed in the bucket.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < 2 * SUB_BUCKETS {
            return idx as u64;
        }
        let logical_tier = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        let tier = logical_tier as u32 + SUB_SHIFT - 1;
        (1u64 << tier) | (sub << (tier - SUB_SHIFT))
    }

    /// Records one sample. One relaxed fetch-add plus (rarely) a CAS to
    /// raise the maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket_index(v)].fetch_add(1, Relaxed);
        self.total.fetch_add(v, Relaxed);
        let mut cur = self.max.load(Relaxed);
        while v > cur {
            match self.max.compare_exchange_weak(cur, v, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Adds every bucket of `other` into `self` (cross-thread merge).
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.counts.iter().zip(other.counts.iter()) {
            let n = src.load(Relaxed);
            if n > 0 {
                dst.fetch_add(n, Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Relaxed), Relaxed);
        let om = other.max.load(Relaxed);
        let mut cur = self.max.load(Relaxed);
        while om > cur {
            match self.max.compare_exchange_weak(cur, om, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Takes the histogram's contents, leaving it empty: every bucket
    /// (and the value sum and running maximum) is `swap(0)`, so each
    /// recorded sample is returned by **exactly one** drain even when
    /// writers are concurrent. A racing [`Self::record`] lands either in
    /// this drain or, if its fetch-add executes after the swap, in the
    /// next one — late attribution, never loss. The windowed telemetry
    /// rotator ([`crate::window`]) is built on this guarantee.
    ///
    /// Under a concurrent writer the drained `total`/`max` may be off by
    /// the in-flight sample relative to the buckets (the three updates in
    /// `record` are not one atomic step); that skews a window's mean by
    /// at most one sample, which is fine for diagnostics.
    pub fn drain(&self) -> HistSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                // ordering: counter hand-off; exactness comes from the
                // swap's read-modify-write atomicity, not from ordering.
                let n = c.swap(0, Relaxed);
                (n > 0).then(|| (Self::bucket_floor(i), n))
            })
            .collect();
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistSnapshot {
            count,
            total: self.total.swap(0, Relaxed),
            max: self.max.swap(0, Relaxed),
            buckets,
        }
    }

    /// An immutable snapshot (not atomic with respect to concurrent
    /// recording; counters may be mid-flight, which is fine for
    /// diagnostics).
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Relaxed);
                (n > 0).then(|| (Self::bucket_floor(i), n))
            })
            .collect();
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistSnapshot {
            count,
            total: self.total.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`Histogram`]: only non-empty buckets, as
/// `(floor_value, count)` pairs sorted by value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub total: u64,
    /// Largest recorded value (exact, not bucket-floored).
    pub max: u64,
    /// Non-empty buckets: `(bucket_floor, count)`, ascending by floor.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// An empty snapshot (what a fresh histogram drains to).
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            total: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Sums many snapshots bucket-wise — e.g. per-stripe window
    /// histograms into one merged window, or a whole window series into
    /// a full-run distribution.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a HistSnapshot>) -> HistSnapshot {
        let mut buckets = std::collections::BTreeMap::<u64, u64>::new();
        let (mut count, mut total, mut max) = (0u64, 0u64, 0u64);
        for s in parts {
            count += s.count;
            total = total.wrapping_add(s.total);
            max = max.max(s.max);
            for &(floor, n) in &s.buckets {
                *buckets.entry(floor).or_insert(0) += n;
            }
        }
        HistSnapshot {
            count,
            total,
            max,
            buckets: buckets.into_iter().collect(),
        }
    }

    /// Mean of recorded values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` (bucket floor — an
    /// underestimate by at most one sub-bucket width). `0` when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(floor, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return floor;
            }
        }
        self.max
    }

    /// JSON form: summary statistics plus the sparse bucket list.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("mean", Json::Num(self.mean())),
            ("max", Json::UInt(self.max)),
            ("p50", Json::UInt(self.percentile(0.50))),
            ("p90", Json::UInt(self.percentile(0.90))),
            ("p99", Json::UInt(self.percentile(0.99))),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(v, n)| Json::Arr(vec![Json::UInt(v), Json::UInt(n)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a snapshot from [`Self::to_json`] output. Returns `None`
    /// on schema mismatch.
    pub fn from_json(j: &Json) -> Option<HistSnapshot> {
        let buckets = j
            .get("buckets")?
            .as_arr()?
            .iter()
            .map(|pair| {
                let p = pair.as_arr()?;
                Some((p.first()?.as_u64()?, p.get(1)?.as_u64()?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(HistSnapshot {
            count: j.get("count")?.as_u64()?,
            // `total` is not exported; reconstruct an approximation from
            // mean * count for diff purposes.
            total: (j.get("mean")?.as_f64()? * j.get("count")?.as_u64()? as f64).round() as u64,
            max: j.get("max")?.as_u64()?,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 64);
        assert_eq!(s.buckets.len(), 64);
        assert!(s.buckets.iter().all(|&(floor, n)| n == 1 && floor < 64));
        assert_eq!(s.max, 63);
    }

    #[test]
    fn relative_error_bounded() {
        let h = Histogram::new();
        for shift in 6..40u32 {
            let v = (1u64 << shift) + (1u64 << shift.saturating_sub(2));
            h.record(v);
            let idx = Histogram::bucket_index(v);
            let floor = Histogram::bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            let err = (v - floor) as f64 / v as f64;
            assert!(err < 1.0 / SUB_BUCKETS as f64 + 1e-9, "err {err} at {v}");
        }
    }

    #[test]
    fn percentiles_monotone_and_sane() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let s = h.snapshot();
        let p50 = s.percentile(0.50);
        let p90 = s.percentile(0.90);
        let p99 = s.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
        assert!((450..=550).contains(&p50), "p50 {p50}");
        assert!((850..=950).contains(&p90), "p90 {p90}");
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..500u64 {
            let v = i * 37 % 10_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn json_round_trip() {
        let h = Histogram::new();
        for v in [0, 1, 17, 900, 65_537, 1 << 30] {
            h.record(v);
        }
        let s = h.snapshot();
        let j = s.to_json();
        let back = HistSnapshot::from_json(&crate::json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(back.count, s.count);
        assert_eq!(back.max, s.max);
        assert_eq!(back.buckets, s.buckets);
        assert_eq!(back.percentile(0.99), s.percentile(0.99));
    }

    #[test]
    fn drain_takes_everything_exactly_once() {
        let h = Histogram::new();
        for v in [3u64, 3, 900, 65_537] {
            h.record(v);
        }
        let first = h.drain();
        assert_eq!(first.count, 4);
        assert_eq!(first.max, 65_537);
        assert_eq!(first.total, 3 + 3 + 900 + 65_537);
        let second = h.drain();
        assert_eq!(second, HistSnapshot::empty(), "drain must leave it empty");
        h.record(7);
        assert_eq!(h.drain().count, 1, "histogram usable again after drain");
    }

    #[test]
    fn merged_equals_single_histogram() {
        let parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        let whole = Histogram::new();
        for i in 0..800u64 {
            let v = i * 97 % 50_000;
            parts[(i % 4) as usize].record(v);
            whole.record(v);
        }
        let snaps: Vec<HistSnapshot> = parts.iter().map(Histogram::snapshot).collect();
        assert_eq!(HistSnapshot::merged(&snaps), whole.snapshot());
        assert_eq!(HistSnapshot::merged([]), HistSnapshot::empty());
    }

    #[test]
    fn empty_histogram() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
