//! A minimal JSON document model with a writer and a strict parser.
//!
//! The export pipeline needs machine-readable output in offline build
//! environments where serde cannot be vendored, so this module implements
//! the small subset of JSON the snapshot schema uses: objects, arrays,
//! strings, booleans, null, unsigned/signed integers (emitted exactly, not
//! through `f64`) and finite floats. The parser exists so tests can
//! round-trip snapshots and so `scripts/tier1.sh` can validate exports
//! with the repository's own tooling.
//!
//! # Schema migration policy
//!
//! Every exported document carries a top-level `schema_version` stamped
//! from [`crate::SCHEMA_VERSION`]. Loaders (`ObsSnapshot::from_json`,
//! the `diag --slo`/`--timeline` file views) **reject** documents whose
//! version differs from the one they were built with — there is no
//! in-place upgrade path, because snapshots are cheap to regenerate
//! while silently misreading an old layout is not. Version history
//! lives on [`crate::SCHEMA_VERSION`]; to migrate an old file, re-run
//! the producing tool, and to read one anyway, check out the matching
//! revision. Tools must surface the mismatch as a clean error naming
//! both versions (see `rtle-bench`'s `diag`), never as a panic or, by
//! treating fields as absent, as zeroed data.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, emitted without a decimal point. Counters
    /// are `u64`; routing them through `f64` would corrupt values above
    /// 2^53, so integers get their own variant.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A finite float. NaN/infinity are emitted as `null` (JSON has no
    /// representation for them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Ordered map so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (for files humans diff).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(map) if !map.is_empty() => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact JSON serialization (`json.to_string()` comes from here).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 always produces a parseable float or integer form.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not used by our emitter;
                            // reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError {
                at: start,
                msg: "invalid number",
            })
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (src, val) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::UInt(0)),
            ("18446744073709551615", Json::UInt(u64::MAX)),
            ("-42", Json::Int(-42)),
            ("1.5", Json::Num(1.5)),
            ("\"hi\\n\\\"there\\\"\"", Json::Str("hi\n\"there\"".into())),
        ] {
            let parsed = parse(src).unwrap();
            assert_eq!(parsed, val, "{src}");
            assert_eq!(parse(&parsed.to_string()).unwrap(), val, "{src}");
        }
    }

    #[test]
    fn u64_counters_survive_exactly() {
        // 2^53 + 1 is not representable in f64 — the reason UInt exists.
        let v = Json::UInt((1 << 53) + 1);
        assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some((1 << 53) + 1));
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = Json::obj([
            ("schema_version", Json::UInt(1)),
            (
                "series",
                Json::Arr(vec![
                    Json::obj([("label", Json::Str("TLE".into())), ("v", Json::Num(1.25))]),
                    Json::Null,
                ]),
            ),
            ("unicode", Json::Str("ärger — ok".into())),
        ]);
        let compact = doc.to_string();
        assert_eq!(parse(&compact).unwrap(), doc);
        let pretty = doc.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\u12\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nonfinite_floats_emit_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": 3, "b": [1.5, "x"], "c": "s"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("s"));
        assert_eq!(doc.get("missing"), None);
    }
}
