#![warn(missing_docs)]
//! # rtle-obs: observability for the elision runtimes
//!
//! The paper's evaluation (§6.2.1) leans on "various lightweight
//! statistics collected during execution" — per-path commit counts,
//! abort composition, lock-hold time. This crate turns those one-off
//! counters into a reusable pipeline with four pieces:
//!
//! * **Attempt events** ([`AttemptEvent`]) — one record per retry-loop
//!   pass (path, outcome, attempt index, critical-section latency),
//!   packed into a single `u64` so recording is a tear-free relaxed
//!   store, buffered in striped lock-free rings ([`EventRing`]).
//! * **Histograms** ([`Histogram`]) — log-linear (HDR-style) with atomic
//!   buckets, for critical-section latency, lock-hold time, and retry
//!   counts; mergeable across threads.
//! * **Recorder / sinks** ([`Recorder`], [`Sink`]) — one shared object
//!   absorbs everything and produces schema-versioned [`ObsSnapshot`]s;
//!   sinks deliver them in memory ([`MemorySink`]), as human-readable
//!   text ([`TextSink`]), or as JSON ([`JsonSink`]).
//! * **Decision tracing** ([`AdaptDecision`]) — each adaptive FG-TLE
//!   resize/collapse/re-enable with the slow-commit/abort window signal
//!   that triggered it.
//! * **Causal tracing** ([`Tracer`], gated behind the `trace` feature) —
//!   per-thread span buffers for critical sections, path transitions,
//!   write-flag sets, epoch bumps and adaptive decisions, exported as
//!   Chrome `trace_event` JSON loadable in Perfetto.
//! * **Windowed telemetry** ([`WindowCollector`], [`TimeSeries`]) —
//!   epoch-rotated per-thread windows closed every N ms into a bounded
//!   series of [`WindowSnapshot`]s (per-window p50/p99/p999 latency,
//!   abort-cause rates, path-mix), giving tail-latency SLOs a time axis
//!   that cumulative counters cannot provide.
//! * **Collapse watchdog** ([`Watchdog`]) — inspects each closed window
//!   for collapse signatures (fallback-rate spike + commit-rate floor,
//!   sustained conflict storms) and assembles a postmortem
//!   [`flight_record`] JSON dump on trigger.
//! * **Live telemetry plane** ([`MetricsRegistry`], [`LiveServer`]) —
//!   subsystems register [`LiveSource`]s whose snapshots are built from
//!   non-destructive relaxed reads; a hand-rolled HTTP/1.1 endpoint on
//!   `std::net::TcpListener` serves Prometheus text at `/metrics` and
//!   schema-versioned JSON at `/json` while the workload runs. All
//!   exports share the [`epoch`] process-start timebase so live scrapes
//!   correlate with flight records and offline timelines.
//!
//! Recording is opt-in: the lock runtime holds an `Option<Arc<Recorder>>`
//! and pays only an `Option` null-check when none is installed, plus a
//! sampling mask test ([`Recorder::should_sample`]) when one is.
//!
//! The [`json`] module is a self-contained JSON writer/parser — exports
//! must work in offline build environments where serde cannot be
//! vendored, and the parser lets tests assert that every `--json` file
//! round-trips.

pub mod epoch;
pub mod event;
pub mod hist;
pub mod json;
pub mod live;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod trace;
pub mod watchdog;
pub mod window;

pub use event::{AdaptAction, AdaptDecision, AttemptEvent, Outcome, PathKind};
pub use hist::{HistSnapshot, Histogram};
pub use json::{parse as parse_json, Json};
pub use live::LiveServer;
pub use recorder::{
    JsonSink, MemorySink, ObsConfig, ObsSnapshot, Recorder, Sink, TextSink, SCHEMA_VERSION,
};
pub use registry::{LiveSource, MetricsRegistry, SourceSnapshot, SCRAPE_WINDOW_TAIL};
pub use trace::{TraceKind, TraceRecord, Tracer};
pub use watchdog::{
    flight_record, CollapseEvent, CollapseKind, Watchdog, WatchdogConfig, WatchdogLive,
};
pub use window::{TimeSeries, WindowCollector, WindowCounts, WindowRotation, WindowSnapshot};
