//! A process-wide metrics registry for live scraping.
//!
//! Subsystems that already keep relaxed atomic counters — recorders,
//! sharded maps, watchdog mirrors — implement [`LiveSource`] and
//! register with a [`MetricsRegistry`]. A scrape walks the registered
//! sources and asks each for a [`SourceSnapshot`] built exclusively
//! from non-destructive reads (relaxed loads, histogram bucket copies,
//! bounded window-series clones). Nothing in the scrape path takes a
//! lock a writer can contend on:
//!
//! * the registry's own `Mutex` guards only the *registration list*,
//!   which hot-path writers never touch; the scrape clones the `Arc`s
//!   under that mutex and snapshots each source after releasing it;
//! * sources must not drain rings or reset counters when snapshotting
//!   (the destructive [`crate::Recorder::snapshot`] stays reserved for
//!   end-of-run export).
//!
//! Two renderers sit on top of a scrape: Prometheus text exposition
//! (format 0.0.4) for `/metrics`, and the repo's schema-versioned JSON
//! for `/json`. The Prometheus output deliberately carries **no
//! wall-clock-derived values** (no timestamps, no window start/length)
//! so golden-file tests stay byte-stable; the JSON output stamps
//! `taken_at_ns` from the shared [`crate::epoch`] timebase so scrapes
//! correlate with flight records and offline timelines.

use std::sync::{Arc, Mutex};

use crate::epoch;
use crate::json::Json;
use crate::window::WindowSnapshot;

/// How many trailing windows a source should include in its snapshot.
/// Scrapes are periodic; anything older is visible in a prior scrape
/// or in the offline series export.
pub const SCRAPE_WINDOW_TAIL: usize = 8;

/// One source's worth of live telemetry, produced by a single
/// non-destructive pass over its counters.
#[derive(Debug, Clone, Default)]
pub struct SourceSnapshot {
    /// Short source category ("recorder", "shard_map", "watchdog") used
    /// as the `kind` label in exports.
    pub kind: &'static str,
    /// Monotone counters, in a stable source-defined order.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges (ratios, percentile estimates), in a stable
    /// source-defined order.
    pub gauges: Vec<(String, f64)>,
    /// Up to [`SCRAPE_WINDOW_TAIL`] most recent closed windows, oldest
    /// first. Empty for sources without windowed telemetry.
    pub windows: Vec<WindowSnapshot>,
    /// Extra identity labels (key, value), in a stable source-defined
    /// order — e.g. `software_backend="tl2"` for a lock with a software
    /// fallback. Appended to every sample's label set in the Prometheus
    /// exposition and exported as a `labels` object in JSON. Empty for
    /// sources without extra identity.
    pub labels: Vec<(String, String)>,
}

/// A subsystem that can be scraped live. Implementations must be
/// non-destructive and must never block hot-path writers: relaxed
/// atomic loads and short registry-private locks only.
pub trait LiveSource: Send + Sync {
    /// Builds a snapshot of the source's current counters. Called from
    /// the scrape thread, concurrently with writers.
    fn live_snapshot(&self) -> SourceSnapshot;
}

/// The registry: named live sources, scraped together.
///
/// Registration order is preserved and defines export order, so two
/// scrapes of an unchanged registry render metrics in the same
/// sequence — a property the golden-file tests rely on.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<(String, Arc<dyn LiveSource>)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers `source` under `name`. Names are not required to be
    /// unique — two locks may both register as "lock" — but unique
    /// names make dashboards legible; callers should namespace.
    pub fn register(&self, name: impl Into<String>, source: Arc<dyn LiveSource>) {
        let mut sources = self.sources.lock().unwrap();
        sources.push((name.into(), source));
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.lock().unwrap().len()
    }

    /// True when nothing has registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots every registered source. The registration mutex is
    /// held only long enough to clone the `Arc` list; the (potentially
    /// slower) per-source snapshot runs after it is released.
    pub fn scrape(&self) -> Vec<(String, SourceSnapshot)> {
        let sources: Vec<(String, Arc<dyn LiveSource>)> =
            self.sources.lock().unwrap().clone();
        sources
            .into_iter()
            .map(|(name, src)| (name, src.live_snapshot()))
            .collect()
    }

    /// Renders a scrape as Prometheus text exposition (format 0.0.4).
    ///
    /// Metric names are `rtle_<key>`; every sample carries
    /// `source="<name>"` and `kind="<kind>"` labels. Per-window gauges
    /// are limited to deterministic fields (index, ops, percentiles,
    /// fallback rate) and add a `window="<index>"` label. No timestamps
    /// are emitted.
    pub fn to_prometheus(&self) -> String {
        render_prometheus(&self.scrape())
    }

    /// Renders a scrape as schema-versioned rtle-obs JSON
    /// (kind `live-registry`), stamped with `taken_at_ns` from the
    /// process epoch.
    pub fn to_json(&self) -> Json {
        render_json(&self.scrape(), epoch::now_ns())
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self
            .sources
            .lock()
            .unwrap()
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        f.debug_struct("MetricsRegistry").field("sources", &names).finish()
    }
}

/// Escapes a Prometheus label value: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Keeps metric names inside Prometheus's `[a-zA-Z_][a-zA-Z0-9_]*`
/// grammar; anything else becomes '_'. Source keys are already chosen
/// to be clean, so this is a guard rail rather than a transformer.
fn sanitize_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for (i, c) in key.chars().enumerate() {
        let ok = c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Prometheus text renderer over an already-taken scrape. Split out so
/// tests can feed hand-built snapshots.
pub fn render_prometheus(scrape: &[(String, SourceSnapshot)]) -> String {
    let mut out = String::new();
    let mut typed: Vec<String> = Vec::new();
    let mut emit = |out: &mut String, name: &str, kind: &str, labels: &str, value: String| {
        if !typed.iter().any(|t| t == name) {
            typed.push(name.to_string());
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    };
    for (source, snap) in scrape {
        let mut base = format!(
            "source=\"{}\",kind=\"{}\"",
            escape_label(source),
            escape_label(snap.kind)
        );
        for (k, v) in &snap.labels {
            base.push_str(&format!(",{}=\"{}\"", sanitize_name(k), escape_label(v)));
        }
        for (key, value) in &snap.counters {
            let name = format!("rtle_{}", sanitize_name(key));
            emit(&mut out, &name, "counter", &base, format!("{value}"));
        }
        for (key, value) in &snap.gauges {
            let name = format!("rtle_{}", sanitize_name(key));
            emit(&mut out, &name, "gauge", &base, fmt_f64(*value));
        }
        for w in &snap.windows {
            let labels = format!("{base},window=\"{}\"", w.index);
            let fields: [(&str, f64); 5] = [
                ("window_ops", w.ops() as f64),
                ("window_latency_p50_ns", w.latency_p(0.50) as f64),
                ("window_latency_p99_ns", w.latency_p(0.99) as f64),
                ("window_latency_p999_ns", w.latency_p(0.999) as f64),
                ("window_fallback_rate", w.fallback_rate()),
            ];
            for (key, value) in fields {
                let name = format!("rtle_{key}");
                emit(&mut out, &name, "gauge", &labels, fmt_f64(value));
            }
        }
    }
    out
}

/// JSON renderer over an already-taken scrape, stamped with the given
/// epoch-relative time.
pub fn render_json(scrape: &[(String, SourceSnapshot)], taken_at_ns: u64) -> Json {
    let sources: Vec<Json> = scrape
        .iter()
        .map(|(name, snap)| {
            Json::obj([
                ("name", Json::Str(name.clone())),
                ("kind", Json::Str(snap.kind.to_string())),
                (
                    "labels",
                    Json::Obj(
                        snap.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    ),
                ),
                (
                    "counters",
                    Json::Obj(
                        snap.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    Json::Obj(
                        snap.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                            .collect(),
                    ),
                ),
                (
                    "windows",
                    Json::Arr(snap.windows.iter().map(WindowSnapshot::to_json).collect()),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("kind", Json::Str("live-registry".into())),
        (
            "schema_version",
            Json::UInt(crate::recorder::SCHEMA_VERSION),
        ),
        ("taken_at_ns", Json::UInt(taken_at_ns)),
        ("sources", Json::Arr(sources)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    struct Fake {
        hits: AtomicU64,
    }

    impl LiveSource for Fake {
        fn live_snapshot(&self) -> SourceSnapshot {
            SourceSnapshot {
                kind: "fake",
                counters: vec![("hits".into(), self.hits.load(Relaxed))],
                gauges: vec![("ratio".into(), 0.25)],
                windows: Vec::new(),
                labels: Vec::new(),
            }
        }
    }

    #[test]
    fn scrape_reflects_current_counters() {
        let reg = MetricsRegistry::new();
        let fake = Arc::new(Fake { hits: AtomicU64::new(0) });
        reg.register("a", fake.clone());
        fake.hits.store(7, Relaxed);
        let scrape = reg.scrape();
        assert_eq!(scrape.len(), 1);
        assert_eq!(scrape[0].0, "a");
        assert_eq!(scrape[0].1.counters, vec![("hits".to_string(), 7)]);
    }

    #[test]
    fn prometheus_text_has_type_lines_and_labels() {
        let reg = MetricsRegistry::new();
        reg.register("alpha", Arc::new(Fake { hits: AtomicU64::new(3) }));
        reg.register("beta", Arc::new(Fake { hits: AtomicU64::new(5) }));
        let text = reg.to_prometheus();
        // One TYPE line per metric name even with two sources.
        assert_eq!(text.matches("# TYPE rtle_hits counter").count(), 1);
        assert_eq!(text.matches("# TYPE rtle_ratio gauge").count(), 1);
        assert!(text.contains("rtle_hits{source=\"alpha\",kind=\"fake\"} 3"));
        assert!(text.contains("rtle_hits{source=\"beta\",kind=\"fake\"} 5"));
        assert!(text.contains("rtle_ratio{source=\"alpha\",kind=\"fake\"} 0.25"));
    }

    #[test]
    fn json_export_is_schema_versioned_and_parses() {
        let reg = MetricsRegistry::new();
        reg.register("alpha", Arc::new(Fake { hits: AtomicU64::new(9) }));
        let json = reg.to_json();
        let text = json.to_string_pretty();
        let back = crate::json::parse(&text).expect("registry JSON must round-trip");
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("live-registry"));
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(crate::recorder::SCHEMA_VERSION)
        );
        assert!(back.get("taken_at_ns").and_then(Json::as_u64).is_some());
        let sources = back.get("sources").and_then(Json::as_arr).unwrap();
        assert_eq!(sources.len(), 1);
        assert_eq!(
            sources[0].get("counters").and_then(|c| c.get("hits")).and_then(Json::as_u64),
            Some(9)
        );
    }

    #[test]
    fn label_escaping_handles_quotes_and_backslashes() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(sanitize_name("p99.9-rate"), "p99_9_rate");
    }
}
