//! A single process-wide monotonic timebase.
//!
//! Every telemetry consumer — live scrapes, window series, watchdog
//! flight records, offline `diag --timeline` replays — needs to agree
//! on what "t = 0" means, or their offsets cannot be correlated. This
//! module pins one `Instant` the first time anything asks for it and
//! measures everything as nanoseconds since that epoch. The epoch is
//! process-global and immutable once taken; callers that want a local
//! origin subtract two [`now_ns`] readings.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-start monotonic epoch. Pinned on first call; every
/// subsequent call returns the same instant.
pub fn process_epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since [`process_epoch`], saturating at
/// `u64::MAX` (≈584 years — effectively never).
pub fn now_ns() -> u64 {
    let ns = process_epoch().elapsed().as_nanos();
    u64::try_from(ns).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_pinned_once() {
        let a = process_epoch();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = process_epoch();
        assert_eq!(a, b, "epoch must not drift between calls");
    }

    #[test]
    fn now_is_monotone() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = now_ns();
        assert!(b > a, "elapsed time must advance: {a} -> {b}");
    }
}
