//! Windowed telemetry: epoch-rotated per-thread counters and latency
//! histograms, snapshotted into a bounded time series.
//!
//! Cumulative counters answer "how did the run go overall"; they cannot
//! show a 50 ms lemming collapse or a pessimistic-audit stall, because
//! the healthy minutes around the incident average it away. This module
//! adds the time dimension: writers record into the **open** window
//! lock-free, a rotator closes the window every N milliseconds, and each
//! closed window becomes a [`WindowSnapshot`] (per-window p50/p99/p999
//! latency, abort-cause rates, path-mix) in a bounded [`TimeSeries`]
//! ring.
//!
//! # Rotation protocol (no lost samples)
//!
//! Each stripe holds **two** phase buffers; writers pick the buffer by
//! the low bit of a global window epoch. Rotation is:
//!
//! 1. `epoch.fetch_add(1, AcqRel)` — new samples start landing in the
//!    other phase buffer;
//! 2. drain the just-retired phase with `swap(0)` per counter/bucket
//!    ([`crate::hist::Histogram::drain`]).
//!
//! A writer that read the old epoch just before the flip may still
//! increment the retired buffer *after* the drain; the swap guarantees
//! that increment is collected by the **next** drain of that phase (two
//! rotations later). Samples can therefore be attributed one window
//! late under a race, but are never lost and never double-counted —
//! `sum(all windows) == sum(all records)` once writers quiesce. The
//! stress test `tests/window_stress.rs` pounds this invariant with 8
//! writers across hundreds of flips.
//!
//! Stripes are selected directly by `thread_key & (stripes - 1)` (unlike
//! the event ring's hashed striping) so a harness that hands out dense
//! thread keys gets per-thread buffers, and tests can address stripes
//! deterministically.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{AcqRel, Relaxed},
};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{AttemptEvent, Outcome, PathKind};
use crate::hist::{HistSnapshot, Histogram};
use crate::json::Json;

/// Execution paths (indexes match [`PathKind`] order).
const PATHS: usize = 3;
/// Outcome kinds (index = `Outcome::kind_index`; 0 is commit, unused).
const OUTCOMES: usize = 7;
/// Explicit-abort protocol codes tracked per window.
const EXPLICIT_CODES: usize = 8;

const PATH_LABELS: [&str; PATHS] = ["fast_htm", "slow_htm", "lock"];
const ABORT_LABELS: [&str; OUTCOMES] = [
    "commit", // index 0, never used as an abort label
    "conflict",
    "capacity",
    "explicit",
    "unsupported",
    "nested",
    "spurious",
];

/// One phase buffer of one stripe: the counters a writer touches.
/// Line-aligned so two stripes' open buffers never share a cache line
/// (the counters are written every sampled op; cross-thread false
/// sharing here shows up directly in the recorder overhead bench).
#[repr(align(64))]
struct PhaseSlots {
    commits: [AtomicU64; PATHS],
    aborts: [AtomicU64; OUTCOMES],
    explicit: [AtomicU64; EXPLICIT_CODES],
    /// End-to-end operation latency (intended-start to completion when
    /// the harness corrects for coordinated omission).
    latency: Histogram,
}

impl PhaseSlots {
    fn new() -> PhaseSlots {
        PhaseSlots {
            commits: Default::default(),
            aborts: Default::default(),
            explicit: Default::default(),
            latency: Histogram::new(),
        }
    }

    /// Takes this phase's contents (swap-to-zero; see the module docs).
    fn drain(&self) -> WindowCounts {
        // ordering: counter hand-off via swap's read-modify-write
        // atomicity; Relaxed suffices because a straggler's increment is
        // simply collected by the next drain of this phase.
        let take = |a: &AtomicU64| a.swap(0, Relaxed);
        WindowCounts {
            commits: std::array::from_fn(|i| take(&self.commits[i])),
            aborts: std::array::from_fn(|i| take(&self.aborts[i])),
            explicit: std::array::from_fn(|i| take(&self.explicit[i])),
            latency: self.latency.drain(),
        }
    }
}

/// Two phase buffers; the open one is `phases[epoch & 1]`.
#[repr(align(64))]
struct Stripe {
    phases: [PhaseSlots; 2],
}

/// The raw counts drained from one window (or one stripe of it).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowCounts {
    /// Commits per path, indexed like [`PathKind`] (fast, slow, lock).
    pub commits: [u64; PATHS],
    /// Aborts per outcome kind (index 0 — commit — always zero).
    pub aborts: [u64; OUTCOMES],
    /// Explicit aborts per protocol code (code mod 8).
    pub explicit: [u64; EXPLICIT_CODES],
    /// Operation latency distribution for the window.
    pub latency: HistSnapshot,
}

impl WindowCounts {
    /// Field-wise sum (used to merge per-stripe drains).
    pub fn merge(&mut self, other: &WindowCounts) {
        for (d, s) in self.commits.iter_mut().zip(other.commits) {
            *d += s;
        }
        for (d, s) in self.aborts.iter_mut().zip(other.aborts) {
            *d += s;
        }
        for (d, s) in self.explicit.iter_mut().zip(other.explicit) {
            *d += s;
        }
        self.latency = HistSnapshot::merged([&self.latency, &other.latency]);
    }

    /// Total commits across paths.
    pub fn total_commits(&self) -> u64 {
        self.commits.iter().sum()
    }

    /// Total aborts across causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }
}

/// One closed window: drained counts plus its position on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Zero-based window index (the epoch value the window was open
    /// under).
    pub index: u64,
    /// Window start, ns since the process epoch ([`crate::epoch`]) —
    /// the same timebase live scrapes and flight records use, so a
    /// window seen in an offline timeline lines up with a scrape of the
    /// same run.
    pub start_ns: u64,
    /// Actual window length in ns (rotator jitter makes this differ
    /// slightly from the configured period).
    pub len_ns: u64,
    /// Merged counts for the window.
    pub counts: WindowCounts,
}

impl WindowSnapshot {
    /// Latency at quantile `q` (`0.5`, `0.99`, `0.999`, ...).
    pub fn latency_p(&self, q: f64) -> u64 {
        self.counts.latency.percentile(q)
    }

    /// Operations whose latency was recorded in this window.
    pub fn ops(&self) -> u64 {
        self.counts.latency.count
    }

    /// Fraction of commits that took the pessimistic lock path
    /// (`0.0` when the window saw no commits).
    pub fn fallback_rate(&self) -> f64 {
        let total = self.counts.total_commits();
        if total == 0 {
            return 0.0;
        }
        self.counts.commits[2] as f64 / total as f64
    }

    /// Commits per second over the window's actual length.
    pub fn commit_rate(&self) -> f64 {
        if self.len_ns == 0 {
            return 0.0;
        }
        self.counts.total_commits() as f64 * 1e9 / self.len_ns as f64
    }

    /// Aborts per commit (`aborts / max(commits, 1)`), the storm signal.
    pub fn aborts_per_commit(&self) -> f64 {
        self.counts.total_aborts() as f64 / self.counts.total_commits().max(1) as f64
    }

    /// Explicit aborts recorded for protocol code `code` (mod 8).
    pub fn explicit_aborts(&self, code: u8) -> u64 {
        self.counts.explicit[code as usize % EXPLICIT_CODES]
    }

    /// JSON form: timeline position, derived rates, percentiles, and the
    /// full latency histogram (commit/abort maps keyed by stable label).
    pub fn to_json(&self) -> Json {
        let label_map = |labels: &[&str], counts: &[u64], skip_zero: bool| {
            Json::Obj(
                labels
                    .iter()
                    .zip(counts)
                    .skip(usize::from(skip_zero)) // drop the "commit" abort slot
                    .map(|(&l, &n)| (l.to_string(), Json::UInt(n)))
                    .collect(),
            )
        };
        Json::obj([
            ("index", Json::UInt(self.index)),
            ("start_ns", Json::UInt(self.start_ns)),
            ("len_ns", Json::UInt(self.len_ns)),
            ("ops", Json::UInt(self.ops())),
            ("p50_ns", Json::UInt(self.latency_p(0.50))),
            ("p99_ns", Json::UInt(self.latency_p(0.99))),
            ("p999_ns", Json::UInt(self.latency_p(0.999))),
            ("commit_rate", Json::Num(self.commit_rate())),
            ("fallback_rate", Json::Num(self.fallback_rate())),
            ("aborts_per_commit", Json::Num(self.aborts_per_commit())),
            (
                "commits",
                label_map(&PATH_LABELS, &self.counts.commits, false),
            ),
            ("aborts", label_map(&ABORT_LABELS, &self.counts.aborts, true)),
            (
                "explicit_codes",
                Json::Arr(
                    self.counts
                        .explicit
                        .iter()
                        .enumerate()
                        .filter(|&(_, &n)| n > 0)
                        .map(|(c, &n)| Json::Arr(vec![Json::UInt(c as u64), Json::UInt(n)]))
                        .collect(),
                ),
            ),
            ("latency", self.counts.latency.to_json()),
        ])
    }

    /// Rebuilds a snapshot from [`Self::to_json`] output; `None` on shape
    /// mismatch. Derived fields (rates, percentiles) are recomputed from
    /// the counts rather than trusted from the document.
    pub fn from_json(j: &Json) -> Option<WindowSnapshot> {
        fn labelled<const N: usize>(j: &Json, labels: &[&str], off: usize) -> Option<[u64; N]> {
            let mut out = [0u64; N];
            for (i, &l) in labels.iter().enumerate().skip(off) {
                out[i] = j.get(l)?.as_u64()?;
            }
            Some(out)
        }
        let mut explicit = [0u64; EXPLICIT_CODES];
        for pair in j.get("explicit_codes")?.as_arr()? {
            let p = pair.as_arr()?;
            explicit[p.first()?.as_u64()? as usize % EXPLICIT_CODES] = p.get(1)?.as_u64()?;
        }
        Some(WindowSnapshot {
            index: j.get("index")?.as_u64()?,
            start_ns: j.get("start_ns")?.as_u64()?,
            len_ns: j.get("len_ns")?.as_u64()?,
            counts: WindowCounts {
                commits: labelled(j.get("commits")?, &PATH_LABELS, 0)?,
                aborts: labelled(j.get("aborts")?, &ABORT_LABELS, 1)?,
                explicit,
                latency: HistSnapshot::from_json(j.get("latency")?)?,
            },
        })
    }
}

/// A bounded ring of closed windows, oldest first. When full, the oldest
/// window is dropped and counted in [`TimeSeries::dropped`].
#[derive(Debug, Default)]
pub struct TimeSeries {
    cap: usize,
    dropped: u64,
    buf: std::collections::VecDeque<WindowSnapshot>,
}

impl TimeSeries {
    /// An empty series keeping at most `cap` windows (min 1).
    pub fn new(cap: usize) -> TimeSeries {
        TimeSeries {
            cap: cap.max(1),
            dropped: 0,
            buf: std::collections::VecDeque::new(),
        }
    }

    /// Appends a closed window, evicting the oldest at capacity.
    pub fn push(&mut self, w: WindowSnapshot) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(w);
    }

    /// Windows currently retained, oldest first.
    pub fn windows(&self) -> Vec<WindowSnapshot> {
        self.buf.iter().cloned().collect()
    }

    /// Retained window count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no window has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Windows evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The result of one rotation: the merged closed window plus the
/// per-stripe drains it was merged from (tests use the latter to check
/// merged == sum of per-thread windows).
#[derive(Debug, Clone)]
pub struct WindowRotation {
    /// The closed window, all stripes merged.
    pub merged: WindowSnapshot,
    /// Per-stripe drained counts, stripe-index order.
    pub per_stripe: Vec<WindowCounts>,
}

/// The windowed-telemetry collector. Writers are lock-free; one rotator
/// (any thread) closes windows. See the module docs for the protocol.
pub struct WindowCollector {
    stripes: Box<[Stripe]>,
    /// Global window epoch; low bit selects the open phase buffer.
    epoch: AtomicU64,
    window_len_ns: u64,
    t0: Instant,
    /// Start of the open window, ns since `t0`.
    open_start_ns: AtomicU64,
    /// Serializes rotators and holds the closed-window ring.
    series: Mutex<TimeSeries>,
}

impl WindowCollector {
    /// A collector rotating `window_len_ms`-long windows into a series
    /// of at most `series_cap` snapshots, with `stripes` (rounded up to
    /// a power of two) per-thread buffers.
    pub fn new(window_len_ms: u64, series_cap: usize, stripes: usize) -> WindowCollector {
        let stripes = stripes.next_power_of_two().max(1);
        // All collectors share the process-start monotonic epoch as t0,
        // so window start offsets, flight records, and live scrapes all
        // speak the same timebase. The first window opens *now*, not at
        // the epoch, hence the explicit open_start_ns initialisation.
        let t0 = crate::epoch::process_epoch();
        let born_ns = t0.elapsed().as_nanos() as u64;
        WindowCollector {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    phases: [PhaseSlots::new(), PhaseSlots::new()],
                })
                .collect(),
            epoch: AtomicU64::new(0),
            window_len_ns: window_len_ms.max(1) * 1_000_000,
            t0,
            open_start_ns: AtomicU64::new(born_ns),
            series: Mutex::new(TimeSeries::new(series_cap)),
        }
    }

    /// Configured window length in ns.
    pub fn window_len_ns(&self) -> u64 {
        self.window_len_ns
    }

    /// The current window epoch (== index of the open window).
    pub fn epoch(&self) -> u64 {
        // ordering: advisory read for reporting; the phase selection in
        // `slots` re-reads it.
        self.epoch.load(Relaxed)
    }

    /// ns since the process epoch (the collector's timebase).
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    #[inline]
    fn slots(&self, thread_key: u64) -> &PhaseSlots {
        // ordering: the epoch read is advisory — a stale value routes
        // the sample to the phase being drained, where the swap-based
        // drain attributes it to a later window instead of losing it
        // (module docs); no synchronization edge is required.
        let e = self.epoch.load(Relaxed);
        let s = (thread_key as usize) & (self.stripes.len() - 1);
        &self.stripes[s].phases[(e & 1) as usize]
    }

    /// Records one end-to-end operation latency (ns, ideally measured
    /// from the *intended* start to correct for coordinated omission)
    /// into the open window. Lock-free.
    #[inline]
    pub fn record_latency(&self, thread_key: u64, latency_ns: u64) {
        self.slots(thread_key).latency.record(latency_ns);
    }

    /// Feeds one attempt event's path/outcome into the open window's
    /// rate counters. Lock-free.
    #[inline]
    pub fn record_attempt(&self, thread_key: u64, ev: AttemptEvent) {
        let p = self.slots(thread_key);
        match ev.outcome {
            Outcome::Commit => {
                let i = match ev.path {
                    PathKind::FastHtm => 0,
                    PathKind::SlowHtm => 1,
                    PathKind::Lock => 2,
                };
                // ordering: statistics counter, merged at drain time.
                p.commits[i].fetch_add(1, Relaxed);
            }
            other => {
                // ordering: statistics counter, merged at drain time.
                p.aborts[other.kind_index()].fetch_add(1, Relaxed);
                if let Outcome::AbortExplicit(c) = other {
                    // ordering: statistics counter, merged at drain time.
                    p.explicit[c as usize % EXPLICIT_CODES].fetch_add(1, Relaxed);
                }
            }
        }
    }

    /// Closes the open window unconditionally: flips the epoch, drains
    /// the retired phase, pushes the merged snapshot onto the series,
    /// and returns the drains. Rotators are serialized by the series
    /// mutex (rotation is off the hot path; writers never take it).
    pub fn rotate(&self) -> WindowRotation {
        let mut series = self.series.lock().unwrap();
        let now = self.now_ns();
        // ordering: AcqRel — the flip must not be reordered after the
        // drains below (Release), and this rotator must observe prior
        // rotations' flips (Acquire); writers racing with the flip are
        // handled by the swap-based drain (module docs).
        let index = self.epoch.fetch_add(1, AcqRel);
        let retired = (index & 1) as usize;
        let per_stripe: Vec<WindowCounts> = self
            .stripes
            .iter()
            .map(|s| s.phases[retired].drain())
            .collect();
        let mut counts = WindowCounts::default();
        for sc in &per_stripe {
            counts.merge(sc);
        }
        // ordering: rotators are serialized by the series mutex; the
        // swap just hands the previous window-start to this rotation.
        let start_ns = self.open_start_ns.swap(now, Relaxed);
        let merged = WindowSnapshot {
            index,
            start_ns,
            len_ns: now.saturating_sub(start_ns).max(1),
            counts,
        };
        series.push(merged.clone());
        WindowRotation { merged, per_stripe }
    }

    /// Rotates only if the open window has reached the configured
    /// length; the rotator thread calls this on its tick.
    pub fn maybe_rotate(&self) -> Option<WindowRotation> {
        // ordering: advisory deadline check; `rotate` re-reads the
        // clock under the series mutex.
        let start = self.open_start_ns.load(Relaxed);
        (self.now_ns().saturating_sub(start) >= self.window_len_ns).then(|| self.rotate())
    }

    /// The closed-window series, oldest first.
    pub fn series(&self) -> Vec<WindowSnapshot> {
        self.series.lock().unwrap().windows()
    }

    /// Windows evicted from the bounded series so far.
    pub fn series_dropped(&self) -> u64 {
        self.series.lock().unwrap().dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(path: PathKind, latency: u64) -> AttemptEvent {
        AttemptEvent {
            path,
            outcome: Outcome::Commit,
            attempt: 0,
            latency,
        }
    }

    #[test]
    fn rotation_drains_into_distinct_windows() {
        let c = WindowCollector::new(1_000, 16, 4);
        c.record_attempt(0, commit(PathKind::FastHtm, 10));
        c.record_latency(0, 100);
        let w1 = c.rotate().merged;
        assert_eq!(w1.index, 0);
        assert_eq!(w1.counts.commits, [1, 0, 0]);
        assert_eq!(w1.ops(), 1);

        c.record_attempt(1, commit(PathKind::Lock, 20));
        c.record_attempt(
            1,
            AttemptEvent {
                path: PathKind::SlowHtm,
                outcome: Outcome::AbortExplicit(4),
                attempt: 1,
                latency: 0,
            },
        );
        let w2 = c.rotate().merged;
        assert_eq!(w2.index, 1);
        assert_eq!(w2.counts.commits, [0, 0, 1]);
        assert_eq!(w2.explicit_aborts(4), 1);
        assert_eq!(w2.fallback_rate(), 1.0);
        assert_eq!(c.series().len(), 2);

        let w3 = c.rotate().merged;
        assert_eq!(w3.counts, WindowCounts::default(), "nothing recorded");
    }

    #[test]
    fn merged_window_is_sum_of_stripes() {
        let c = WindowCollector::new(1_000, 16, 8);
        for key in 0..8u64 {
            for _ in 0..=key {
                c.record_attempt(key, commit(PathKind::FastHtm, 5));
                c.record_latency(key, 50 * (key + 1));
            }
        }
        let rot = c.rotate();
        assert_eq!(rot.per_stripe.len(), 8);
        for (key, stripe) in rot.per_stripe.iter().enumerate() {
            assert_eq!(stripe.commits[0], key as u64 + 1, "stripe {key}");
        }
        let mut sum = WindowCounts::default();
        for s in &rot.per_stripe {
            sum.merge(s);
        }
        assert_eq!(rot.merged.counts, sum);
        assert_eq!(rot.merged.ops(), (1..=8u64).sum::<u64>());
    }

    #[test]
    fn series_is_bounded_and_counts_drops() {
        let c = WindowCollector::new(1_000, 3, 1);
        for i in 0..5u64 {
            c.record_latency(0, i + 1);
            c.rotate();
        }
        let series = c.series();
        assert_eq!(series.len(), 3);
        assert_eq!(c.series_dropped(), 2);
        assert_eq!(
            series.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest windows evicted first"
        );
    }

    #[test]
    fn maybe_rotate_respects_the_deadline() {
        // 1000 ms window: the deadline cannot have passed yet.
        let c = WindowCollector::new(1_000, 4, 1);
        assert!(c.maybe_rotate().is_none());
        // 1 ms window: spin past the deadline. now_ns is relative to
        // the shared process epoch, not this collector's birth, so the
        // wait must be measured from a captured base.
        let c = WindowCollector::new(1, 4, 1);
        let base = c.now_ns();
        while c.now_ns() < base + 2_000_000 {
            std::hint::spin_loop();
        }
        assert!(c.maybe_rotate().is_some());
    }

    #[test]
    fn windows_are_anchored_to_the_process_epoch() {
        let before = crate::epoch::now_ns();
        let c = WindowCollector::new(1, 4, 1);
        c.record_latency(0, 5);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let w = c.rotate().merged;
        assert!(
            w.start_ns >= before,
            "first window starts at collector birth ({} >= {before}), not at the epoch",
            w.start_ns
        );
        assert!(w.len_ns < 1_000_000_000, "len is the window, not process uptime");
        assert_eq!(w.start_ns + w.len_ns, c.series()[0].start_ns + c.series()[0].len_ns);
    }

    #[test]
    fn window_json_round_trips() {
        let c = WindowCollector::new(50, 8, 2);
        for i in 0..100u64 {
            c.record_attempt(i % 2, commit(PathKind::FastHtm, i));
            c.record_latency(i % 2, i * 17 + 3);
        }
        c.record_attempt(
            0,
            AttemptEvent {
                path: PathKind::SlowHtm,
                outcome: Outcome::AbortConflict,
                attempt: 2,
                latency: 0,
            },
        );
        c.record_attempt(
            1,
            AttemptEvent {
                path: PathKind::Lock,
                outcome: Outcome::AbortExplicit(6),
                attempt: 3,
                latency: 0,
            },
        );
        let w = c.rotate().merged;
        let text = w.to_json().to_string_pretty();
        let back =
            WindowSnapshot::from_json(&crate::json::parse(&text).unwrap()).expect("round-trip");
        assert_eq!(back, w);
        assert_eq!(back.latency_p(0.999), w.latency_p(0.999));
    }

    #[test]
    fn percentiles_come_from_window_latency() {
        let c = WindowCollector::new(50, 8, 1);
        for v in 1..=1000u64 {
            c.record_latency(0, v);
        }
        let w = c.rotate().merged;
        assert!(w.latency_p(0.5) >= 450 && w.latency_p(0.5) <= 550);
        assert!(w.latency_p(0.99) <= w.latency_p(0.999));
        assert_eq!(w.ops(), 1000);
    }
}
