//! Attempt events and adaptive-policy decision events.
//!
//! An [`AttemptEvent`] describes the outcome of one pass through
//! `ElidableLock::execute`'s retry machinery: which path ran, how it
//! ended, how many attempts it took, and how long the critical section
//! was. To make recording tear-free with a single `Relaxed` store, the
//! event packs into **one** `u64` ([`AttemptEvent::pack`]):
//!
//! ```text
//! bit 63      : valid (distinguishes a written slot from an empty one)
//! bits 62..61 : path        (2 bits)
//! bits 60..58 : outcome kind (3 bits)
//! bits 57..50 : explicit abort code (8 bits)
//! bits 49..42 : attempt index (8 bits, saturating)
//! bits 41..0  : latency (42 bits, saturating — ns or sim cycles)
//! ```

use rtle_htm::AbortCode;

use crate::json::Json;

/// Which execution path an attempt ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The uninstrumented fast HTM path.
    FastHtm,
    /// The instrumented (write-flag / orec / STM) slow path.
    SlowHtm,
    /// The pessimistic fallback under the real lock.
    Lock,
}

impl PathKind {
    /// Stable lowercase label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            PathKind::FastHtm => "fast_htm",
            PathKind::SlowHtm => "slow_htm",
            PathKind::Lock => "lock",
        }
    }

    fn code(self) -> u64 {
        match self {
            PathKind::FastHtm => 0,
            PathKind::SlowHtm => 1,
            PathKind::Lock => 2,
        }
    }

    fn from_code(c: u64) -> PathKind {
        match c {
            0 => PathKind::FastHtm,
            1 => PathKind::SlowHtm,
            _ => PathKind::Lock,
        }
    }
}

/// How an attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The attempt committed.
    Commit,
    /// Aborted on a data conflict.
    AbortConflict,
    /// Aborted on read/write capacity exhaustion.
    AbortCapacity,
    /// Explicit abort with the runtime's protocol code (lock held,
    /// write-flag set, orec conflict, ...).
    AbortExplicit(u8),
    /// Aborted on an HTM-unfriendly instruction.
    AbortUnsupported,
    /// Aborted on illegal nesting.
    AbortNested,
    /// Spurious (microarchitectural) abort.
    AbortSpurious,
}

impl Outcome {
    /// The outcome for a given backend abort code.
    pub fn from_abort(code: AbortCode) -> Outcome {
        match code {
            AbortCode::Conflict => Outcome::AbortConflict,
            AbortCode::Capacity => Outcome::AbortCapacity,
            AbortCode::Explicit(c) => Outcome::AbortExplicit(c),
            AbortCode::Unsupported => Outcome::AbortUnsupported,
            AbortCode::Nested => Outcome::AbortNested,
            AbortCode::Spurious => Outcome::AbortSpurious,
        }
    }

    /// `true` for [`Outcome::Commit`].
    pub fn is_commit(self) -> bool {
        matches!(self, Outcome::Commit)
    }

    /// Stable lowercase label used in JSON exports ("commit",
    /// "conflict", "explicit", ...).
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Commit => "commit",
            Outcome::AbortConflict => "conflict",
            Outcome::AbortCapacity => "capacity",
            Outcome::AbortExplicit(_) => "explicit",
            Outcome::AbortUnsupported => "unsupported",
            Outcome::AbortNested => "nested",
            Outcome::AbortSpurious => "spurious",
        }
    }

    fn kind_code(self) -> u64 {
        match self {
            Outcome::Commit => 0,
            Outcome::AbortConflict => 1,
            Outcome::AbortCapacity => 2,
            Outcome::AbortExplicit(_) => 3,
            Outcome::AbortUnsupported => 4,
            Outcome::AbortNested => 5,
            Outcome::AbortSpurious => 6,
        }
    }

    fn explicit_code(self) -> u64 {
        match self {
            Outcome::AbortExplicit(c) => c as u64,
            _ => 0,
        }
    }

    fn from_codes(kind: u64, explicit: u8) -> Outcome {
        match kind {
            0 => Outcome::Commit,
            1 => Outcome::AbortConflict,
            2 => Outcome::AbortCapacity,
            3 => Outcome::AbortExplicit(explicit),
            4 => Outcome::AbortUnsupported,
            5 => Outcome::AbortNested,
            _ => Outcome::AbortSpurious,
        }
    }
}

const VALID_BIT: u64 = 1 << 63;
const LATENCY_BITS: u32 = 42;
const LATENCY_MASK: u64 = (1 << LATENCY_BITS) - 1;
const ATTEMPT_SHIFT: u32 = LATENCY_BITS; // 42
const EXPLICIT_SHIFT: u32 = ATTEMPT_SHIFT + 8; // 50
const KIND_SHIFT: u32 = EXPLICIT_SHIFT + 8; // 58
const PATH_SHIFT: u32 = KIND_SHIFT + 3; // 61

/// One attempt-level event. See the module docs for the packed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptEvent {
    /// Path the attempt ran on.
    pub path: PathKind,
    /// How it ended.
    pub outcome: Outcome,
    /// Zero-based attempt index within the operation (saturates at 255).
    pub attempt: u8,
    /// Duration of the attempt's critical section, in the recorder's
    /// latency unit (ns on hardware, cycles in the simulator). Saturates
    /// at 2^42 - 1 (~73 min in ns).
    pub latency: u64,
}

impl AttemptEvent {
    /// Packs the event into one `u64` with the valid bit set. An all-zero
    /// word is never a valid event, so empty ring slots are
    /// distinguishable without a separate occupancy map.
    #[inline]
    pub fn pack(self) -> u64 {
        VALID_BIT
            | (self.path.code() << PATH_SHIFT)
            | (self.outcome.kind_code() << KIND_SHIFT)
            | (self.outcome.explicit_code() << EXPLICIT_SHIFT)
            | ((self.attempt as u64) << ATTEMPT_SHIFT)
            | self.latency.min(LATENCY_MASK)
    }

    /// Unpacks a word previously produced by [`Self::pack`]; `None` for a
    /// never-written (valid-bit-clear) slot.
    pub fn unpack(word: u64) -> Option<AttemptEvent> {
        if word & VALID_BIT == 0 {
            return None;
        }
        let kind = (word >> KIND_SHIFT) & 0x7;
        let explicit = ((word >> EXPLICIT_SHIFT) & 0xff) as u8;
        Some(AttemptEvent {
            path: PathKind::from_code((word >> PATH_SHIFT) & 0x3),
            outcome: Outcome::from_codes(kind, explicit),
            attempt: ((word >> ATTEMPT_SHIFT) & 0xff) as u8,
            latency: word & LATENCY_MASK,
        })
    }

    /// JSON form for exports.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("path", Json::Str(self.path.label().into())),
            ("outcome", Json::Str(self.outcome.label().into())),
            ("attempt", Json::UInt(self.attempt as u64)),
            ("latency", Json::UInt(self.latency)),
        ];
        if let Outcome::AbortExplicit(c) = self.outcome {
            pairs.push(("abort_code", Json::UInt(c as u64)));
        }
        Json::obj(pairs)
    }
}

/// What the adaptive FG-TLE policy decided at a lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptAction {
    /// Halved the active orec range (slow path idle).
    Shrink,
    /// Doubled the active orec range (aborts dominate commits).
    Grow,
    /// Disabled the instrumented path entirely (collapse to TLE).
    Collapse,
    /// Re-enabled the instrumented path after a disabled period.
    Reenable,
}

impl AdaptAction {
    /// Stable lowercase label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            AdaptAction::Shrink => "shrink",
            AdaptAction::Grow => "grow",
            AdaptAction::Collapse => "collapse",
            AdaptAction::Reenable => "reenable",
        }
    }
}

/// One adaptive-policy decision, with the window signal that triggered it.
///
/// These are rare (at most one per `WINDOW` lock acquisitions), so they
/// are stored unpacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptDecision {
    /// The action taken.
    pub action: AdaptAction,
    /// Active orec count before the decision.
    pub orecs_before: u64,
    /// Active orec count after the decision.
    pub orecs_after: u64,
    /// Slow-path commits observed in the decision window.
    pub slow_commits: u64,
    /// Slow-path aborts observed in the decision window.
    pub slow_aborts: u64,
    /// The hottest conflicting orec slot at decision time, as
    /// `(slot index, cumulative conflicts attributed to it)` — the
    /// per-orec evidence behind a [`AdaptAction::Grow`]. `None` when no
    /// conflicts were attributed or the policy had no heatmap.
    pub hot_slot: Option<(u64, u64)>,
}

impl AdaptDecision {
    /// JSON form for exports. `hot_slot` is emitted only when present,
    /// keeping pre-heatmap documents byte-identical.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("action", Json::Str(self.action.label().into())),
            ("orecs_before", Json::UInt(self.orecs_before)),
            ("orecs_after", Json::UInt(self.orecs_after)),
            ("slow_commits", Json::UInt(self.slow_commits)),
            ("slow_aborts", Json::UInt(self.slow_aborts)),
        ];
        if let Some((slot, conflicts)) = self.hot_slot {
            pairs.push(("hot_slot", Json::UInt(slot)));
            pairs.push(("hot_slot_conflicts", Json::UInt(conflicts)));
        }
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_every_field() {
        let cases = [
            AttemptEvent {
                path: PathKind::FastHtm,
                outcome: Outcome::Commit,
                attempt: 0,
                latency: 0,
            },
            AttemptEvent {
                path: PathKind::SlowHtm,
                outcome: Outcome::AbortExplicit(6),
                attempt: 4,
                latency: 123_456_789,
            },
            AttemptEvent {
                path: PathKind::Lock,
                outcome: Outcome::Commit,
                attempt: 255,
                latency: LATENCY_MASK,
            },
            AttemptEvent {
                path: PathKind::FastHtm,
                outcome: Outcome::AbortSpurious,
                attempt: 17,
                latency: 1,
            },
        ];
        for ev in cases {
            assert_eq!(AttemptEvent::unpack(ev.pack()), Some(ev), "{ev:?}");
        }
    }

    #[test]
    fn latency_saturates_instead_of_corrupting() {
        let ev = AttemptEvent {
            path: PathKind::Lock,
            outcome: Outcome::Commit,
            attempt: 1,
            latency: u64::MAX,
        };
        let back = AttemptEvent::unpack(ev.pack()).unwrap();
        assert_eq!(back.latency, LATENCY_MASK);
        assert_eq!(back.path, PathKind::Lock);
        assert_eq!(back.attempt, 1);
    }

    #[test]
    fn zero_word_is_not_an_event() {
        assert_eq!(AttemptEvent::unpack(0), None);
    }

    #[test]
    fn abort_mapping_matches_backend_codes() {
        assert_eq!(
            Outcome::from_abort(AbortCode::Explicit(4)),
            Outcome::AbortExplicit(4)
        );
        assert_eq!(Outcome::from_abort(AbortCode::Conflict).label(), "conflict");
        assert!(!Outcome::from_abort(AbortCode::Capacity).is_commit());
        assert!(Outcome::Commit.is_commit());
    }
}
