//! The [`Recorder`]: one object that absorbs attempt events, latency
//! samples, and adaptive-policy decisions, and produces schema-versioned
//! [`ObsSnapshot`]s that flow to [`Sink`]s.
//!
//! A recorder is shared behind an `Arc`: the lock runtime (or the
//! simulator) holds one and feeds it from the hot path; the harness
//! snapshots it at any time. Everything on the recording side is
//! lock-free and `Relaxed` — a handful of fetch-adds and one ring store
//! per *sampled* operation — except decision tracing, which is a
//! mutex-guarded `Vec` because decisions happen at most once per
//! adaptation window and always under the elided lock.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use crate::event::{AdaptDecision, AdaptAction, AttemptEvent, Outcome, PathKind};
use crate::hist::{HistSnapshot, Histogram};
use crate::json::Json;
use crate::ring::EventRing;
use crate::trace::{TraceKind, Tracer};
use crate::window::{WindowCollector, WindowSnapshot};

/// Version stamped into every exported snapshot. Bump on any
/// backwards-incompatible change to the JSON layout.
///
/// History: v1 = cumulative counters/histograms only; v2 added the
/// `windows` time series (and the windowed-telemetry documents built on
/// it). See the [`crate::json`] module docs for the migration policy.
pub const SCHEMA_VERSION: u64 = 2;

/// Static configuration for a [`Recorder`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Sample 1 in `2^sample_shift` operations for event/histogram
    /// recording. `0` records every operation; `4` records 1 in 16.
    pub sample_shift: u32,
    /// Slots per ring stripe (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Independent ring stripes (rounded up to a power of two). More
    /// stripes means less cross-thread contention on the ring cursors.
    pub stripes: usize,
    /// Unit of every latency value fed to this recorder: `"ns"` for the
    /// real runtime, `"cycles"` for the simulator. Purely descriptive —
    /// stamped into snapshots so downstream tooling never mixes units.
    pub latency_unit: &'static str,
    /// Trace-ring stripes (rounded up to a power of two). Ignored when
    /// the `trace` feature is off.
    pub trace_stripes: usize,
    /// Trace slots per stripe (rounded up to a power of two). Ignored
    /// when the `trace` feature is off.
    pub trace_capacity: usize,
    /// Windowed-telemetry period in milliseconds; `0` (the default)
    /// disables the window collector entirely, keeping the hot path free
    /// of even the forwarding branch's target.
    pub window_len_ms: u64,
    /// Closed windows retained in the bounded time series.
    pub window_series_cap: usize,
    /// Window collector stripes (rounded up to a power of two); stripe
    /// = `thread_key & (stripes - 1)`.
    pub window_stripes: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_shift: 0,
            ring_capacity: 1024,
            stripes: 8,
            latency_unit: "ns",
            trace_stripes: 8,
            trace_capacity: 4096,
            window_len_ms: 0,
            window_series_cap: 256,
            window_stripes: 8,
        }
    }
}

const PATHS: usize = 3;
const OUTCOMES: usize = 7; // index = Outcome kind code; 0 is Commit (unused)
const EXPLICIT_CODES: usize = 8;

fn path_index(p: PathKind) -> usize {
    match p {
        PathKind::FastHtm => 0,
        PathKind::SlowHtm => 1,
        PathKind::Lock => 2,
    }
}

/// Collects attempt events, latency histograms, and adaptive decisions.
/// See the module docs.
pub struct Recorder {
    cfg: ObsConfig,
    sample_mask: u64,
    ring: EventRing,
    /// Critical-section latency of committed attempts.
    cs_latency: Histogram,
    /// Time the fallback lock was held per acquisition.
    lock_hold: Histogram,
    /// Attempts needed before an operation committed (0 = first try).
    retries: Histogram,
    commits: [AtomicU64; PATHS],
    aborts: [AtomicU64; OUTCOMES],
    explicit_codes: [AtomicU64; EXPLICIT_CODES],
    decisions: Mutex<Vec<AdaptDecision>>,
    tracer: Tracer,
    windows: Option<WindowCollector>,
}

impl Recorder {
    /// A recorder with the given configuration.
    pub fn new(cfg: ObsConfig) -> Recorder {
        Recorder {
            sample_mask: (1u64 << cfg.sample_shift.min(63)) - 1,
            ring: EventRing::new(cfg.stripes, cfg.ring_capacity),
            cs_latency: Histogram::new(),
            lock_hold: Histogram::new(),
            retries: Histogram::new(),
            commits: Default::default(),
            aborts: Default::default(),
            explicit_codes: Default::default(),
            decisions: Mutex::new(Vec::new()),
            tracer: Tracer::new(cfg.trace_stripes, cfg.trace_capacity),
            windows: (cfg.window_len_ms > 0).then(|| {
                WindowCollector::new(cfg.window_len_ms, cfg.window_series_cap, cfg.window_stripes)
            }),
            cfg,
        }
    }

    /// The window collector, when `window_len_ms > 0` was configured.
    /// The harness's rotator thread drives [`WindowCollector::rotate`]
    /// through this.
    pub fn windows(&self) -> Option<&WindowCollector> {
        self.windows.as_ref()
    }

    /// The recorder's causal tracer (inert unless the `trace` feature is
    /// on — see [`crate::trace`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Whether operation number `op_seq` (any per-thread counter) should
    /// be recorded, honouring `sample_shift`.
    #[inline]
    pub fn should_sample(&self, op_seq: u64) -> bool {
        op_seq & self.sample_mask == 0
    }

    /// The sampling period (`2^sample_shift`): one in this many
    /// operations is recorded. Callers that sample with a decrementing
    /// per-thread ticket (cheaper than a masked counter on the hot path)
    /// reload the ticket from this.
    #[inline]
    pub fn sample_period(&self) -> u64 {
        self.sample_mask + 1
    }

    /// Records one attempt event: bumps the path/outcome counters, feeds
    /// the retry and critical-section histograms on commit, and publishes
    /// the packed event to the ring. `thread_key` picks the ring stripe.
    #[inline]
    pub fn record_attempt(&self, thread_key: u64, ev: AttemptEvent) {
        match ev.outcome {
            Outcome::Commit => {
                self.commits[path_index(ev.path)].fetch_add(1, Relaxed);
                self.cs_latency.record(ev.latency);
                self.retries.record(ev.attempt as u64);
            }
            other => {
                self.aborts[other.kind_index()].fetch_add(1, Relaxed);
                if let Outcome::AbortExplicit(c) = other {
                    self.explicit_codes[c as usize % EXPLICIT_CODES].fetch_add(1, Relaxed);
                }
            }
        }
        if let Some(w) = &self.windows {
            w.record_attempt(thread_key, ev);
        }
        self.ring.push(thread_key, ev.pack());
    }

    /// Records one end-to-end operation latency into the open telemetry
    /// window (no-op without a window collector). Unlike attempt events
    /// this is fed for **every** operation, not just sampled ones —
    /// honest tail percentiles cannot be sampled — and the caller is
    /// expected to measure from the operation's *intended* start so the
    /// per-window p99/p999 are coordinated-omission-corrected.
    #[inline]
    pub fn record_op_latency(&self, thread_key: u64, latency_ns: u64) {
        if let Some(w) = &self.windows {
            w.record_latency(thread_key, latency_ns);
        }
    }

    /// Records how long the fallback lock was held, in the recorder's
    /// latency unit.
    #[inline]
    pub fn record_lock_hold(&self, duration: u64) {
        self.lock_hold.record(duration);
    }

    /// Appends an adaptive-policy decision to the trace, stamped with the
    /// tracer's current clock.
    pub fn record_decision(&self, d: AdaptDecision) {
        let ts = self.tracer.now();
        self.record_decision_at(d, ts);
    }

    /// Appends an adaptive-policy decision with an explicit timestamp in
    /// the recorder's latency unit (the simulator passes its sim clock),
    /// and mirrors it onto the causal-trace timeline as a process-scoped
    /// instant (`arg` = the post-decision orec count).
    pub fn record_decision_at(&self, d: AdaptDecision, ts: u64) {
        let kind = match d.action {
            AdaptAction::Shrink => TraceKind::AdaptShrink,
            AdaptAction::Grow => TraceKind::AdaptGrow,
            AdaptAction::Collapse => TraceKind::AdaptCollapse,
            AdaptAction::Reenable => TraceKind::AdaptReenable,
        };
        self.tracer.instant_at(0, kind, ts, d.orecs_after);
        self.decisions.lock().unwrap().push(d);
    }

    /// The decisions traced so far.
    pub fn decisions(&self) -> Vec<AdaptDecision> {
        self.decisions.lock().unwrap().clone()
    }

    /// A point-in-time snapshot of everything the recorder holds.
    ///
    /// Count lists are sorted by label — the same order the JSON object
    /// form carries — so a snapshot compares equal after a round-trip.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut commit_labels = [PathKind::FastHtm, PathKind::SlowHtm, PathKind::Lock];
        commit_labels.sort_by_key(|p| p.label());
        let outcome_labels = [
            "commit",
            "conflict",
            "capacity",
            "explicit",
            "unsupported",
            "nested",
            "spurious",
        ];
        let mut aborts: Vec<(String, u64)> = outcome_labels
            .iter()
            .enumerate()
            .skip(1) // index 0 is "commit", not an abort
            .map(|(i, &l)| (l.to_string(), self.aborts[i].load(Relaxed)))
            .collect();
        aborts.sort();
        ObsSnapshot {
            schema_version: SCHEMA_VERSION,
            latency_unit: self.cfg.latency_unit.to_string(),
            sample_shift: self.cfg.sample_shift,
            commits: commit_labels
                .iter()
                .map(|&p| {
                    (
                        p.label().to_string(),
                        self.commits[path_index(p)].load(Relaxed),
                    )
                })
                .collect(),
            aborts,
            explicit_codes: self
                .explicit_codes
                .iter()
                .enumerate()
                .filter_map(|(c, n)| {
                    let n = n.load(Relaxed);
                    (n > 0).then_some((c as u64, n))
                })
                .collect(),
            cs_latency: self.cs_latency.snapshot(),
            lock_hold: self.lock_hold.snapshot(),
            retries: self.retries.snapshot(),
            decisions: self.decisions(),
            events_recorded: self.ring.pushed(),
            recent_events: self.ring.drain(),
            windows: self
                .windows
                .as_ref()
                .map(WindowCollector::series)
                .unwrap_or_default(),
        }
    }
}

/// Live scraping reads the same atomics as [`Recorder::snapshot`] but
/// **non-destructively**: no ring drain, no counter reset, so a scrape
/// every second cannot disturb the end-of-run export (and vice versa).
/// Lives here rather than in `registry.rs` because it reads the
/// recorder's private counter fields directly.
impl crate::registry::LiveSource for Recorder {
    fn live_snapshot(&self) -> crate::registry::SourceSnapshot {
        const PATH_LABELS: [&str; PATHS] = ["fast_htm", "slow_htm", "lock"];
        const ABORT_LABELS: [&str; OUTCOMES] = [
            "commit",
            "conflict",
            "capacity",
            "explicit",
            "unsupported",
            "nested",
            "spurious",
        ];
        let mut counters: Vec<(String, u64)> = Vec::new();
        for (i, label) in PATH_LABELS.iter().enumerate() {
            counters.push((format!("commits_{label}"), self.commits[i].load(Relaxed)));
        }
        for (i, label) in ABORT_LABELS.iter().enumerate().skip(1) {
            counters.push((format!("aborts_{label}"), self.aborts[i].load(Relaxed)));
        }
        for (c, n) in self.explicit_codes.iter().enumerate() {
            let n = n.load(Relaxed);
            if n > 0 {
                counters.push((format!("explicit_code_{c}"), n));
            }
        }
        counters.push(("events_recorded".into(), self.ring.pushed()));
        let cs = self.cs_latency.snapshot();
        let hold = self.lock_hold.snapshot();
        counters.push(("cs_latency_count".into(), cs.count));
        counters.push(("lock_hold_count".into(), hold.count));
        let mut gauges: Vec<(String, f64)> = vec![
            ("cs_latency_p50".into(), cs.percentile(0.50) as f64),
            ("cs_latency_p99".into(), cs.percentile(0.99) as f64),
            ("cs_latency_max".into(), cs.max as f64),
            ("lock_hold_p99".into(), hold.percentile(0.99) as f64),
        ];
        let mut windows = Vec::new();
        if let Some(w) = &self.windows {
            counters.push(("windows_closed".into(), w.epoch()));
            counters.push(("windows_dropped".into(), w.series_dropped()));
            gauges.push(("window_len_ms".into(), (w.window_len_ns() / 1_000_000) as f64));
            windows = w.series();
            let tail = windows.len().saturating_sub(crate::registry::SCRAPE_WINDOW_TAIL);
            windows.drain(..tail);
        }
        crate::registry::SourceSnapshot {
            kind: "recorder",
            counters,
            gauges,
            windows,
            labels: Vec::new(),
        }
    }
}

impl Outcome {
    /// Index into the per-outcome abort counter array (1..=6; commit is 0
    /// and never used as an abort index).
    pub(crate) fn kind_index(self) -> usize {
        match self {
            Outcome::Commit => 0,
            Outcome::AbortConflict => 1,
            Outcome::AbortCapacity => 2,
            Outcome::AbortExplicit(_) => 3,
            Outcome::AbortUnsupported => 4,
            Outcome::AbortNested => 5,
            Outcome::AbortSpurious => 6,
        }
    }
}

/// A complete, self-describing export of a [`Recorder`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// [`SCHEMA_VERSION`] at export time.
    pub schema_version: u64,
    /// `"ns"` or `"cycles"` — the unit of every latency field below.
    pub latency_unit: String,
    /// Sampling rate the data was collected at (1 in `2^sample_shift`).
    pub sample_shift: u32,
    /// Sampled commits by path label.
    pub commits: Vec<(String, u64)>,
    /// Sampled aborts by outcome label.
    pub aborts: Vec<(String, u64)>,
    /// Sampled explicit aborts by protocol code.
    pub explicit_codes: Vec<(u64, u64)>,
    /// Critical-section latency of committed attempts.
    pub cs_latency: HistSnapshot,
    /// Fallback lock hold time per acquisition.
    pub lock_hold: HistSnapshot,
    /// Attempts before commit (0 = committed first try).
    pub retries: HistSnapshot,
    /// Adaptive-policy decision trace, oldest first.
    pub decisions: Vec<AdaptDecision>,
    /// Total events pushed to the ring (monotone, includes overwritten).
    pub events_recorded: u64,
    /// Events resident in the ring at snapshot time.
    pub recent_events: Vec<AttemptEvent>,
    /// Closed telemetry windows (oldest first); empty when the recorder
    /// was configured without a window collector. Schema v2.
    pub windows: Vec<WindowSnapshot>,
}

impl ObsSnapshot {
    /// Total sampled commits across paths.
    pub fn total_commits(&self) -> u64 {
        self.commits.iter().map(|&(_, n)| n).sum()
    }

    /// Total sampled aborts across causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().map(|&(_, n)| n).sum()
    }

    /// JSON form (the schema that `--json` files carry).
    pub fn to_json(&self) -> Json {
        fn counts(pairs: &[(String, u64)]) -> Json {
            Json::Obj(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                    .collect(),
            )
        }
        Json::obj([
            ("schema_version", Json::UInt(self.schema_version)),
            ("latency_unit", Json::Str(self.latency_unit.clone())),
            ("sample_shift", Json::UInt(self.sample_shift as u64)),
            ("commits", counts(&self.commits)),
            ("aborts", counts(&self.aborts)),
            (
                "explicit_codes",
                Json::Arr(
                    self.explicit_codes
                        .iter()
                        .map(|&(c, n)| Json::Arr(vec![Json::UInt(c), Json::UInt(n)]))
                        .collect(),
                ),
            ),
            ("cs_latency", self.cs_latency.to_json()),
            ("lock_hold", self.lock_hold.to_json()),
            ("retries", self.retries.to_json()),
            (
                "decisions",
                Json::Arr(self.decisions.iter().map(AdaptDecision::to_json).collect()),
            ),
            ("events_recorded", Json::UInt(self.events_recorded)),
            (
                "recent_events",
                Json::Arr(
                    self.recent_events
                        .iter()
                        .map(AttemptEvent::to_json)
                        .collect(),
                ),
            ),
            (
                "windows",
                Json::Arr(self.windows.iter().map(WindowSnapshot::to_json).collect()),
            ),
        ])
    }

    /// Rebuilds a snapshot from [`Self::to_json`] output. `None` on
    /// schema mismatch (including an unknown `schema_version`).
    pub fn from_json(j: &Json) -> Option<ObsSnapshot> {
        let version = j.get("schema_version")?.as_u64()?;
        if version != SCHEMA_VERSION {
            return None;
        }
        fn counts(j: &Json) -> Option<Vec<(String, u64)>> {
            match j {
                Json::Obj(m) => m
                    .iter()
                    .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                    .collect(),
                _ => None,
            }
        }
        fn decision(j: &Json) -> Option<AdaptDecision> {
            let action = match j.get("action")?.as_str()? {
                "shrink" => AdaptAction::Shrink,
                "grow" => AdaptAction::Grow,
                "collapse" => AdaptAction::Collapse,
                "reenable" => AdaptAction::Reenable,
                _ => return None,
            };
            let hot_slot = match (j.get("hot_slot"), j.get("hot_slot_conflicts")) {
                (Some(s), Some(c)) => Some((s.as_u64()?, c.as_u64()?)),
                _ => None,
            };
            Some(AdaptDecision {
                action,
                orecs_before: j.get("orecs_before")?.as_u64()?,
                orecs_after: j.get("orecs_after")?.as_u64()?,
                slow_commits: j.get("slow_commits")?.as_u64()?,
                slow_aborts: j.get("slow_aborts")?.as_u64()?,
                hot_slot,
            })
        }
        fn attempt(j: &Json) -> Option<AttemptEvent> {
            let path = match j.get("path")?.as_str()? {
                "fast_htm" => PathKind::FastHtm,
                "slow_htm" => PathKind::SlowHtm,
                "lock" => PathKind::Lock,
                _ => return None,
            };
            let outcome = match j.get("outcome")?.as_str()? {
                "commit" => Outcome::Commit,
                "conflict" => Outcome::AbortConflict,
                "capacity" => Outcome::AbortCapacity,
                "explicit" => {
                    Outcome::AbortExplicit(j.get("abort_code")?.as_u64()? as u8)
                }
                "unsupported" => Outcome::AbortUnsupported,
                "nested" => Outcome::AbortNested,
                "spurious" => Outcome::AbortSpurious,
                _ => return None,
            };
            Some(AttemptEvent {
                path,
                outcome,
                attempt: j.get("attempt")?.as_u64()? as u8,
                latency: j.get("latency")?.as_u64()?,
            })
        }
        Some(ObsSnapshot {
            schema_version: version,
            latency_unit: j.get("latency_unit")?.as_str()?.to_string(),
            sample_shift: j.get("sample_shift")?.as_u64()? as u32,
            commits: counts(j.get("commits")?)?,
            aborts: counts(j.get("aborts")?)?,
            explicit_codes: j
                .get("explicit_codes")?
                .as_arr()?
                .iter()
                .map(|pair| {
                    let p = pair.as_arr()?;
                    Some((p.first()?.as_u64()?, p.get(1)?.as_u64()?))
                })
                .collect::<Option<Vec<_>>>()?,
            cs_latency: HistSnapshot::from_json(j.get("cs_latency")?)?,
            lock_hold: HistSnapshot::from_json(j.get("lock_hold")?)?,
            retries: HistSnapshot::from_json(j.get("retries")?)?,
            decisions: j
                .get("decisions")?
                .as_arr()?
                .iter()
                .map(decision)
                .collect::<Option<Vec<_>>>()?,
            events_recorded: j.get("events_recorded")?.as_u64()?,
            recent_events: j
                .get("recent_events")?
                .as_arr()?
                .iter()
                .map(attempt)
                .collect::<Option<Vec<_>>>()?,
            windows: j
                .get("windows")?
                .as_arr()?
                .iter()
                .map(WindowSnapshot::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// A compact human-readable report (what [`TextSink`] writes).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "observability snapshot (schema v{}, latencies in {}, 1-in-{} sampling)",
            self.schema_version,
            self.latency_unit,
            1u64 << self.sample_shift
        );
        let tc = self.total_commits().max(1);
        let _ = writeln!(out, "  commits by path:");
        for (label, n) in &self.commits {
            let _ = writeln!(
                out,
                "    {label:<10} {n:>12}  ({:.1}%)",
                *n as f64 * 100.0 / tc as f64
            );
        }
        let ta = self.total_aborts();
        let _ = writeln!(out, "  aborts by cause ({ta} total):");
        for (label, n) in &self.aborts {
            if *n > 0 {
                let _ = writeln!(
                    out,
                    "    {label:<12} {n:>12}  ({:.1}%)",
                    *n as f64 * 100.0 / ta.max(1) as f64
                );
            }
        }
        for &(code, n) in &self.explicit_codes {
            let _ = writeln!(out, "      explicit code {code}: {n}");
        }
        for (name, h) in [
            ("cs_latency", &self.cs_latency),
            ("lock_hold", &self.lock_hold),
            ("retries", &self.retries),
        ] {
            let _ = writeln!(
                out,
                "  {name:<10} n={} mean={:.1} p50={} p99={} max={}",
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.99),
                h.max
            );
        }
        if !self.decisions.is_empty() {
            let _ = writeln!(out, "  adaptive decisions ({}):", self.decisions.len());
            for d in &self.decisions {
                let hot = match d.hot_slot {
                    Some((slot, n)) => format!("  hot slot {slot} ({n} conflicts)"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    {:<9} orecs {} -> {}  (window: {} slow commits, {} slow aborts){hot}",
                    d.action.label(),
                    d.orecs_before,
                    d.orecs_after,
                    d.slow_commits,
                    d.slow_aborts
                );
            }
        }
        let _ = writeln!(
            out,
            "  events: {} recorded, {} resident in ring",
            self.events_recorded,
            self.recent_events.len()
        );
        if let Some(last) = self.windows.last() {
            let _ = writeln!(
                out,
                "  windows: {} closed; last: {} ops, p50={} p99={} p999={}, fallback {:.1}%",
                self.windows.len(),
                last.ops(),
                last.latency_p(0.50),
                last.latency_p(0.99),
                last.latency_p(0.999),
                last.fallback_rate() * 100.0
            );
        }
        out
    }
}

/// A destination for snapshots.
pub trait Sink {
    /// Delivers one snapshot.
    fn emit(&mut self, snap: &ObsSnapshot) -> std::io::Result<()>;
}

/// Keeps emitted snapshots in memory (tests, programmatic consumers).
#[derive(Default)]
pub struct MemorySink {
    /// Snapshots in emission order.
    pub snapshots: Vec<ObsSnapshot>,
}

impl Sink for MemorySink {
    fn emit(&mut self, snap: &ObsSnapshot) -> std::io::Result<()> {
        self.snapshots.push(snap.clone());
        Ok(())
    }
}

/// Writes [`ObsSnapshot::render_text`] to any [`Write`] (stderr, a log
/// file).
pub struct TextSink<W: Write> {
    w: W,
}

impl<W: Write> TextSink<W> {
    /// A text sink over `w`.
    pub fn new(w: W) -> Self {
        TextSink { w }
    }
}

impl<W: Write> Sink for TextSink<W> {
    fn emit(&mut self, snap: &ObsSnapshot) -> std::io::Result<()> {
        self.w.write_all(snap.render_text().as_bytes())
    }
}

/// Writes pretty-printed snapshot JSON to any [`Write`].
pub struct JsonSink<W: Write> {
    w: W,
}

impl<W: Write> JsonSink<W> {
    /// A JSON sink over `w`.
    pub fn new(w: W) -> Self {
        JsonSink { w }
    }
}

impl<W: Write> Sink for JsonSink<W> {
    fn emit(&mut self, snap: &ObsSnapshot) -> std::io::Result<()> {
        self.w.write_all(snap.to_json().to_string_pretty().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn commit(path: PathKind, attempt: u8, latency: u64) -> AttemptEvent {
        AttemptEvent {
            path,
            outcome: Outcome::Commit,
            attempt,
            latency,
        }
    }

    #[test]
    fn sampling_mask() {
        let all = Recorder::new(ObsConfig::default());
        assert!((0..100).all(|i| all.should_sample(i)));
        let sixteenth = Recorder::new(ObsConfig {
            sample_shift: 4,
            ..ObsConfig::default()
        });
        assert_eq!((0..160).filter(|&i| sixteenth.should_sample(i)).count(), 10);
    }

    #[test]
    fn counters_and_histograms_populate() {
        let r = Recorder::new(ObsConfig::default());
        r.record_attempt(0, commit(PathKind::FastHtm, 0, 100));
        r.record_attempt(0, commit(PathKind::FastHtm, 2, 300));
        r.record_attempt(
            0,
            AttemptEvent {
                path: PathKind::SlowHtm,
                outcome: Outcome::AbortExplicit(4),
                attempt: 1,
                latency: 0,
            },
        );
        r.record_attempt(0, commit(PathKind::Lock, 3, 9_000));
        r.record_lock_hold(8_500);
        let s = r.snapshot();
        assert_eq!(s.total_commits(), 3);
        assert_eq!(s.total_aborts(), 1);
        assert_eq!(
            s.commits,
            vec![
                ("fast_htm".to_string(), 2),
                ("lock".to_string(), 1),
                ("slow_htm".to_string(), 0)
            ]
        );
        assert_eq!(s.explicit_codes, vec![(4, 1)]);
        assert_eq!(s.cs_latency.count, 3);
        assert_eq!(s.retries.count, 3);
        assert_eq!(s.lock_hold.count, 1);
        assert_eq!(s.recent_events.len(), 4);
    }

    #[test]
    fn json_sink_round_trips_snapshot() {
        let r = Recorder::new(ObsConfig {
            latency_unit: "cycles",
            ..ObsConfig::default()
        });
        for i in 0..200u64 {
            r.record_attempt(i % 4, commit(PathKind::FastHtm, (i % 3) as u8, i * 13));
        }
        r.record_attempt(
            1,
            AttemptEvent {
                path: PathKind::SlowHtm,
                outcome: Outcome::AbortConflict,
                attempt: 0,
                latency: 0,
            },
        );
        r.record_lock_hold(4_000);
        r.record_decision(AdaptDecision {
            action: AdaptAction::Grow,
            orecs_before: 64,
            orecs_after: 128,
            slow_commits: 2,
            slow_aborts: 11,
            hot_slot: Some((17, 9)),
        });
        let snap = r.snapshot();

        let mut buf = Vec::new();
        JsonSink::new(&mut buf).emit(&snap).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = crate::json::parse(&text).expect("sink output parses");
        let back = ObsSnapshot::from_json(&parsed).expect("schema round-trips");
        assert_eq!(back, snap);
        assert_eq!(back.decisions[0].action, AdaptAction::Grow);
        assert_eq!(back.latency_unit, "cycles");
    }

    #[test]
    fn windowed_recorder_rotates_and_round_trips() {
        assert!(
            Recorder::new(ObsConfig::default()).windows().is_none(),
            "window collector must be opt-in"
        );
        let r = Recorder::new(ObsConfig {
            window_len_ms: 50,
            window_stripes: 2,
            ..ObsConfig::default()
        });
        for i in 0..40u64 {
            r.record_attempt(i % 2, commit(PathKind::FastHtm, 0, 100));
            r.record_op_latency(i % 2, 1_000 + i * 10);
        }
        let rot = r.windows().expect("collector configured").rotate();
        assert_eq!(rot.merged.ops(), 40);
        assert_eq!(rot.merged.counts.commits[0], 40, "attempts forwarded");

        let snap = r.snapshot();
        assert_eq!(snap.windows.len(), 1);
        assert!(snap.windows[0].latency_p(0.999) >= snap.windows[0].latency_p(0.5));
        let parsed = crate::json::parse(&snap.to_json().to_string()).unwrap();
        let back = ObsSnapshot::from_json(&parsed).expect("v2 round-trips");
        assert_eq!(back, snap);
        assert!(snap.render_text().contains("windows: 1 closed"));
    }

    #[test]
    fn live_snapshot_is_non_destructive() {
        use crate::registry::LiveSource;
        let r = Recorder::new(ObsConfig {
            window_len_ms: 50,
            ..ObsConfig::default()
        });
        for i in 0..32u64 {
            r.record_attempt(0, commit(PathKind::FastHtm, 0, 100 + i));
            r.record_op_latency(0, 500);
        }
        r.windows().unwrap().rotate();

        let live1 = r.live_snapshot();
        let live2 = r.live_snapshot();
        assert_eq!(live1.counters, live2.counters, "scrapes must not drain anything");
        assert!(live1.counters.contains(&("commits_fast_htm".to_string(), 32)));
        assert!(live1.counters.contains(&("events_recorded".to_string(), 32)));
        assert_eq!(live1.windows.len(), 1);
        assert_eq!(live1.windows[0].ops(), 32);

        // The destructive end-of-run snapshot still sees every resident
        // ring event after any number of scrapes.
        let snap = r.snapshot();
        assert_eq!(snap.recent_events.len(), 32);
        assert_eq!(snap.total_commits(), 32);
    }

    #[test]
    fn from_json_rejects_unknown_schema_version() {
        let r = Recorder::new(ObsConfig::default());
        let mut j = r.snapshot().to_json();
        if let Json::Obj(m) = &mut j {
            m.insert("schema_version".into(), Json::UInt(999));
        }
        assert!(ObsSnapshot::from_json(&j).is_none());
    }

    #[test]
    fn memory_and_text_sinks() {
        let r = Recorder::new(ObsConfig::default());
        r.record_attempt(0, commit(PathKind::FastHtm, 0, 42));
        r.record_decision(AdaptDecision {
            action: AdaptAction::Collapse,
            orecs_before: 1,
            orecs_after: 1,
            slow_commits: 0,
            slow_aborts: 0,
            hot_slot: None,
        });
        let snap = r.snapshot();

        let mut mem = MemorySink::default();
        mem.emit(&snap).unwrap();
        assert_eq!(mem.snapshots.len(), 1);
        assert_eq!(mem.snapshots[0].total_commits(), 1);

        let mut buf = Vec::new();
        TextSink::new(&mut buf).emit(&snap).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("commits by path"));
        assert!(text.contains("collapse"));
        assert!(text.contains("fast_htm"));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = Arc::new(Recorder::new(ObsConfig::default()));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        if i % 5 == 4 {
                            r.record_attempt(
                                t,
                                AttemptEvent {
                                    path: PathKind::SlowHtm,
                                    outcome: Outcome::AbortConflict,
                                    attempt: 0,
                                    latency: 0,
                                },
                            );
                        } else {
                            r.record_attempt(t, commit(PathKind::FastHtm, 1, i % 1_000));
                        }
                    }
                })
            })
            .collect();
        // Snapshot while writers are running: must never panic or tear.
        for _ in 0..20 {
            let s = r.snapshot();
            assert!(s.total_commits() <= 8 * 8_000);
            assert!(s.cs_latency.count == s.total_commits());
        }
        for t in threads {
            t.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.total_commits(), 8 * 8_000);
        assert_eq!(s.total_aborts(), 8 * 2_000);
        assert_eq!(s.retries.count, 8 * 8_000);
        assert_eq!(s.events_recorded, 8 * 10_000);
    }
}
