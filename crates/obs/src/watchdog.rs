//! The collapse watchdog: inspects each closed telemetry window and
//! flags the failure signatures the paper's elision runtimes exhibit
//! under pathological load, dumping a postmortem "flight record" on
//! trigger.
//!
//! Three signatures are recognised:
//!
//! * **Fallback collapse** (the classic TLE lemming effect): the
//!   pessimistic-lock share of commits spikes past
//!   [`WatchdogConfig::fallback_spike`] **while** the commit rate falls
//!   below [`WatchdogConfig::commit_floor_frac`] of the trailing healthy
//!   mean. Either alone is benign — a lock-heavy-but-fast phase, or a
//!   quiet period — together they mean the lock convoy is starving HTM.
//! * **Conflict storm**: aborts-per-commit stays above
//!   [`WatchdogConfig::storm_aborts_per_commit`] for
//!   [`WatchdogConfig::storm_windows`] consecutive windows (sustained
//!   OREC_CONFLICT storms from pessimistic audits stamping the orec
//!   table look exactly like this).
//! * **Convoy stall**: the commit rate drops below
//!   [`WatchdogConfig::stall_rate_frac`] of the trailing mean **while**
//!   the window's p99 latency exceeds the window length itself, for
//!   [`WatchdogConfig::stall_windows`] consecutive windows. This is the
//!   quiet convoy the other two miss: when waiters politely spin (or
//!   yield) behind a long pessimistic hold, nothing aborts and nothing
//!   falls back — throughput simply halves while every op's latency
//!   blows past a full window. The latency guard keeps genuinely idle
//!   periods (low rate, instant ops) from masquerading as a stall.
//!
//! The watchdog arms only after [`WatchdogConfig::warmup_windows`]
//! healthy windows so startup noise cannot trigger it, and collapsed
//! windows are kept **out** of the trailing mean so a long incident
//! cannot normalise itself.
//!
//! On trigger, [`flight_record`] assembles the postmortem JSON: the
//! triggering verdict, the trailing window series, and the last K
//! attempt events from the recorder's per-thread rings — enough for
//! offline `diag --timeline` analysis without any live re-run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::recorder::{ObsSnapshot, SCHEMA_VERSION};
use crate::registry::{LiveSource, SourceSnapshot};
use crate::window::WindowSnapshot;

/// Thresholds for the collapse signatures. The defaults are tuned on
/// the `shard_bench`/`slo_bench` collapse reproductions: a healthy
/// elided map stays under 5% fallback and ~0.5 aborts/commit even
/// under storms, while a convoyed single lock blows through all three
/// thresholds at once.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Fallback-rate spike threshold (fraction of commits on the lock
    /// path) for the collapse signature.
    pub fallback_spike: f64,
    /// Commit-rate floor, as a fraction of the trailing healthy mean.
    pub commit_floor_frac: f64,
    /// Aborts-per-commit level that counts a window toward a storm.
    pub storm_aborts_per_commit: f64,
    /// Consecutive stormy windows required to flag a conflict storm.
    pub storm_windows: usize,
    /// Commit-rate fraction (of the trailing mean) below which a window
    /// counts toward a convoy stall.
    pub stall_rate_frac: f64,
    /// p99-latency floor for a stall window, as a multiple of the
    /// window length (1.0 = ops are waiting longer than a whole window).
    pub stall_p99_factor: f64,
    /// Consecutive stalled windows required to flag a convoy stall.
    pub stall_windows: usize,
    /// Healthy windows required before the watchdog arms.
    pub warmup_windows: usize,
    /// Trailing-mean horizon (healthy windows remembered).
    pub trailing: usize,
    /// Windows with fewer total commits than this are ignored entirely
    /// (idle tails, rotator jitter).
    pub min_commits: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            fallback_spike: 0.5,
            commit_floor_frac: 0.35,
            storm_aborts_per_commit: 4.0,
            storm_windows: 2,
            stall_rate_frac: 0.5,
            stall_p99_factor: 1.0,
            stall_windows: 2,
            warmup_windows: 3,
            trailing: 8,
            min_commits: 16,
        }
    }
}

/// Which signature fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseKind {
    /// Fallback-rate spike + commit-rate floor.
    FallbackCollapse,
    /// Sustained aborts-per-commit storm.
    ConflictStorm,
    /// Sustained rate halving with p99 past the window length: a quiet
    /// lock convoy with no abort or fallback evidence.
    ConvoyStall,
}

impl CollapseKind {
    /// Stable lowercase label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            CollapseKind::FallbackCollapse => "fallback_collapse",
            CollapseKind::ConflictStorm => "conflict_storm",
            CollapseKind::ConvoyStall => "convoy_stall",
        }
    }

    /// Small numeric code for atomic mirrors (0 is reserved for "no
    /// verdict yet").
    pub fn code(self) -> u64 {
        match self {
            CollapseKind::FallbackCollapse => 1,
            CollapseKind::ConflictStorm => 2,
            CollapseKind::ConvoyStall => 3,
        }
    }
}

/// One watchdog verdict: the signature plus the evidence it fired on.
#[derive(Debug, Clone, PartialEq)]
pub struct CollapseEvent {
    /// Which signature fired.
    pub kind: CollapseKind,
    /// Index of the window that tripped it.
    pub window_index: u64,
    /// That window's fallback rate.
    pub fallback_rate: f64,
    /// That window's commit rate (commits/s).
    pub commit_rate: f64,
    /// Trailing healthy-mean commit rate at trigger time.
    pub trailing_commit_rate: f64,
    /// That window's aborts-per-commit ratio.
    pub aborts_per_commit: f64,
    /// That window's p99 latency (ns).
    pub latency_p99_ns: u64,
}

impl CollapseEvent {
    /// JSON form for exports and flight records.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind.label().into())),
            ("window_index", Json::UInt(self.window_index)),
            ("fallback_rate", Json::Num(self.fallback_rate)),
            ("commit_rate", Json::Num(self.commit_rate)),
            ("trailing_commit_rate", Json::Num(self.trailing_commit_rate)),
            ("aborts_per_commit", Json::Num(self.aborts_per_commit)),
            ("latency_p99_ns", Json::UInt(self.latency_p99_ns)),
        ])
    }
}

/// Scrape-visible mirror of the watchdog's state. The watchdog itself
/// is single-consumer and rides the rotator thread; the mirror is a
/// handful of relaxed atomics the rotator publishes into on every
/// [`Watchdog::inspect`], so a live scrape can report armed/fired
/// status without touching the watchdog's internals or its thread.
#[derive(Debug, Default)]
pub struct WatchdogLive {
    armed: AtomicBool,
    windows_inspected: AtomicU64,
    fired_total: AtomicU64,
    /// [`CollapseKind::code`] of the most recent verdict, 0 if none.
    last_kind: AtomicU64,
    /// Window index of the most recent verdict.
    last_window: AtomicU64,
    /// Path of the most recent flight-record dump, if the harness wrote
    /// one. Scrape-side only; never touched by hot-path writers.
    flight_path: Mutex<Option<String>>,
}

impl WatchdogLive {
    /// A fresh mirror: disarmed, nothing fired.
    pub fn new() -> WatchdogLive {
        WatchdogLive::default()
    }

    /// True once the watchdog has seen its warmup windows.
    pub fn armed(&self) -> bool {
        self.armed.load(Relaxed)
    }

    /// Total verdicts so far.
    pub fn fired_total(&self) -> u64 {
        self.fired_total.load(Relaxed)
    }

    /// Label of the most recent verdict, if any fired yet.
    pub fn last_kind(&self) -> Option<&'static str> {
        match self.last_kind.load(Relaxed) {
            1 => Some(CollapseKind::FallbackCollapse.label()),
            2 => Some(CollapseKind::ConflictStorm.label()),
            3 => Some(CollapseKind::ConvoyStall.label()),
            _ => None,
        }
    }

    /// Records where the harness dumped a flight record, so scrapes can
    /// advertise that a postmortem exists.
    pub fn set_flight_record_path(&self, path: impl Into<String>) {
        *self.flight_path.lock().unwrap() = Some(path.into());
    }

    /// The last recorded flight-record path, if any.
    pub fn flight_record_path(&self) -> Option<String> {
        self.flight_path.lock().unwrap().clone()
    }

    fn publish(&self, armed: bool, verdict: Option<&CollapseEvent>) {
        self.windows_inspected.fetch_add(1, Relaxed);
        self.armed.store(armed, Relaxed);
        if let Some(ev) = verdict {
            self.fired_total.fetch_add(1, Relaxed);
            self.last_kind.store(ev.kind.code(), Relaxed);
            self.last_window.store(ev.window_index, Relaxed);
        }
    }
}

impl LiveSource for WatchdogLive {
    fn live_snapshot(&self) -> SourceSnapshot {
        SourceSnapshot {
            kind: "watchdog",
            counters: vec![
                ("windows_inspected".into(), self.windows_inspected.load(Relaxed)),
                ("collapse_fired_total".into(), self.fired_total.load(Relaxed)),
                ("collapse_last_kind_code".into(), self.last_kind.load(Relaxed)),
                ("collapse_last_window".into(), self.last_window.load(Relaxed)),
            ],
            gauges: vec![
                ("armed".into(), if self.armed() { 1.0 } else { 0.0 }),
                (
                    "flight_record_available".into(),
                    if self.flight_path.lock().unwrap().is_some() { 1.0 } else { 0.0 },
                ),
            ],
            windows: Vec::new(),
            labels: Vec::new(),
        }
    }
}

/// The watchdog: feed it each closed window via [`Watchdog::inspect`].
/// Single-consumer by design — it rides the rotator thread.
pub struct Watchdog {
    cfg: WatchdogConfig,
    /// Commit rates of recent *healthy* windows (collapsed windows are
    /// excluded so an incident cannot drag the baseline down to itself).
    trailing: VecDeque<f64>,
    /// Consecutive stormy windows seen so far.
    storm_run: usize,
    /// Consecutive stalled windows seen so far.
    stall_run: usize,
    events: Vec<CollapseEvent>,
    /// Optional scrape mirror, published on every inspect.
    live: Option<Arc<WatchdogLive>>,
}

impl Watchdog {
    /// A watchdog with the given thresholds.
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            trailing: VecDeque::new(),
            storm_run: 0,
            stall_run: 0,
            events: Vec::new(),
            live: None,
        }
    }

    /// The scrape mirror for this watchdog, created on first call.
    /// Register the returned `Arc` with a
    /// [`crate::MetricsRegistry`]; every subsequent
    /// [`Watchdog::inspect`] publishes into it.
    pub fn live(&mut self) -> Arc<WatchdogLive> {
        Arc::clone(self.live.get_or_insert_with(|| Arc::new(WatchdogLive::new())))
    }

    /// Mean commit rate of the trailing healthy windows (0.0 pre-warmup).
    pub fn trailing_commit_rate(&self) -> f64 {
        if self.trailing.is_empty() {
            return 0.0;
        }
        self.trailing.iter().sum::<f64>() / self.trailing.len() as f64
    }

    /// Inspects one closed window; returns the verdict if a signature
    /// fired. Verdicts are also accumulated in [`Watchdog::events`].
    pub fn inspect(&mut self, w: &WindowSnapshot) -> Option<CollapseEvent> {
        if w.counts.total_commits() < self.cfg.min_commits {
            // Idle window: no evidence either way; do not advance the
            // storm run or pollute the trailing mean.
            return None;
        }
        let commit_rate = w.commit_rate();
        let trailing_rate = self.trailing_commit_rate();
        let armed = self.trailing.len() >= self.cfg.warmup_windows;

        let mut fired: Option<CollapseKind> = None;
        if armed {
            let collapsed = w.fallback_rate() >= self.cfg.fallback_spike
                && commit_rate <= trailing_rate * self.cfg.commit_floor_frac;
            if collapsed {
                fired = Some(CollapseKind::FallbackCollapse);
            }
            if w.aborts_per_commit() >= self.cfg.storm_aborts_per_commit {
                self.storm_run += 1;
                if fired.is_none() && self.storm_run >= self.cfg.storm_windows {
                    fired = Some(CollapseKind::ConflictStorm);
                    self.storm_run = 0;
                }
            } else {
                self.storm_run = 0;
            }
            let stall_p99_floor = w.len_ns as f64 * self.cfg.stall_p99_factor;
            let stalled = commit_rate <= trailing_rate * self.cfg.stall_rate_frac
                && w.latency_p(0.99) as f64 >= stall_p99_floor;
            if stalled {
                self.stall_run += 1;
                if fired.is_none() && self.stall_run >= self.cfg.stall_windows {
                    fired = Some(CollapseKind::ConvoyStall);
                    self.stall_run = 0;
                }
            } else {
                self.stall_run = 0;
            }
        }

        let verdict = match fired {
            Some(kind) => {
                let ev = CollapseEvent {
                    kind,
                    window_index: w.index,
                    fallback_rate: w.fallback_rate(),
                    commit_rate,
                    trailing_commit_rate: trailing_rate,
                    aborts_per_commit: w.aborts_per_commit(),
                    latency_p99_ns: w.latency_p(0.99),
                };
                self.events.push(ev.clone());
                Some(ev)
            }
            None => {
                self.trailing.push_back(commit_rate);
                if self.trailing.len() > self.cfg.trailing {
                    self.trailing.pop_front();
                }
                None
            }
        };
        if let Some(live) = &self.live {
            let armed_now = self.trailing.len() >= self.cfg.warmup_windows;
            live.publish(armed || armed_now, verdict.as_ref());
        }
        verdict
    }

    /// Every verdict so far, oldest first.
    pub fn events(&self) -> &[CollapseEvent] {
        &self.events
    }
}

/// Assembles the postmortem flight-record document (`kind:
/// "flight-record"`): the triggering verdict, the trailing window
/// series, and the recorder's recent attempt events. Written to a file
/// by the harness, read back by `diag --timeline`. `taken_at_ns` is
/// stamped from the shared [`crate::epoch`] timebase, so the record can
/// be lined up against live scrapes of the same process.
pub fn flight_record(
    trigger: &CollapseEvent,
    windows: &[WindowSnapshot],
    obs: &ObsSnapshot,
) -> Json {
    Json::obj([
        ("kind", Json::Str("flight-record".into())),
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        ("tool", Json::Str("watchdog".into())),
        ("taken_at_ns", Json::UInt(crate::epoch::now_ns())),
        ("latency_unit", Json::Str(obs.latency_unit.clone())),
        ("trigger", trigger.to_json()),
        (
            "windows",
            Json::Arr(windows.iter().map(WindowSnapshot::to_json).collect()),
        ),
        ("events_recorded", Json::UInt(obs.events_recorded)),
        (
            "recent_events",
            Json::Arr(obs.recent_events.iter().map(|e| e.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistSnapshot;
    use crate::window::WindowCounts;

    /// Builds a window snapshot the way a rotator would have produced
    /// it from live counters: per-path commits, conflict + explicit
    /// aborts, and a flat latency distribution at `lat_ns`.
    fn window(
        index: u64,
        len_ms: u64,
        commits: [u64; 3],
        conflicts: u64,
        orec_explicit: u64,
        lat_ns: u64,
    ) -> WindowSnapshot {
        let total_ops = commits.iter().sum::<u64>();
        let mut aborts = [0u64; 7];
        aborts[1] = conflicts; // conflict
        aborts[3] = orec_explicit; // explicit
        let mut explicit = [0u64; 8];
        explicit[4] = orec_explicit; // OREC_CONFLICT protocol code
        WindowSnapshot {
            index,
            start_ns: index * len_ms * 1_000_000,
            len_ns: len_ms * 1_000_000,
            counts: WindowCounts {
                commits,
                aborts,
                explicit,
                latency: HistSnapshot {
                    count: total_ops,
                    total: total_ops * lat_ns,
                    max: lat_ns,
                    buckets: vec![(lat_ns, total_ops)],
                },
            },
        }
    }

    /// Replays the collapse trace recorded from a single-lock
    /// `shard_bench`-style run: ~9.5k commits/s nearly all on HTM, then
    /// pessimistic audits convoy the lock — fallback share jumps to
    /// ~70% while throughput drops 15x and OREC_CONFLICT aborts storm.
    /// The watchdog must fire on the first collapsed window.
    #[test]
    fn fires_on_recorded_single_lock_collapse() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        for i in 0..5 {
            let w = window(i, 100, [900, 45, 5], 60, 12, 8_000);
            assert_eq!(wd.inspect(&w), None, "healthy window {i} must not fire");
        }
        let baseline = wd.trailing_commit_rate();
        assert!(baseline > 9_000.0, "baseline {baseline}");

        let collapsed = window(5, 100, [15, 3, 42], 180, 5_000, 2_500_000);
        let ev = wd.inspect(&collapsed).expect("collapse must trigger");
        assert_eq!(ev.kind, CollapseKind::FallbackCollapse);
        assert_eq!(ev.window_index, 5);
        assert!(ev.fallback_rate > 0.5, "fallback {}", ev.fallback_rate);
        assert!(
            ev.commit_rate < baseline * 0.35,
            "rate {} vs baseline {baseline}",
            ev.commit_rate
        );
        assert_eq!(wd.events().len(), 1);

        // The incident must not become the new baseline: a second
        // collapsed window still fires.
        let ev2 = wd.inspect(&window(6, 100, [10, 2, 50], 200, 6_000, 3_000_000));
        assert_eq!(ev2.unwrap().kind, CollapseKind::FallbackCollapse);
        assert!(
            (wd.trailing_commit_rate() - baseline).abs() < 1.0,
            "collapsed windows must stay out of the trailing mean"
        );
    }

    #[test]
    fn stays_silent_on_the_sharded_trace_at_identical_load() {
        // The sharded run under the same storm: audits pin one shard,
        // the rest keep committing — fallback stays low, rate dips but
        // stays above the floor.
        let mut wd = Watchdog::new(WatchdogConfig::default());
        for i in 0..5 {
            assert!(wd.inspect(&window(i, 100, [920, 60, 8], 70, 15, 7_000)).is_none());
        }
        for i in 5..8 {
            // Storm windows: ~20% dip, modest fallback, some conflicts.
            let w = window(i, 100, [700, 80, 30], 300, 400, 40_000);
            assert!(wd.inspect(&w).is_none(), "sharded storm window {i} fired");
        }
        assert!(wd.events().is_empty());
    }

    #[test]
    fn sustained_orec_storm_fires_without_a_rate_floor() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        for i in 0..4 {
            wd.inspect(&window(i, 100, [800, 100, 10], 80, 20, 9_000));
        }
        // Aborts-per-commit ~5.5 but commit rate holds: only the storm
        // signature applies, and only after two consecutive windows.
        let stormy = |i| window(i, 100, [500, 300, 20], 1_500, 3_000, 30_000);
        assert_eq!(wd.inspect(&stormy(4)), None, "one stormy window is noise");
        let ev = wd.inspect(&stormy(5)).expect("second consecutive window");
        assert_eq!(ev.kind, CollapseKind::ConflictStorm);
        assert!(ev.aborts_per_commit >= 4.0);

        // A healthy window resets the run.
        assert!(wd.inspect(&window(6, 100, [800, 100, 10], 80, 20, 9_000)).is_none());
        assert_eq!(wd.inspect(&stormy(7)), None, "run was reset");
    }

    /// Replays the `slo_bench` single-lock trace: blocking audits convoy
    /// the lock but every waiter politely yields — fallback stays ~2%,
    /// aborts near zero, yet throughput drops to a third and p99 blows
    /// past the window length. Only the convoy-stall signature can see
    /// this shape, and it needs two consecutive windows.
    #[test]
    fn convoy_stall_fires_without_fallback_or_abort_evidence() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        for i in 0..5 {
            let w = window(i, 125, [780, 0, 15], 10, 8, 150_000);
            assert_eq!(wd.inspect(&w), None, "healthy window {i} must not fire");
        }
        let baseline = wd.trailing_commit_rate();
        // ~220 commits / 125 ms with 150-260 ms p99 and no abort storm.
        let stalled = |i, lat| window(i, 125, [215, 0, 5], 12, 10, lat);
        assert_eq!(wd.inspect(&stalled(5, 150_000_000)), None, "one window is noise");
        let ev = wd.inspect(&stalled(6, 260_000_000)).expect("second stalled window");
        assert_eq!(ev.kind, CollapseKind::ConvoyStall);
        assert!(ev.fallback_rate < 0.05, "no fallback evidence: {}", ev.fallback_rate);
        assert!(ev.aborts_per_commit < 0.5, "no abort evidence");
        assert!(ev.commit_rate < baseline * 0.5);
        assert!(ev.latency_p99_ns >= 125_000_000);

        // A healthy window resets the run; an idle drain tail (low rate
        // but instant ops) fails the latency guard and never counts.
        assert!(wd.inspect(&window(7, 125, [780, 0, 15], 10, 8, 150_000)).is_none());
        assert_eq!(wd.inspect(&stalled(8, 130_000_000)), None, "run was reset");
        let idle_tail = window(9, 125, [50, 0, 1], 0, 0, 700_000);
        assert_eq!(wd.inspect(&idle_tail), None, "fast idle tail is not a stall");
        assert_eq!(wd.inspect(&stalled(10, 130_000_000)), None, "tail reset the run");
    }

    #[test]
    fn warmup_and_idle_windows_never_fire() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        // Unarmed: even a blatant collapse shape is ignored pre-warmup.
        let bad = window(0, 100, [2, 1, 60], 500, 900, 5_000_000);
        assert_eq!(wd.inspect(&bad), None);
        let after_warmup = wd.trailing_commit_rate();
        assert!(after_warmup > 0.0, "pre-warmup windows build the baseline");
        // Idle windows (below min_commits) are skipped entirely.
        assert_eq!(wd.inspect(&window(1, 100, [3, 0, 1], 0, 0, 100)), None);
        assert_eq!(wd.trailing_commit_rate(), after_warmup, "idle windows not tracked");
    }

    #[test]
    fn live_mirror_tracks_arming_and_verdicts() {
        let mut wd = Watchdog::new(WatchdogConfig::default());
        let live = wd.live();
        assert!(!live.armed());
        assert_eq!(live.fired_total(), 0);
        assert_eq!(live.last_kind(), None);

        for i in 0..5 {
            wd.inspect(&window(i, 100, [900, 45, 5], 60, 12, 8_000));
        }
        assert!(live.armed(), "mirror must arm after warmup");
        assert_eq!(live.fired_total(), 0);

        wd.inspect(&window(5, 100, [15, 3, 42], 180, 5_000, 2_500_000))
            .expect("collapse fires");
        assert_eq!(live.fired_total(), 1);
        assert_eq!(live.last_kind(), Some("fallback_collapse"));
        assert_eq!(live.last_window.load(Relaxed), 5);

        assert!(live.flight_record_path().is_none());
        live.set_flight_record_path("/tmp/flight.json");
        assert_eq!(live.flight_record_path().as_deref(), Some("/tmp/flight.json"));
        let snap = live.live_snapshot();
        assert_eq!(snap.kind, "watchdog");
        assert!(snap.counters.contains(&("collapse_fired_total".to_string(), 1)));
        assert!(snap.gauges.contains(&("armed".to_string(), 1.0)));
        assert!(snap.gauges.contains(&("flight_record_available".to_string(), 1.0)));
    }

    #[test]
    fn flight_record_document_shape() {
        use crate::recorder::{ObsConfig, Recorder};
        let mut wd = Watchdog::new(WatchdogConfig::default());
        let mut windows = Vec::new();
        for i in 0..4 {
            let w = window(i, 100, [900, 45, 5], 60, 12, 8_000);
            wd.inspect(&w);
            windows.push(w);
        }
        let collapsed = window(4, 100, [15, 3, 42], 180, 5_000, 2_500_000);
        let trigger = wd.inspect(&collapsed).unwrap();
        windows.push(collapsed);

        let r = Recorder::new(ObsConfig::default());
        r.record_attempt(
            0,
            crate::event::AttemptEvent {
                path: crate::event::PathKind::Lock,
                outcome: crate::event::Outcome::Commit,
                attempt: 7,
                latency: 1_000_000,
            },
        );
        let doc = flight_record(&trigger, &windows, &r.snapshot());
        let text = doc.to_string_pretty();
        let back = crate::json::parse(&text).expect("flight record parses");
        assert_eq!(back.get("kind").and_then(Json::as_str), Some("flight-record"));
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert!(
            back.get("taken_at_ns").and_then(Json::as_u64).is_some(),
            "flight records carry the process-epoch timestamp"
        );
        assert_eq!(
            back.get("trigger")
                .and_then(|t| t.get("kind"))
                .and_then(Json::as_str),
            Some("fallback_collapse")
        );
        let ws = back.get("windows").and_then(Json::as_arr).unwrap();
        assert_eq!(ws.len(), 5);
        let last = WindowSnapshot::from_json(&ws[4]).expect("windows round-trip");
        assert_eq!(last.index, 4);
        assert_eq!(
            back.get("recent_events").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );
    }
}
