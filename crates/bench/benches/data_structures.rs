//! Micro-benchmarks of the benchmark data structures themselves: AVL
//! set operations (plain and under each elision policy), the
//! transaction-safe k-mer map, and the extra set structures. Run with
//! `cargo bench`.

use std::hint::black_box;

use rtle_avltree::AvlSet;
use rtle_bench::micro::bench;
use rtle_cctsa::kmer::Kmer;
use rtle_cctsa::txmap::KmerMap;
use rtle_core::{Ctx, ElidableLock, ElisionPolicy};
use rtle_htm::PlainAccess;
use rtle_structs::{TxHashSet, TxListSet};

fn bench_avl() {
    let set = AvlSet::with_key_range(8192);
    let a = PlainAccess;
    for k in (0..8192).step_by(2) {
        set.insert(&a, k);
    }

    let mut key = 1u64;
    bench("avl/contains_plain", || {
        key = (key * 1103515245 + 12345) % 8192;
        black_box(set.contains(&a, black_box(key)));
    });
    bench("avl/insert_remove_plain", || {
        key = (key * 1103515245 + 12345) % 8192;
        if !set.insert(&a, key) {
            set.remove(&a, key);
        }
    });

    for policy in [
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 1024 },
    ] {
        let lock = ElidableLock::builder().policy(policy).build();
        bench(&format!("avl/contains_{}", policy.label()), || {
            key = (key * 1103515245 + 12345) % 8192;
            lock.execute(|ctx: &Ctx| set.contains(ctx, key));
        });
    }
}

fn bench_kmer_map() {
    let map = KmerMap::with_capacity(1 << 16);
    let a = PlainAccess;
    let mut x = 1u64;
    bench("kmer_map/record", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        map.record(
            &a,
            Kmer(x % 10_000),
            Some((x % 4) as u8),
            Some(((x >> 2) % 4) as u8),
        );
    });
    bench("kmer_map/get_hit", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        black_box(map.get(&a, Kmer(x % 10_000)));
    });
    bench("kmer_map/get_miss", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        black_box(map.get(&a, Kmer(1_000_000 + x % 10_000)));
    });
}

fn bench_assembly() {
    let genome = rtle_cctsa::Genome::synthetic(5_000, 7);
    let reads = rtle_cctsa::sample_reads(&genome, 36, 4, 0.0, 9);
    bench("assembly/sequential_pipeline_5k", || {
        black_box(rtle_cctsa::assemble::assemble_sequential(&reads, 21, 1));
    });
}

fn bench_structs() {
    let a = PlainAccess;

    let hs = TxHashSet::with_capacity(8192);
    for k in (0..4096).step_by(2) {
        hs.insert(&a, k);
    }
    let mut key = 1u64;
    bench("structs/hashset_contains", || {
        key = (key * 6364136223846793005).wrapping_add(1) % 4096;
        black_box(hs.contains(&a, key));
    });
    bench("structs/hashset_insert_remove", || {
        key = (key * 6364136223846793005).wrapping_add(1) % 4096;
        if !hs.insert(&a, key) {
            hs.remove(&a, key);
        }
    });

    let ls = TxListSet::with_key_range(512);
    for k in (0..512).step_by(2) {
        ls.insert(&a, k);
    }
    bench("structs/list_contains_256_chain", || {
        key = (key * 6364136223846793005).wrapping_add(1) % 512;
        black_box(ls.contains(&a, key));
    });
}

fn main() {
    bench_avl();
    bench_kmer_map();
    bench_assembly();
    bench_structs();
}
