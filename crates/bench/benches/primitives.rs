//! Criterion micro-benchmarks of the real (non-simulated) primitives:
//! the costs the paper's §6 narrative leans on — barrier calls, orec
//! stamps, HTM begin/commit, lock transfer — measured on the software
//! emulation so regressions in the hot paths are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rtle_core::orec::{OrecKind, OrecTable};
use rtle_core::{fast_hash, wang_mix64, Ctx, ElidableLock, ElisionPolicy, TatasLock};
use rtle_htm::{swhtm, TxCell};
use rtle_hytm::{Norec, RhNorec};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.bench_function("wang_mix64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9e37);
            black_box(wang_mix64(black_box(x)))
        })
    });
    g.bench_function("fast_hash_8192", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(64);
            black_box(fast_hash(black_box(x), 8192))
        })
    });
    g.finish();
}

fn bench_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("txcell");
    let cell = TxCell::new(1u64);
    g.bench_function("read_plain(seqlock)", |b| {
        b.iter(|| black_box(cell.read_plain()))
    });
    g.bench_function("write_plain(versioned)", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            cell.write(black_box(v));
        })
    });
    g.finish();
}

fn bench_swhtm(c: &mut Criterion) {
    let mut g = c.benchmark_group("swhtm");
    let cells: Vec<TxCell<u64>> = (0..16).map(TxCell::new).collect();
    g.bench_function("ro_txn_16_reads", |b| {
        b.iter(|| swhtm::try_txn(|| cells.iter().map(|c| c.read()).sum::<u64>()).unwrap())
    });
    g.bench_function("rw_txn_4r4w", |b| {
        b.iter(|| {
            swhtm::try_txn(|| {
                for i in 0..4 {
                    let v = cells[i].read();
                    cells[i + 8].write(v + 1);
                }
            })
            .unwrap()
        })
    });
    g.bench_function("explicit_abort", |b| {
        b.iter(|| {
            let _: Result<(), _> = swhtm::try_txn(|| rtle_htm::abort(1));
        })
    });
    g.finish();
}

fn bench_lock_and_orecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_orecs");
    let lock = TatasLock::new();
    g.bench_function("tatas_acquire_release", |b| {
        b.iter(|| {
            lock.acquire();
            lock.release();
        })
    });
    let orecs = OrecTable::new(8192);
    g.bench_function("orec_stamp", |b| {
        let mut epoch = 1u64;
        let mut addr = 0usize;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            if orecs.stamp(OrecKind::Write, black_box(addr), epoch) {
                black_box(());
            }
            epoch += 2; // fresh epoch each time so the stamp always stores
        })
    });
    g.bench_function("orec_conflict_check", |b| {
        let mut addr = 0usize;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            black_box(orecs.write_would_conflict(black_box(addr), 8192, u64::MAX))
        })
    });
    g.finish();
}

fn bench_elision_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("elidable_lock_1thr");
    for policy in [
        ElisionPolicy::LockOnly,
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 16 },
        ElisionPolicy::FgTle { orecs: 8192 },
    ] {
        let lock = ElidableLock::new(policy);
        let cell = TxCell::new(0u64);
        g.bench_function(policy.label(), |b| {
            b.iter(|| {
                lock.execute(|ctx: &Ctx| {
                    let v = ctx.read(&cell);
                    ctx.write(&cell, v + 1);
                })
            })
        });
    }
    g.finish();
}

fn bench_tms(c: &mut Criterion) {
    let mut g = c.benchmark_group("tm_1thr");
    let norec = Norec::new();
    let cell = TxCell::new(0u64);
    g.bench_function("norec_rmw", |b| {
        b.iter(|| {
            norec.execute(|ctx| {
                let v = ctx.read(&cell);
                ctx.write(&cell, v + 1);
            })
        })
    });
    let rh = RhNorec::new();
    g.bench_function("rhnorec_rmw", |b| {
        b.iter(|| {
            rh.execute(|ctx| {
                let v = ctx.read(&cell);
                ctx.write(&cell, v + 1);
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_cell,
    bench_swhtm,
    bench_lock_and_orecs,
    bench_elision_policies,
    bench_tms
);
criterion_main!(benches);
