//! Micro-benchmarks of the real (non-simulated) primitives: the costs
//! the paper's §6 narrative leans on — barrier calls, orec stamps, HTM
//! begin/commit, lock transfer — measured on the software emulation so
//! regressions in the hot paths are visible. Run with `cargo bench`.

use std::hint::black_box;

use rtle_bench::micro::bench;
use rtle_core::orec::{OrecKind, OrecTable};
use rtle_core::{fast_hash, wang_mix64, Ctx, ElidableLock, ElisionPolicy, TatasLock};
use rtle_htm::{swhtm, TxCell};
use rtle_hytm::{Norec, RhNorec};

fn bench_hash() {
    let mut x = 0u64;
    bench("hash/wang_mix64", || {
        x = x.wrapping_add(0x9e37);
        black_box(wang_mix64(black_box(x)));
    });
    let mut y = 0u64;
    bench("hash/fast_hash_8192", || {
        y = y.wrapping_add(64);
        black_box(fast_hash(black_box(y), 8192));
    });
}

fn bench_cell() {
    let cell = TxCell::new(1u64);
    bench("txcell/read_plain(seqlock)", || {
        black_box(cell.read_plain());
    });
    let mut v = 0u64;
    bench("txcell/write_plain(versioned)", || {
        v += 1;
        cell.write(black_box(v));
    });
}

fn bench_swhtm() {
    let cells: Vec<TxCell<u64>> = (0..16).map(TxCell::new).collect();
    bench("swhtm/ro_txn_16_reads", || {
        swhtm::try_txn(|| black_box(cells.iter().map(|c| c.read()).sum::<u64>())).unwrap();
    });
    bench("swhtm/rw_txn_4r4w", || {
        swhtm::try_txn(|| {
            for i in 0..4 {
                let v = cells[i].read();
                cells[i + 8].write(v + 1);
            }
        })
        .unwrap();
    });
    bench("swhtm/explicit_abort", || {
        let _: Result<(), _> = swhtm::try_txn(|| rtle_htm::abort(1));
    });
}

fn bench_lock_and_orecs() {
    let lock = TatasLock::new();
    bench("lock_orecs/tatas_acquire_release", || {
        lock.acquire();
        lock.release();
    });
    let orecs = OrecTable::new(8192);
    let mut epoch = 1u64;
    let mut addr = 0usize;
    bench("lock_orecs/orec_stamp", || {
        addr = addr.wrapping_add(64);
        if orecs.stamp(OrecKind::Write, black_box(addr), epoch) {
            black_box(());
        }
        epoch += 2; // fresh epoch each time so the stamp always stores
    });
    let mut addr2 = 0usize;
    bench("lock_orecs/orec_conflict_check", || {
        addr2 = addr2.wrapping_add(64);
        black_box(orecs.write_would_conflict(black_box(addr2), 8192, u64::MAX));
    });
}

fn bench_elision_policies() {
    for policy in [
        ElisionPolicy::LockOnly,
        ElisionPolicy::Tle,
        ElisionPolicy::RwTle,
        ElisionPolicy::FgTle { orecs: 16 },
        ElisionPolicy::FgTle { orecs: 8192 },
    ] {
        let lock = ElidableLock::builder().policy(policy).build();
        let cell = TxCell::new(0u64);
        bench(&format!("elidable_lock_1thr/{}", policy.label()), || {
            lock.execute(|ctx: &Ctx| {
                let v = ctx.read(&cell);
                ctx.write(&cell, v + 1);
            });
        });
    }
}

fn bench_tms() {
    let norec = Norec::new();
    let cell = TxCell::new(0u64);
    bench("tm_1thr/norec_rmw", || {
        norec.execute(|ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    });
    let rh = RhNorec::new();
    bench("tm_1thr/rhnorec_rmw", || {
        rh.execute(|ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    });
}

fn main() {
    bench_hash();
    bench_cell();
    bench_swhtm();
    bench_lock_and_orecs();
    bench_elision_policies();
    bench_tms();
}
