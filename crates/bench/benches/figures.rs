//! Criterion wrappers over single simulator points, so the evaluation
//! substrate's own performance (and determinism) is tracked like any
//! other code path. Each bench runs one representative figure point at
//! quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rtle_sim::engine::{Engine, RunMode};
use rtle_sim::workloads::avl::{AvlConfig, AvlWorkload};
use rtle_sim::workloads::bank::{BankConfig, BankWorkload};
use rtle_sim::workloads::cctsa::{CctsaConfig, CctsaWorkload};
use rtle_sim::{CostModel, MachineProfile, SimMethod};

fn sim_point(method: SimMethod, threads: usize) -> u64 {
    let w = AvlWorkload::new(threads, AvlConfig::new(8192, 20, 20));
    let dur = RunMode::FixedDuration(MachineProfile::XEON.cycles_per_ms() / 2);
    Engine::new(method, threads, CostModel::default(), dur, w)
        .run()
        .ops
}

fn bench_fig_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_points");
    g.sample_size(10);
    g.bench_function("fig05_tle_8thr", |b| {
        b.iter(|| black_box(sim_point(SimMethod::Tle, 8)))
    });
    g.bench_function("fig05_fg1024_8thr", |b| {
        b.iter(|| black_box(sim_point(SimMethod::FgTle { orecs: 1024 }, 8)))
    });
    g.bench_function("fig05_rhnorec_8thr", |b| {
        b.iter(|| black_box(sim_point(SimMethod::RhNorec, 8)))
    });
    g.bench_function("fig11_bank_tle_8thr", |b| {
        b.iter(|| {
            let w = BankWorkload::new(
                8,
                BankConfig {
                    ops_per_thread: Some(500),
                    ..Default::default()
                },
            );
            black_box(
                Engine::new(
                    SimMethod::Tle,
                    8,
                    CostModel::default(),
                    RunMode::FixedWork,
                    w,
                )
                .run()
                .sim_cycles,
            )
        })
    });
    g.bench_function("fig13_cctsa_tle_4thr", |b| {
        b.iter(|| {
            let cfg = CctsaConfig {
                genome_len: 2_000,
                coverage: 2,
                ..Default::default()
            };
            let w = CctsaWorkload::new(4, cfg);
            black_box(
                Engine::new(
                    SimMethod::Tle,
                    4,
                    CostModel::default(),
                    RunMode::FixedWork,
                    w,
                )
                .run()
                .sim_cycles,
            )
        })
    });
    g.finish();
}

/// Determinism guard: the same configuration must produce bit-identical
/// statistics (the whole harness depends on it).
fn bench_determinism(c: &mut Criterion) {
    let a = sim_point(SimMethod::FgTle { orecs: 256 }, 8);
    let b = sim_point(SimMethod::FgTle { orecs: 256 }, 8);
    assert_eq!(a, b, "simulator must be deterministic");
    // Registered as a (trivial) bench so the assertion runs under
    // `cargo bench` too.
    c.bench_function("determinism_check", |bch| bch.iter(|| black_box(a)));
}

criterion_group!(benches, bench_fig_points, bench_determinism);
criterion_main!(benches);
