//! Micro-benchmark wrappers over single simulator points, so the
//! evaluation substrate's own performance (and determinism) is tracked
//! like any other code path. Each bench runs one representative figure
//! point at quick scale. Run with `cargo bench`.

use std::hint::black_box;

use rtle_bench::micro::bench;
use rtle_sim::engine::{Engine, RunMode};
use rtle_sim::workloads::avl::{AvlConfig, AvlWorkload};
use rtle_sim::workloads::bank::{BankConfig, BankWorkload};
use rtle_sim::workloads::cctsa::{CctsaConfig, CctsaWorkload};
use rtle_sim::{CostModel, MachineProfile, SimMethod};

fn sim_point(method: SimMethod, threads: usize) -> u64 {
    let w = AvlWorkload::new(threads, AvlConfig::new(8192, 20, 20));
    let dur = RunMode::FixedDuration(MachineProfile::XEON.cycles_per_ms() / 2);
    Engine::new(method, threads, CostModel::default(), dur, w)
        .run()
        .ops
}

fn bench_fig_points() {
    bench("sim_points/fig05_tle_8thr", || {
        black_box(sim_point(SimMethod::Tle, 8));
    });
    bench("sim_points/fig05_fg1024_8thr", || {
        black_box(sim_point(SimMethod::FgTle { orecs: 1024 }, 8));
    });
    bench("sim_points/fig05_rhnorec_8thr", || {
        black_box(sim_point(SimMethod::RhNorec, 8));
    });
    bench("sim_points/fig11_bank_tle_8thr", || {
        let w = BankWorkload::new(
            8,
            BankConfig {
                ops_per_thread: Some(500),
                ..Default::default()
            },
        );
        black_box(
            Engine::new(
                SimMethod::Tle,
                8,
                CostModel::default(),
                RunMode::FixedWork,
                w,
            )
            .run()
            .sim_cycles,
        );
    });
    bench("sim_points/fig13_cctsa_tle_4thr", || {
        let cfg = CctsaConfig {
            genome_len: 2_000,
            coverage: 2,
            ..Default::default()
        };
        let w = CctsaWorkload::new(4, cfg);
        black_box(
            Engine::new(
                SimMethod::Tle,
                4,
                CostModel::default(),
                RunMode::FixedWork,
                w,
            )
            .run()
            .sim_cycles,
        );
    });
}

/// Determinism guard: the same configuration must produce bit-identical
/// statistics (the whole harness depends on it).
fn determinism_check() {
    let a = sim_point(SimMethod::FgTle { orecs: 256 }, 8);
    let b = sim_point(SimMethod::FgTle { orecs: 256 }, 8);
    assert_eq!(a, b, "simulator must be deterministic");
    bench("sim_points/determinism_check", || {
        black_box(a);
    });
}

fn main() {
    bench_fig_points();
    determinism_check();
}
