//! Diagnostic sweep: the attempt-level composition behind the headline
//! figure numbers, per method — path distribution, abort composition and
//! latency percentiles from an [`rtle_obs::Recorder`] attached to the
//! simulator. The logic lives here (not in the `diag` binary) so tests
//! can assert the JSON export parses and carries the expected fields.

use std::sync::Arc;

use rtle_obs::trace::{chrome_document, chrome_event, chrome_process_name};
use rtle_obs::{Json, ObsConfig, ObsSnapshot, Recorder, TraceRecord, SCHEMA_VERSION};
use rtle_sim::engine::{Engine, RunMode};
use rtle_sim::workloads::avl::{AvlConfig, AvlWorkload};
use rtle_sim::{CostModel, MachineProfile, SimMethod, SimStats};

/// One method's diagnostic results.
#[derive(Debug)]
pub struct DiagRow {
    /// The method's figure-legend label.
    pub label: String,
    /// Exact simulator counters.
    pub stats: SimStats,
    /// Attempt-level recorder snapshot (latencies in simulator cycles).
    pub snapshot: ObsSnapshot,
    /// Causal trace of the run, cycle-stamped (empty when the `trace`
    /// feature is off).
    pub trace: Vec<TraceRecord>,
}

/// Runs the diagnostic workload (the Figure 5/6 AVL configuration:
/// 8192 keys, 20% Insert / 20% Remove, Xeon profile) for every Figure 5
/// method plus adaptive FG-TLE, with a recorder attached.
pub fn run_diag(threads: usize, sim_ms: u64) -> Vec<DiagRow> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let mut methods = SimMethod::figure5_set();
    methods.push(SimMethod::AdaptiveFgTle {
        initial: 64,
        max_orecs: 8192,
    });

    methods
        .into_iter()
        .map(|m| {
            let rec = Arc::new(Recorder::new(ObsConfig {
                latency_unit: "cycles",
                ..ObsConfig::default()
            }));
            let w = AvlWorkload::new(threads, cfg);
            let stats = Engine::new(
                m,
                threads,
                CostModel::pointer_chasing(),
                RunMode::FixedDuration(sim_ms * machine.cycles_per_ms()),
                w,
            )
            .with_time_scale(machine.smt_factor(threads))
            .with_spurious_aborts(machine.htm_spurious(threads))
            .with_recorder(Arc::clone(&rec))
            .run();
            DiagRow {
                label: m.label(),
                stats,
                snapshot: rec.snapshot(),
                trace: rec.tracer().drain(),
            }
        })
        .collect()
}

/// JSON document for a diag sweep: per-method path distribution, abort
/// composition, latency p50/p99 and the raw simulator counters, under a
/// shared schema version.
pub fn diag_to_json(threads: usize, rows: &[DiagRow]) -> Json {
    let methods = rows
        .iter()
        .map(|r| {
            let total = r.snapshot.total_commits().max(1) as f64;
            let path_distribution = Json::Obj(
                r.snapshot
                    .commits
                    .iter()
                    .map(|(label, n)| (label.clone(), Json::Num(*n as f64 / total)))
                    .collect(),
            );
            Json::obj([
                ("method", Json::Str(r.label.clone())),
                ("path_distribution", path_distribution),
                (
                    "abort_composition",
                    Json::Obj(
                        r.snapshot
                            .aborts
                            .iter()
                            .map(|(label, n)| (label.clone(), Json::UInt(*n)))
                            .collect(),
                    ),
                ),
                (
                    "cs_latency_cycles",
                    Json::obj([
                        ("p50", Json::UInt(r.snapshot.cs_latency.percentile(0.50))),
                        ("p99", Json::UInt(r.snapshot.cs_latency.percentile(0.99))),
                        ("max", Json::UInt(r.snapshot.cs_latency.max)),
                    ]),
                ),
                ("stats", r.stats.to_json()),
                ("observability", r.snapshot.to_json()),
            ])
        })
        .collect();
    Json::obj([
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        ("tool", Json::Str("diag".into())),
        ("threads", Json::UInt(threads as u64)),
        ("workload", Json::Str("avl-8192-20-20".into())),
        ("methods", Json::Arr(methods)),
    ])
}

/// Combined Chrome `trace_event` document for a diag sweep: one process
/// per method (named via metadata events), thread tracks inside each.
/// Timestamps are simulator cycles (`otherData.raw_time_unit`).
pub fn diag_trace_to_json(rows: &[DiagRow]) -> Json {
    let mut events = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        let pid = i as u64 + 1;
        events.push(chrome_process_name(pid, &r.label));
        for rec in &r.trace {
            events.push(chrome_event(rec, pid));
        }
    }
    chrome_document(events, "cycles")
}

/// Hash-hot-spot report: the per-orec conflict heatmap for methods that
/// attribute conflicts (FG-TLE and adaptive FG-TLE), with the invariant
/// line (per-slot sums == aggregate attributed aborts) made visible.
pub fn print_heatmap_report(rows: &[DiagRow]) {
    println!("orec conflict heatmap (top 8 slots per method):");
    for r in rows {
        let s = &r.stats;
        if s.orec_conflicts.is_empty() {
            continue;
        }
        let sum: u64 = s.orec_conflicts.iter().sum();
        println!(
            "  {:<18} capacity {:>5}  attributed {:>8}  (slot sum {:>8})",
            r.label,
            s.orec_conflicts.len(),
            s.orec_conflict_aborts,
            sum
        );
        for (slot, n) in s.hottest_orec_slots(8) {
            let share = n as f64 / s.orec_conflict_aborts.max(1) as f64;
            println!("    slot {slot:>5}  {n:>8} conflicts  ({share:>5.1}%)", share = share * 100.0);
        }
    }
}

/// The fixed-width table the `diag` binary has always printed.
pub fn print_diag_table(threads: usize, rows: &[DiagRow]) {
    println!(
        "AVL 8192 keys, 20:20:60, {threads} threads, {}:",
        MachineProfile::XEON.name
    );
    println!(
        "{:<18}{:>9}{:>8}{:>8}{:>8}{:>9}{:>9}{:>9}{:>9}{:>9}{:>10}{:>10}",
        "method",
        "ops",
        "fast",
        "slow",
        "lock",
        "ab.conf",
        "ab.cap",
        "ab.uarch",
        "ab.owned",
        "lockfrac",
        "cs.p50",
        "cs.p99"
    );
    for r in rows {
        let s = &r.stats;
        println!(
            "{:<18}{:>9}{:>8}{:>8}{:>8}{:>9}{:>9}{:>9}{:>9}{:>9.3}{:>10}{:>10}",
            r.label,
            s.ops,
            s.fast_commits,
            s.slow_commits,
            s.lock_commits,
            s.aborts_conflict,
            s.aborts_capacity,
            s.aborts_uarch,
            s.aborts_eager_owned,
            s.cycles_locked as f64 / s.sim_cycles.max(1) as f64,
            r.snapshot.cs_latency.percentile(0.50),
            r.snapshot.cs_latency.percentile(0.99),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtle_obs::parse_json;

    /// The acceptance check: a miniature diag run emits valid,
    /// schema-versioned JSON with per-method path distribution, abort
    /// composition and latency percentiles.
    #[test]
    fn diag_json_parses_with_expected_fields() {
        let rows = run_diag(4, 1);
        assert_eq!(rows.len(), 13, "12 figure-5 methods + adaptive");
        let doc = diag_to_json(4, &rows);
        let text = doc.to_string_pretty();
        let j = parse_json(&text).expect("diag JSON must parse");
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(j.get("threads").and_then(Json::as_u64), Some(4));
        let methods = j.get("methods").and_then(Json::as_arr).unwrap();
        assert_eq!(methods.len(), 13);
        for m in methods {
            let label = m.get("method").and_then(Json::as_str).unwrap();
            let dist = m.get("path_distribution").expect("path distribution");
            let frac_sum: f64 = ["fast_htm", "slow_htm", "lock"]
                .iter()
                .map(|k| dist.get(k).and_then(Json::as_f64).unwrap_or(0.0))
                .sum();
            // Methods that commit anything have fractions summing to ~1;
            // software-only methods (NOrec) record no HTM/lock commits.
            if m.get("stats")
                .and_then(|s| s.get("fast_commits"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
            {
                assert!(
                    (frac_sum - 1.0).abs() < 1e-9,
                    "{label}: fractions sum to {frac_sum}"
                );
            }
            assert!(m.get("abort_composition").is_some(), "{label}");
            let lat = m.get("cs_latency_cycles").unwrap();
            let p50 = lat.get("p50").and_then(Json::as_u64).unwrap();
            let p99 = lat.get("p99").and_then(Json::as_u64).unwrap();
            assert!(p99 >= p50, "{label}: p99 {p99} < p50 {p50}");
            // The embedded full snapshot round-trips.
            let snap = m.get("observability").unwrap();
            assert!(ObsSnapshot::from_json(snap).is_some(), "{label}");
        }
        // TLE commits on the fast path in this workload.
        let tle = methods
            .iter()
            .find(|m| m.get("method").and_then(Json::as_str) == Some("TLE"))
            .unwrap();
        assert!(
            tle.get("path_distribution")
                .and_then(|d| d.get("fast_htm"))
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
    }

    /// Heatmap and trace exports off one sweep. The hash-hot-spot
    /// invariant: for every FG method, the per-slot conflict sums equal
    /// the aggregate attributed counter. The combined diag trace is valid
    /// Chrome `trace_event` JSON after a parser round-trip (what Perfetto
    /// checks before loading), with one named process per method.
    #[test]
    fn heatmap_invariant_and_chrome_trace_validity() {
        use rtle_obs::trace::validate_chrome;
        let rows = run_diag(4, 1);

        let mut fg_rows = 0;
        for r in &rows {
            if r.stats.orec_conflicts.is_empty() {
                assert_eq!(r.stats.orec_conflict_aborts, 0, "{}", r.label);
                continue;
            }
            fg_rows += 1;
            assert_eq!(
                r.stats.orec_conflicts.iter().sum::<u64>(),
                r.stats.orec_conflict_aborts,
                "{}: slot sums must equal the aggregate",
                r.label
            );
        }
        assert!(fg_rows >= 4, "FG-TLE variants + adaptive carry heatmaps");
        print_heatmap_report(&rows);

        let doc = diag_trace_to_json(&rows);
        let parsed = parse_json(&doc.to_string_pretty()).expect("trace JSON parses");
        let n = validate_chrome(&parsed).expect("valid trace_event document");
        // At least the 13 process-name metadata events are always there;
        // with the `trace` feature on, the spans come on top.
        assert!(n >= rows.len(), "expected >= {} events, got {n}", rows.len());
        let has_spans = rows.iter().any(|r| !r.trace.is_empty());
        assert_eq!(
            has_spans,
            rtle_obs::Tracer::new(1, 1).enabled(),
            "spans present exactly when the trace feature is compiled in"
        );
    }
}
