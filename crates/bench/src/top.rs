//! `diag top`: a refreshing terminal view over a live scrape endpoint.
//!
//! Connects to the `/json` route of an [`rtle_obs::LiveServer`] (started
//! by `slo_bench --live` or `shard_bench --live`), parses the
//! `live-registry` document, and renders one compact panel per source:
//! commit-path mix and latency percentiles for recorders, imbalance
//! gauges for sharded maps, armed/fired state for collapse watchdogs.
//! Pure functions ([`fetch_live`], [`render_top`]) do the work so tests
//! can drive them without a terminal.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rtle_obs::{Json, WindowSnapshot, SCHEMA_VERSION};

/// One `diag top` session.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// Endpoint address, `host:port`.
    pub addr: String,
    /// Refreshes before exiting; 0 means "until the endpoint goes away".
    pub iters: u64,
    /// Delay between refreshes, ms.
    pub interval_ms: u64,
}

/// Fetches `route` from `addr` over one short-lived HTTP/1.0 connection
/// and returns the response body (headers checked for a 200).
pub fn http_get_body(addr: &str, route: &str) -> Result<String, String> {
    let mut conn = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
    conn.set_write_timeout(Some(Duration::from_secs(5))).ok();
    write!(conn, "GET {route} HTTP/1.0\r\n\r\n").map_err(|e| format!("send request: {e}"))?;
    let mut resp = String::new();
    conn.read_to_string(&mut resp)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = resp
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("{route}: {status}"));
    }
    Ok(body.to_string())
}

/// Fetches and validates the `/json` live-registry document.
pub fn fetch_live(addr: &str) -> Result<Json, String> {
    let body = http_get_body(addr, "/json")?;
    let doc = rtle_obs::parse_json(&body).map_err(|e| format!("bad JSON from {addr}: {e:?}"))?;
    if doc.get("kind").and_then(Json::as_str) != Some("live-registry") {
        return Err("not a live-registry document".into());
    }
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == SCHEMA_VERSION => Ok(doc),
        v => Err(format!(
            "schema version {v:?} is not the version this build reads ({SCHEMA_VERSION})"
        )),
    }
}

fn counter(src: &Json, key: &str) -> u64 {
    src.get("counters")
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn gauge(src: &Json, key: &str) -> f64 {
    src.get("gauges")
        .and_then(|g| g.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64 * 100.0
    }
}

fn render_recorder(out: &mut String, src: &Json) {
    use std::fmt::Write as _;
    let fast = counter(src, "commits_fast_htm");
    let slow = counter(src, "commits_slow_htm");
    let lock = counter(src, "commits_lock");
    let commits = fast + slow + lock;
    let _ = writeln!(
        out,
        "  commits {commits}: fast {:.1}% / slow {:.1}% / lock {:.1}%",
        pct(fast, commits),
        pct(slow, commits),
        pct(lock, commits),
    );
    let aborts: Vec<(&str, u64)> = [
        ("conflict", "aborts_conflict"),
        ("capacity", "aborts_capacity"),
        ("explicit", "aborts_explicit"),
        ("unsupported", "aborts_unsupported"),
        ("nested", "aborts_nested"),
        ("spurious", "aborts_spurious"),
    ]
    .iter()
    .map(|(label, key)| (*label, counter(src, key)))
    .filter(|(_, n)| *n > 0)
    .collect();
    if aborts.is_empty() {
        let _ = writeln!(out, "  aborts: none");
    } else {
        let total: u64 = aborts.iter().map(|(_, n)| n).sum();
        let mix: Vec<String> = aborts
            .iter()
            .map(|(label, n)| format!("{label} {:.1}%", pct(*n, total)))
            .collect();
        let _ = writeln!(out, "  aborts {total}: {}", mix.join(" / "));
    }
    // Per-window tail: newest last, exactly as the registry exports it.
    if let Some(windows) = src.get("windows").and_then(Json::as_arr) {
        for w in windows.iter().filter_map(WindowSnapshot::from_json) {
            let _ = writeln!(
                out,
                "  window {:>4}: {:>7} ops  p50 {:>8}  p99 {:>8}  p999 {:>8}  fallback {:>5.1}%",
                w.index,
                w.ops(),
                fmt_ns(w.latency_p(0.50)),
                fmt_ns(w.latency_p(0.99)),
                fmt_ns(w.latency_p(0.999)),
                w.fallback_rate() * 100.0,
            );
        }
    }
}

fn render_lock(out: &mut String, src: &Json) {
    use std::fmt::Write as _;
    let fast = counter(src, "commits_fast_htm");
    let slow = counter(src, "commits_slow_htm");
    let stm = counter(src, "commits_stm");
    let lock = counter(src, "commits_lock");
    let commits = fast + slow + stm + lock;
    let _ = writeln!(
        out,
        "  commits {commits}: fast {:.1}% / slow {:.1}% / stm {:.1}% / lock {:.1}%",
        pct(fast, commits),
        pct(slow, commits),
        pct(stm, commits),
        pct(lock, commits),
    );
    let _ = writeln!(
        out,
        "  aborts: fast {} / slow {}, lock fallback {:.4}",
        counter(src, "aborts_fast"),
        counter(src, "aborts_slow"),
        gauge(src, "lock_fallback_rate"),
    );
}

fn render_shard_map(out: &mut String, src: &Json) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "  {} shards, {} ops routed: load imbalance {:.2}, abort imbalance {:.2}, \
         lock fallback {:.4}",
        counter(src, "shards"),
        counter(src, "routed_total"),
        gauge(src, "load_imbalance"),
        gauge(src, "abort_imbalance"),
        gauge(src, "lock_fallback_rate"),
    );
}

fn render_watchdog(out: &mut String, src: &Json) {
    use std::fmt::Write as _;
    let fired = counter(src, "collapse_fired_total");
    let state = if fired > 0 {
        let kind = match counter(src, "collapse_last_kind_code") {
            1 => "fallback_collapse",
            2 => "conflict_storm",
            3 => "convoy_stall",
            _ => "?",
        };
        format!(
            "FIRED x{fired} ({kind} at window {})",
            counter(src, "collapse_last_window")
        )
    } else if gauge(src, "armed") >= 1.0 {
        "armed, silent".to_string()
    } else {
        "warming up".to_string()
    };
    let flight = if gauge(src, "flight_record_available") >= 1.0 {
        ", flight record available"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "  {state} after {} windows{flight}",
        counter(src, "windows_inspected")
    );
}

/// Renders one refresh of the top view from a live-registry document.
pub fn render_top(doc: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let taken_ms = doc.get("taken_at_ns").and_then(Json::as_u64).unwrap_or(0) / 1_000_000;
    let _ = writeln!(out, "rtle live telemetry — t+{taken_ms}ms since process epoch");
    let Some(sources) = doc.get("sources").and_then(Json::as_arr) else {
        let _ = writeln!(out, "  (no sources)");
        return out;
    };
    if sources.is_empty() {
        let _ = writeln!(out, "  (no sources registered yet)");
    }
    for src in sources {
        let name = src.get("name").and_then(Json::as_str).unwrap_or("?");
        let kind = src.get("kind").and_then(Json::as_str).unwrap_or("?");
        // Identity labels (e.g. which software TM backs the lock) ride
        // in the header so every panel says *what* it is measuring.
        let mut tags = String::new();
        if let Some(Json::Obj(labels)) = src.get("labels") {
            for (k, v) in labels {
                if let Some(v) = v.as_str() {
                    let _ = write!(tags, " [{k}={v}]");
                }
            }
        }
        let _ = writeln!(out, "\n== {name} ({kind}){tags} ==");
        match kind {
            "recorder" => render_recorder(&mut out, src),
            "lock" => render_lock(&mut out, src),
            "shard_map" => render_shard_map(&mut out, src),
            "watchdog" => render_watchdog(&mut out, src),
            _ => {
                // Unknown source kinds still show their raw counters, so
                // a newer endpoint degrades readably on an older viewer.
                if let Some(Json::Obj(counters)) = src.get("counters") {
                    for (k, v) in counters {
                        if let Some(n) = v.as_u64() {
                            let _ = writeln!(out, "  {k}: {n}");
                        }
                    }
                }
            }
        }
    }
    out
}

/// The interactive loop: clear-screen + render, `interval_ms` apart.
/// Returns an error only when the *first* fetch fails (bad address); a
/// later fetch failure means the run ended and exits cleanly.
pub fn run_top(cfg: &TopConfig) -> Result<(), String> {
    let mut shown = 0u64;
    loop {
        match fetch_live(&cfg.addr) {
            Ok(doc) => {
                // ANSI clear + home — the standard terminal refresh idiom.
                print!("\x1b[2J\x1b[H{}", render_top(&doc));
                let _ = std::io::stdout().flush();
                shown += 1;
            }
            Err(e) if shown == 0 => return Err(e),
            Err(_) => {
                eprintln!("diag top: endpoint gone, exiting");
                return Ok(());
            }
        }
        if cfg.iters != 0 && shown >= cfg.iters {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(cfg.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtle_obs::{LiveServer, LiveSource, MetricsRegistry, SourceSnapshot};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::Arc;

    struct FakeLock {
        fast: AtomicU64,
    }

    impl LiveSource for FakeLock {
        fn live_snapshot(&self) -> SourceSnapshot {
            SourceSnapshot {
                kind: "recorder",
                counters: vec![
                    ("commits_fast_htm".into(), self.fast.load(Relaxed)),
                    ("commits_lock".into(), 25),
                    ("aborts_conflict".into(), 10),
                ],
                gauges: vec![("cs_latency_p99".into(), 420.0)],
                windows: Vec::new(),
                labels: vec![("software_backend".into(), "tl2".into())],
            }
        }
    }

    struct FakeDog;

    impl LiveSource for FakeDog {
        fn live_snapshot(&self) -> SourceSnapshot {
            SourceSnapshot {
                kind: "watchdog",
                counters: vec![
                    ("windows_inspected".into(), 12),
                    ("collapse_fired_total".into(), 1),
                    ("collapse_last_kind_code".into(), 1),
                    ("collapse_last_window".into(), 9),
                ],
                gauges: vec![
                    ("armed".into(), 1.0),
                    ("flight_record_available".into(), 1.0),
                ],
                windows: Vec::new(),
                labels: Vec::new(),
            }
        }
    }

    #[test]
    fn fetch_and_render_against_a_real_endpoint() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.register("demo", Arc::new(FakeLock { fast: AtomicU64::new(75) }));
        registry.register("demo_watchdog", Arc::new(FakeDog));
        let server = LiveServer::start(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();

        let doc = fetch_live(&addr).expect("fetch parses and validates");
        let view = render_top(&doc);
        assert!(
            view.contains("== demo (recorder) [software_backend=tl2] =="),
            "{view}"
        );
        assert!(view.contains("fast 75.0% / slow 0.0% / lock 25.0%"), "{view}");
        assert!(view.contains("aborts 10: conflict 100.0%"), "{view}");
        assert!(
            view.contains("FIRED x1 (fallback_collapse at window 9)"),
            "{view}"
        );
        assert!(view.contains("flight record available"), "{view}");

        // The loop terminates after the requested refresh count.
        run_top(&TopConfig {
            addr: addr.clone(),
            iters: 1,
            interval_ms: 1,
        })
        .expect("one refresh against a live endpoint");
    }

    #[test]
    fn bad_endpoints_are_clean_errors() {
        // Nothing listens here: connect fails, first fetch reports it.
        let err = fetch_live("127.0.0.1:1").unwrap_err();
        assert!(err.contains("connect"), "{err}");

        let registry = Arc::new(MetricsRegistry::new());
        let server = LiveServer::start(registry, "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let err = http_get_body(&addr, "/nope").unwrap_err();
        assert!(err.contains("404"), "{err}");
        // An empty registry still renders (no sources yet).
        let view = render_top(&fetch_live(&addr).unwrap());
        assert!(view.contains("no sources registered yet"), "{view}");
    }
}
