//! Minimal, dependency-free micro-benchmark harness.
//!
//! Replaces an external statistics framework with the two things the
//! repo actually needs: a calibrated median-of-batches ns/op estimate,
//! and a stable one-line report per benchmark. Used by the `benches/`
//! targets (all `harness = false`) and by the observability overhead
//! guard test.

use std::time::Instant;

/// Batches used for the median estimate.
const BATCHES: usize = 7;

/// Minimum wall time per batch during calibration.
const MIN_BATCH_NANOS: u128 = 1_000_000; // 1 ms

/// Measures `op` and returns the median ns/op over [`BATCHES`] batches,
/// after calibrating the per-batch iteration count to at least 1 ms of
/// wall time (so timer granularity is irrelevant).
pub fn measure_ns<F: FnMut()>(mut op: F) -> f64 {
    // Calibrate: double the batch size until a batch takes >= 1 ms.
    let mut iters: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            op();
        }
        let el = t.elapsed().as_nanos();
        if el >= MIN_BATCH_NANOS || iters >= 1 << 28 {
            break;
        }
        // Jump close to the target, then keep doubling conservatively.
        let scale = (MIN_BATCH_NANOS / el.max(1)).clamp(2, 1 << 10) as u64;
        iters = iters.saturating_mul(scale);
    }
    let mut samples = [0f64; BATCHES];
    for s in &mut samples {
        let t = Instant::now();
        for _ in 0..iters {
            op();
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[BATCHES / 2]
}

/// Runs one named benchmark, prints `name: <ns>/op`, and returns the
/// median ns/op.
pub fn bench<F: FnMut()>(name: &str, op: F) -> f64 {
    let ns = measure_ns(op);
    println!("{name:<40} {ns:>12.1} ns/op");
    ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn measures_something_positive() {
        let mut x = 0u64;
        let ns = measure_ns(|| x = black_box(x).wrapping_add(1));
        assert!(ns > 0.0 && ns < 1e6, "implausible ns/op: {ns}");
    }
}
