#![warn(missing_docs)]
//! # rtle-bench: the evaluation harness
//!
//! One function — and one binary under `src/bin/` — per figure of the
//! paper's evaluation section (§6, Figures 5–13). Each function sweeps the
//! paper's parameter grid on the deterministic simulator and returns the
//! series the figure plots; the binaries print them as CSV. Criterion
//! micro-benchmarks for the *real* (non-simulated) implementation live
//! under `benches/`.
//!
//! Scale: every function takes a [`Scale`] so integration tests can run
//! miniature sweeps while the binaries run the full figures.
//!
//! Every binary also accepts `--json <path>` ([`report::BenchArgs`]) and
//! then writes its sweep results as a schema-versioned JSON document for
//! collection and diffing (see EXPERIMENTS.md).

pub mod baseline;
pub mod diag;
pub mod figures;
pub mod micro;
pub mod report;
pub mod slo;
pub mod tm;
pub mod top;

pub use figures::{Scale, Series};
pub use report::{BenchArgs, Report};

/// Prints figure series as CSV: `label,threads,value` rows after a header.
pub fn print_csv(title: &str, value_name: &str, series: &[Series]) {
    println!("# {title}");
    println!("method,threads,{value_name}");
    for s in series {
        for p in &s.points {
            println!("{},{},{:.3}", s.label, p.threads, p.value);
        }
    }
}

/// Renders a compact fixed-width table (one column per thread count) for
/// eyeballing shapes in a terminal, mirroring how the paper's charts read.
pub fn print_table(title: &str, series: &[Series]) {
    print_table_prec(title, series, 1)
}

/// [`print_table`] with configurable decimal places (zoom panels need
/// more precision than throughput overviews).
pub fn print_table_prec(title: &str, series: &[Series], decimals: usize) {
    println!("== {title} ==");
    if series.is_empty() {
        return;
    }
    let threads: Vec<usize> = series[0].points.iter().map(|p| p.threads).collect();
    print!("{:<16}", "method");
    for t in &threads {
        print!("{t:>10}");
    }
    println!();
    for s in series {
        print!("{:<16}", s.label);
        for p in &s.points {
            print!("{:>10.prec$}", p.value, prec = decimals);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figures::SeriesPoint;

    #[test]
    fn csv_and_table_do_not_panic() {
        let s = vec![Series {
            label: "TLE".into(),
            points: vec![
                SeriesPoint {
                    threads: 1,
                    value: 1.0,
                },
                SeriesPoint {
                    threads: 2,
                    value: 1.9,
                },
            ],
        }];
        print_csv("t", "speedup", &s);
        print_table("t", &s);
        print_table("empty", &[]);
    }
}
