//! Perf-baseline regression harness.
//!
//! `bench run` measures a fixed set of named micro-benchmarks over the
//! *real* runtime (not the simulator) with [`crate::micro::measure_ns`]
//! and writes a schema-versioned JSON baseline (`BENCH_<n>.json` at the
//! repo root by convention). `bench compare OLD NEW` diffs two such
//! documents with noise-tolerant thresholds: a benchmark only counts as
//! regressed when it is slower by more than a ratio threshold *and* by an
//! absolute floor, so timer jitter on loaded CI machines cannot fake a
//! regression. `scripts/bench_compare.sh` wires this into tier-1 as a
//! non-fatal report.

use std::sync::Arc;

use rtle_core::{Ctx, ElidableLock, ElisionPolicy};
use rtle_htm::TxCell;
use rtle_obs::{Json, ObsConfig, Recorder, TraceKind, Tracer, SCHEMA_VERSION};

use crate::micro::measure_ns;

/// Default regression ratio: `new > old * RATIO` flags a benchmark.
pub const DEFAULT_RATIO: f64 = 1.8;

/// Absolute floor in ns/op: differences below this are always noise
/// (sub-clock-resolution benches would otherwise trip the ratio check).
pub const ABS_FLOOR_NS: f64 = 15.0;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable benchmark name (the compare key).
    pub name: String,
    /// Median ns/op.
    pub ns_per_op: f64,
}

fn rmw_ns(lock: &ElidableLock) -> f64 {
    let cell = TxCell::new(0u64);
    measure_ns(|| {
        lock.execute(|ctx: &Ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    })
}

fn read_ns(lock: &ElidableLock) -> f64 {
    let cell = TxCell::new(7u64);
    measure_ns(|| {
        lock.execute(|ctx: &Ctx| {
            std::hint::black_box(ctx.read(&cell));
        });
    })
}

/// Runs the fixed baseline suite and returns `(name, ns/op)` rows in a
/// stable order. Single-threaded on purpose: the baseline tracks the
/// *code's* fast-path cost, not the machine's contention behaviour, so
/// runs on different CI hosts stay comparable.
pub fn run_baseline() -> Vec<BenchResult> {
    let mut out = Vec::new();
    let mut push = |name: &str, ns: f64| {
        println!("{name:<40} {ns:>12.1} ns/op");
        out.push(BenchResult {
            name: name.into(),
            ns_per_op: ns,
        });
    };

    push(
        "tle_uncontended_rmw",
        rmw_ns(&ElidableLock::builder().policy(ElisionPolicy::Tle).build()),
    );
    push(
        "rwtle_uncontended_read",
        read_ns(&ElidableLock::builder().policy(ElisionPolicy::RwTle).build()),
    );
    push(
        "fgtle64_uncontended_rmw",
        rmw_ns(&ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }).build()),
    );
    push(
        "adaptive_uncontended_rmw",
        rmw_ns(
            &ElidableLock::builder()
                .policy(ElisionPolicy::AdaptiveFgTle {
                    initial_orecs: 16,
                    max_orecs: 1024,
                })
                .build(),
        ),
    );
    push(
        "lockonly_rmw",
        rmw_ns(&ElidableLock::builder().policy(ElisionPolicy::LockOnly).build()),
    );
    push(
        "tle_sampled_recorder_rmw",
        rmw_ns(
            &ElidableLock::builder()
                .policy(ElisionPolicy::Tle)
                .recorder(Arc::new(Recorder::new(ObsConfig::default())))
                .build(),
        ),
    );
    {
        // Trace-span recording cost: ~0 when the `trace` feature is off
        // (the call folds away), a few ns when on. Baselines produced by
        // differently-featured builds are not comparable; `bench run`
        // stamps the feature state into the document for that reason.
        let tracer = Tracer::new(4, 1024);
        push(
            "tracer_span_record",
            measure_ns(|| {
                tracer.span_ending_now(0, TraceKind::FastCommit, 100, 0);
            }),
        );
    }
    push("orec_heatmap_snapshot", {
        let lock = ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 64 }).build();
        let cell = TxCell::new(0u64);
        lock.execute(|ctx: &Ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
        measure_ns(|| {
            std::hint::black_box(lock.orec_heatmap());
        })
    });
    out
}

/// The baseline JSON document.
pub fn baseline_to_json(results: &[BenchResult]) -> Json {
    Json::obj([
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        ("tool", Json::Str("bench".into())),
        ("kind", Json::Str("perf-baseline".into())),
        ("latency_unit", Json::Str("ns".into())),
        ("trace_feature", Json::Bool(cfg!(feature = "trace"))),
        (
            "benches",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.clone())),
                            ("ns_per_op", Json::Num(r.ns_per_op)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a baseline document back into results. `None` when the document
/// is not a perf-baseline or is malformed.
pub fn baseline_from_json(j: &Json) -> Option<Vec<BenchResult>> {
    if j.get("kind").and_then(Json::as_str) != Some("perf-baseline") {
        return None;
    }
    j.get("benches")?
        .as_arr()?
        .iter()
        .map(|b| {
            Some(BenchResult {
                name: b.get("name")?.as_str()?.to_string(),
                ns_per_op: b.get("ns_per_op")?.as_f64()?,
            })
        })
        .collect()
}

/// One line of a comparison verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareLine {
    /// Benchmark name.
    pub name: String,
    /// Baseline ns/op.
    pub old_ns: f64,
    /// Current ns/op.
    pub new_ns: f64,
    /// `new / old`.
    pub ratio: f64,
}

/// Outcome of comparing a new run against a baseline.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CompareOutcome {
    /// Benchmarks slower than both thresholds — the regression verdict.
    pub regressions: Vec<CompareLine>,
    /// Benchmarks faster by the same margins (informational).
    pub improvements: Vec<CompareLine>,
    /// Every benchmark present in both documents, in baseline order.
    pub all: Vec<CompareLine>,
    /// Names present in only one of the two documents.
    pub unmatched: Vec<String>,
}

impl CompareOutcome {
    /// True when no benchmark regressed.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares `new` against the `old` baseline. A benchmark regresses when
/// it is slower by more than `ratio` *and* by more than [`ABS_FLOOR_NS`]
/// — both conditions, so neither tiny absolute wobbles on fast benches
/// nor proportionally-small drifts on slow ones trip the gate.
pub fn compare(old: &[BenchResult], new: &[BenchResult], ratio: f64) -> CompareOutcome {
    assert!(ratio > 1.0, "ratio threshold must exceed 1.0");
    let mut out = CompareOutcome::default();
    for o in old {
        let Some(n) = new.iter().find(|n| n.name == o.name) else {
            out.unmatched.push(o.name.clone());
            continue;
        };
        let line = CompareLine {
            name: o.name.clone(),
            old_ns: o.ns_per_op,
            new_ns: n.ns_per_op,
            ratio: n.ns_per_op / o.ns_per_op.max(f64::MIN_POSITIVE),
        };
        if n.ns_per_op > o.ns_per_op * ratio && n.ns_per_op - o.ns_per_op > ABS_FLOOR_NS {
            out.regressions.push(line.clone());
        } else if o.ns_per_op > n.ns_per_op * ratio && o.ns_per_op - n.ns_per_op > ABS_FLOOR_NS {
            out.improvements.push(line.clone());
        }
        out.all.push(line);
    }
    for n in new {
        if !old.iter().any(|o| o.name == n.name) {
            out.unmatched.push(n.name.clone());
        }
    }
    out
}

/// Renders the comparison as the report `bench compare` prints.
pub fn render_compare(outcome: &CompareOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<40}{:>12}{:>12}{:>8}\n",
        "benchmark", "old ns/op", "new ns/op", "ratio"
    ));
    for l in &outcome.all {
        let mark = if outcome.regressions.contains(l) {
            "  REGRESSED"
        } else if outcome.improvements.contains(l) {
            "  improved"
        } else {
            ""
        };
        s.push_str(&format!(
            "{:<40}{:>12.1}{:>12.1}{:>8.2}{mark}\n",
            l.name, l.old_ns, l.new_ns, l.ratio
        ));
    }
    for u in &outcome.unmatched {
        s.push_str(&format!("{u:<40}   (present in only one document)\n"));
    }
    s.push_str(&format!(
        "{} compared, {} regressed, {} improved, {} unmatched\n",
        outcome.all.len(),
        outcome.regressions.len(),
        outcome.improvements.len(),
        outcome.unmatched.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtle_obs::parse_json;

    fn res(rows: &[(&str, f64)]) -> Vec<BenchResult> {
        rows.iter()
            .map(|&(name, ns)| BenchResult {
                name: name.into(),
                ns_per_op: ns,
            })
            .collect()
    }

    #[test]
    fn baseline_json_round_trips() {
        let r = res(&[("a", 12.5), ("b", 900.0)]);
        let text = baseline_to_json(&r).to_string_pretty();
        let j = parse_json(&text).expect("baseline JSON parses");
        assert_eq!(
            j.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("perf-baseline"));
        assert_eq!(baseline_from_json(&j).unwrap(), r);
        assert_eq!(baseline_from_json(&Json::obj([])), None);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let old = res(&[("fast", 10.0), ("slow", 1000.0), ("gone", 5.0)]);
        let new = res(&[
            // 3x slower but only +20ns-ish… above both thresholds.
            ("fast", 31.0),
            // +10%: within the ratio threshold.
            ("slow", 1100.0),
            ("added", 7.0),
        ]);
        let c = compare(&old, &new, DEFAULT_RATIO);
        assert_eq!(c.regressions.len(), 1);
        assert_eq!(c.regressions[0].name, "fast");
        assert!(!c.ok());
        assert_eq!(c.all.len(), 2);
        assert_eq!(c.unmatched, vec!["gone".to_string(), "added".to_string()]);
        let report = render_compare(&c);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("1 regressed"));
    }

    #[test]
    fn compare_tolerates_noise_on_fast_benches() {
        // 4x ratio but only 6ns absolute: sub-floor, so not a regression.
        let old = res(&[("tiny", 2.0)]);
        let new = res(&[("tiny", 8.0)]);
        assert!(compare(&old, &new, DEFAULT_RATIO).ok());
        // Improvement detection is symmetric.
        let c = compare(&res(&[("x", 200.0)]), &res(&[("x", 50.0)]), DEFAULT_RATIO);
        assert!(c.ok());
        assert_eq!(c.improvements.len(), 1);
    }
}
