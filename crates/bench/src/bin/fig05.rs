//! Figure 5: AVL-tree set throughput (normalized to 1-thread Lock) for
//! key ranges {8192, 65536} × Insert/Remove {0, 10, 20, 50}% on both
//! machine profiles. `--json <path>` writes all panels as one document.

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};
use rtle_sim::MachineProfile;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let mut report = Report::new("fig05", scale);
    for machine in [MachineProfile::CORE_I7, MachineProfile::XEON] {
        for key_range in [8192u64, 65_536] {
            for update in [0u32, 10, 20, 50] {
                let title = format!(
                    "Figure 5 [{}] keys={key_range} {update}:{update}:{}",
                    machine.name,
                    100 - 2 * update
                );
                let series = figures::fig05_panel(&machine, key_range, update, scale);
                print_table(&title, &series);
                print_csv(&title, "speedup_vs_1thr_lock", &series);
                println!();
                report.add_series(
                    &format!("{}-{key_range}-{update}", machine.name),
                    "speedup_vs_1thr_lock",
                    &series,
                );
            }
        }
    }
    report.write_if_requested(args.json.as_deref());
}
