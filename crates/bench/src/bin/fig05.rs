//! Figure 5: AVL-tree set throughput (normalized to 1-thread Lock) for
//! key ranges {8192, 65536} × Insert/Remove {0, 10, 20, 50}% on both
//! machine profiles.

use rtle_bench::{figures, print_csv, print_table, Scale};
use rtle_sim::MachineProfile;

fn main() {
    let scale = scale_from_args();
    for machine in [MachineProfile::CORE_I7, MachineProfile::XEON] {
        for key_range in [8192u64, 65_536] {
            for update in [0u32, 10, 20, 50] {
                let title = format!(
                    "Figure 5 [{}] keys={key_range} {update}:{update}:{}",
                    machine.name,
                    100 - 2 * update
                );
                let series = figures::fig05_panel(&machine, key_range, update, scale);
                print_table(&title, &series);
                print_csv(&title, "speedup_vs_1thr_lock", &series);
                println!();
            }
        }
    }
}

fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}
