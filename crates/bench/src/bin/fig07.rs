//! Figure 7: execution time under lock normalized to the lock-based
//! execution at the same thread count. 8192 keys, 20% updates.

use rtle_bench::{figures, print_csv, print_table, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let series = figures::fig07(scale);
    print_table("Figure 7 RelativeTimeUnderLock", &series);
    print_csv("Figure 7", "relative_time_under_lock", &series);
}
