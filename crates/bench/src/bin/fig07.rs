//! Figure 7: execution time under lock normalized to the lock-based
//! execution at the same thread count. 8192 keys, 20% updates.

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let series = figures::fig07(args.scale());
    print_table("Figure 7 RelativeTimeUnderLock", &series);
    print_csv("Figure 7", "relative_time_under_lock", &series);
    let mut report = Report::new("fig07", args.scale());
    report.add_series("relative_time_under_lock", "relative_time_under_lock", &series);
    report.write_if_requested(args.json.as_deref());
}
