//! Figure 6: slow-path throughput (SlowHTM and Lock commits per ms of
//! locked time) for the refined TLE variants. 8192 keys, 20% updates.

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let (slow, lock) = figures::fig06(args.scale());
    print_table("Figure 6 SlowHTM (commits/ms locked)", &slow);
    print_csv("Figure 6 SlowHTM", "slow_htm_per_ms_locked", &slow);
    println!();
    print_table("Figure 6 Lock (commits/ms locked)", &lock);
    print_csv("Figure 6 Lock", "lock_commits_per_ms_locked", &lock);
    let mut report = Report::new("fig06", args.scale());
    report.add_series("slow_htm", "slow_htm_per_ms_locked", &slow);
    report.add_series("lock", "lock_commits_per_ms_locked", &lock);
    report.write_if_requested(args.json.as_deref());
}
