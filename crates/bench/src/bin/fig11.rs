//! Figure 11: bank-accounts transfer throughput (256 padded accounts).

use rtle_bench::{figures, print_csv, print_table, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let series = figures::fig11(scale);
    print_table("Figure 11 bank accounts (ops/ms)", &series);
    print_csv("Figure 11", "ops_per_ms", &series);
}
