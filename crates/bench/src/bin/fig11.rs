//! Figure 11: bank-accounts transfer throughput (256 padded accounts).

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let series = figures::fig11(args.scale());
    print_table("Figure 11 bank accounts (ops/ms)", &series);
    print_csv("Figure 11", "ops_per_ms", &series);
    let mut report = Report::new("fig11", args.scale());
    report.add_series("bank", "ops_per_ms", &series);
    report.write_if_requested(args.json.as_deref());
}
