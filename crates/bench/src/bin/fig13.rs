//! Figure 13: ccTSA assembly runtime vs threads — the original
//! fine-grained-locking program vs the transactified single-lock program
//! under each elision method. Includes the paper's high-thread zoom.

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let series = figures::fig13(args.scale());
    print_table("Figure 13 ccTSA runtime (sim ms, lower is better)", &series);
    print_csv("Figure 13", "runtime_ms", &series);
    // Zoom panel (b): the last thread points only.
    let zoom: Vec<_> = series
        .iter()
        .map(|s| rtle_bench::Series {
            label: s.label.clone(),
            points: s.points.iter().rev().take(3).rev().copied().collect(),
        })
        .collect();
    println!();
    rtle_bench::print_table_prec("Figure 13(b) zoom: high thread counts", &zoom, 3);
    let mut report = Report::new("fig13", args.scale());
    report.add_series("runtime", "runtime_ms", &series);
    report.add_series("zoom", "runtime_ms", &zoom);
    report.write_if_requested(args.json.as_deref());
}
