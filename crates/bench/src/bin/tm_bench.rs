//! Three-way software-TM comparison: NOrec vs TL2 vs the full RTLE
//! stack on the disjoint-write / shared-hot-key / read-mostly mixes.
//! See [`rtle_bench::tm`] for why each mix is in the set.
//!
//! Emits a `perf-baseline`-kind JSON document (`--json PATH`) whose rows
//! are thread-ns per committed transaction, so `bench compare` diffs
//! runs against `TM_0.json` with the same lower-is-better gate as every
//! other baseline. Committed-ops counts ride along for eyeballing.
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin tm_bench            # full
//! cargo run -p rtle-bench --release --bin tm_bench -- --quick # smoke
//! ```

use std::process::exit;
use std::time::Duration;

use rtle_bench::tm::{committed_ratio, render, run_suite, TmMix, DEFAULT_THREADS};
use rtle_bench::BenchArgs;
use rtle_obs::{Json, SCHEMA_VERSION};

fn main() {
    let args = BenchArgs::parse();
    let threads = DEFAULT_THREADS;
    // Quick mode keeps tier-1 fast; the full run is long enough — and
    // best-of-2 — so that a single descheduled NOrec committer (the
    // pathology TL2 avoids on the disjoint mix) cannot masquerade as a
    // regression in the compare gate.
    let (dur, trials) = if args.quick {
        (Duration::from_millis(60), 1)
    } else {
        (Duration::from_millis(400), 2)
    };

    let results = run_suite(threads, dur, trials);
    print!("{}", render(&results, threads, dur));

    if let Some(path) = &args.json {
        let doc = Json::obj([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("tool", Json::Str("tm_bench".into())),
            ("kind", Json::Str("perf-baseline".into())),
            ("latency_unit", Json::Str("ns".into())),
            ("threads", Json::UInt(threads as u64)),
            ("duration_ms", Json::UInt(dur.as_millis() as u64)),
            (
                "disjoint_write_tl2_over_norec",
                Json::Num(
                    committed_ratio(&results, TmMix::DisjointWrite, "tl2", "norec")
                        .unwrap_or(0.0),
                ),
            ),
            (
                "committed_ops",
                Json::Obj(
                    results
                        .iter()
                        .map(|m| (m.row.clone(), Json::UInt(m.committed)))
                        .collect(),
                ),
            ),
            (
                "benches",
                Json::Arr(
                    results
                        .iter()
                        .map(|m| {
                            let r = m.to_bench_result();
                            Json::obj([
                                ("name", Json::Str(r.name)),
                                ("ns_per_op", Json::Num(r.ns_per_op)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
        println!("wrote {}", path.display());
    }
}
