//! Figure 9: RHNOrec execution-type distribution (fractions of HTMFast /
//! HTMSlow / STMFastCommit / STMSlowCommit commits).

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let series = figures::fig09(args.scale());
    print_table("Figure 9 RHNOrec execution types", &series);
    print_csv("Figure 9", "fraction", &series);
    let mut report = Report::new("fig09", args.scale());
    report.add_series("execution_types", "fraction", &series);
    report.write_if_requested(args.json.as_deref());
}
