//! Figure 9: RHNOrec execution-type distribution (fractions of HTMFast /
//! HTMSlow / STMFastCommit / STMSlowCommit commits).

use rtle_bench::{figures, print_csv, print_table, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let series = figures::fig09(scale);
    print_table("Figure 9 RHNOrec execution types", &series);
    print_csv("Figure 9", "fraction", &series);
}
