//! Open-loop SLO harness: windowed tail latency of `single_lock` vs
//! `sharded` under an identical arrival schedule with a mid-run hot-key
//! storm, plus the collapse watchdog and flight-recorder dumps.
//!
//! ```text
//! slo_bench [--quick] [--seed N] [--threads N] [--shards N]
//!           [--rate OPS_S] [--duration-ms N] [--window-ms N]
//!           [--no-storm] [--flight-dir DIR] [--json PATH]
//!           [--live ADDR] [--live-port-file PATH]
//! ```
//!
//! `--live ADDR` (e.g. `127.0.0.1:9090`, or port `0` for ephemeral)
//! serves the run's telemetry at `/metrics` and `/json` while it runs —
//! point `diag top ADDR` at it to watch the collapse live.
//! `--live-port-file` writes the bound address for scripted scrapers.
//!
//! The JSON export is a `perf-baseline`-kind document (headline rows for
//! `bench compare`) carrying the full schema-versioned `slo` section;
//! view saved runs with `diag --slo FILE` / `diag --timeline FILE`.

use rtle_bench::slo::{render_slo, render_timeline, run_slo, SloConfig};

struct Args {
    cfg: SloConfig,
    json: Option<std::path::PathBuf>,
    timeline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: slo_bench [--quick] [--seed N] [--threads N] [--shards N] \
         [--rate OPS_S] [--duration-ms N] [--window-ms N] [--no-storm] \
         [--audit-hold-ms N] [--audit-boost N] [--storm-write-pct N] \
         [--timeline] [--flight-dir DIR] [--json PATH] \
         [--live ADDR] [--live-port-file PATH]"
    );
    std::process::exit(2);
}

fn num(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| {
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            }
        })
        .unwrap_or_else(|| {
            eprintln!("slo_bench: {flag} needs a number");
            usage()
        })
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let mut cfg = SloConfig::full();
    let mut json = None;
    let mut timeline = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                cfg = SloConfig {
                    flight_dir: cfg.flight_dir,
                    live: cfg.live,
                    live_port_file: cfg.live_port_file,
                    ..SloConfig::quick()
                }
            }
            "--seed" => cfg.seed = num(&mut it, "--seed"),
            "--threads" => cfg.threads = num(&mut it, "--threads") as usize,
            "--shards" => cfg.shards = (num(&mut it, "--shards") as usize).next_power_of_two(),
            "--rate" => cfg.rate = num(&mut it, "--rate") as f64,
            "--duration-ms" => cfg.duration_ms = num(&mut it, "--duration-ms"),
            "--window-ms" => cfg.window_ms = num(&mut it, "--window-ms").max(10),
            "--no-storm" => cfg.storm = false,
            "--audit-hold-ms" => cfg.audit_hold_ms = num(&mut it, "--audit-hold-ms"),
            "--audit-boost" => cfg.storm_audit_boost = num(&mut it, "--audit-boost").max(1),
            "--storm-write-pct" => cfg.storm_write_pct = num(&mut it, "--storm-write-pct").min(100),
            "--timeline" => timeline = true,
            "--flight-dir" => {
                cfg.flight_dir = Some(it.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--live" => cfg.live = Some(it.next().unwrap_or_else(|| usage())),
            "--live-port-file" => {
                cfg.live_port_file = Some(it.next().map(Into::into).unwrap_or_else(|| usage()))
            }
            "--json" => json = Some(it.next().map(Into::into).unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    Args { cfg, json, timeline }
}

fn main() {
    let args = parse_args();
    let cfg = &args.cfg;
    eprintln!(
        "slo_bench: {} threads, {:.0} ops/s for {} ms ({} ms windows), storm={}, seed={:#x}",
        cfg.threads, cfg.rate, cfg.duration_ms, cfg.window_ms, cfg.storm, cfg.seed
    );
    let outcomes = run_slo(cfg);
    let doc = rtle_bench::slo::doc_to_json(cfg, &outcomes);
    print!("{}", render_slo(&doc).expect("fresh export always renders"));
    if args.timeline {
        print!("{}", render_timeline(&doc).expect("fresh export always renders"));
    }
    for o in &outcomes {
        if let Some(p) = &o.flight_path {
            eprintln!("slo_bench: flight record written: {}", p.display());
        }
    }
    if let Some(path) = &args.json {
        std::fs::write(path, doc.to_string_pretty()).expect("write JSON export");
        eprintln!("slo_bench: wrote {}", path.display());
    }
}
