//! Ablation sweeps for the design choices DESIGN.md calls out:
//! lazy vs eager lock subscription (§5) and the lock holder's
//! `uniq_*_orecs` barrier shortcut (§4.2).

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let lazy = figures::ablation_lazy_subscription(scale);
    print_table("Ablation: lazy vs eager subscription (ops/ms)", &lazy);
    print_csv("Ablation lazy", "ops_per_ms", &lazy);
    println!();
    let uniq = figures::ablation_uniq_shortcut(scale);
    print_table("Ablation: uniq-orecs shortcut (ops/ms)", &uniq);
    print_csv("Ablation uniq", "ops_per_ms", &uniq);
    println!();
    let ad = figures::ablation_adaptive(scale);
    print_table("Beyond-paper: adaptive FG-TLE vs fixed configs (ops/ms)", &ad);
    print_csv("Adaptive", "ops_per_ms", &ad);
    let mut report = Report::new("ablations", scale);
    report.add_series("lazy_subscription", "ops_per_ms", &lazy);
    report.add_series("uniq_shortcut", "ops_per_ms", &uniq);
    report.add_series("adaptive", "ops_per_ms", &ad);
    report.write_if_requested(args.json.as_deref());
}
