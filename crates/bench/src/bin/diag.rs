//! Diagnostic harness: the abort composition, path distribution and
//! latency percentiles behind the Figure 5/6 headline numbers, per
//! method, collected through an attempt-level recorder attached to the
//! simulator. Not a paper figure — the equivalent of the "lightweight
//! statistics" analysis of §6.2.1.
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin diag -- [threads] [--quick] [--json out.json]
//! ```

use rtle_bench::diag::{diag_to_json, print_diag_table, run_diag};
use rtle_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let threads: usize = args
        .rest
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let sim_ms = if args.quick { 1 } else { 2 };
    let rows = run_diag(threads, sim_ms);
    print_diag_table(threads, &rows);
    if let Some(path) = args.json.as_deref() {
        let doc = diag_to_json(threads, &rows).to_string_pretty();
        if let Err(e) = std::fs::write(path, doc + "\n") {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}
