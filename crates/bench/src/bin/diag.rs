//! Diagnostic harness: the abort composition and path distribution behind
//! the Figure 5/6 headline numbers, per method. Not a paper figure — the
//! equivalent of the "lightweight statistics" analysis of §6.2.1.
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin diag [threads]
//! ```

use rtle_sim::engine::{Engine, RunMode};
use rtle_sim::workloads::avl::{AvlConfig, AvlWorkload};
use rtle_sim::{CostModel, MachineProfile, SimMethod};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);

    println!("AVL 8192 keys, 20:20:60, {threads} threads, {}:", machine.name);
    println!(
        "{:<18}{:>9}{:>8}{:>8}{:>8}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "method",
        "ops",
        "fast",
        "slow",
        "lock",
        "ab.conf",
        "ab.cap",
        "ab.uarch",
        "ab.owned",
        "lockfrac"
    );

    let mut methods = SimMethod::figure5_set();
    methods.push(SimMethod::AdaptiveFgTle {
        initial: 64,
        max_orecs: 8192,
    });
    for m in methods {
        let w = AvlWorkload::new(threads, cfg);
        let s = Engine::new(
            m,
            threads,
            CostModel::pointer_chasing(),
            RunMode::FixedDuration(2 * machine.cycles_per_ms()),
            w,
        )
        .with_time_scale(machine.smt_factor(threads))
        .with_spurious_aborts(machine.htm_spurious(threads))
        .run();
        println!(
            "{:<18}{:>9}{:>8}{:>8}{:>8}{:>9}{:>9}{:>9}{:>9}{:>9.3}",
            m.label(),
            s.ops,
            s.fast_commits,
            s.slow_commits,
            s.lock_commits,
            s.aborts_conflict,
            s.aborts_capacity,
            s.aborts_uarch,
            s.aborts_eager_owned,
            s.cycles_locked as f64 / s.sim_cycles as f64,
        );
    }
}
