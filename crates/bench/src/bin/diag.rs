//! Diagnostic harness: the abort composition, path distribution and
//! latency percentiles behind the Figure 5/6 headline numbers, per
//! method, collected through an attempt-level recorder attached to the
//! simulator. Not a paper figure — the equivalent of the "lightweight
//! statistics" analysis of §6.2.1.
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin diag -- \
//!     [threads] [--quick] [--json out.json] [--heatmap] [--trace out.trace.json]
//! ```
//!
//! `--heatmap` prints the per-orec conflict hot-spot report; `--trace`
//! writes a Chrome `trace_event` document loadable in Perfetto
//! (<https://ui.perfetto.dev>), one process per method (requires the
//! default `trace` feature for non-empty tracks).

use rtle_bench::diag::{
    diag_to_json, diag_trace_to_json, print_diag_table, print_heatmap_report, run_diag,
};
use rtle_bench::BenchArgs;

fn write_doc(path: &std::path::Path, doc: String) {
    if let Err(e) = std::fs::write(path, doc + "\n") {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args = BenchArgs::parse();
    let threads: usize = args
        .rest
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let sim_ms = if args.quick { 1 } else { 2 };
    let rows = run_diag(threads, sim_ms);
    print_diag_table(threads, &rows);
    if args.heatmap {
        println!();
        print_heatmap_report(&rows);
    }
    if let Some(path) = args.json.as_deref() {
        write_doc(path, diag_to_json(threads, &rows).to_string_pretty());
    }
    if let Some(path) = args.trace.as_deref() {
        write_doc(path, diag_trace_to_json(&rows).to_string_pretty());
    }
}
