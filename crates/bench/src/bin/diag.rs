//! Diagnostic harness: the abort composition, path distribution and
//! latency percentiles behind the Figure 5/6 headline numbers, per
//! method, collected through an attempt-level recorder attached to the
//! simulator. Not a paper figure — the equivalent of the "lightweight
//! statistics" analysis of §6.2.1.
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin diag -- \
//!     [threads] [--quick] [--json out.json] [--heatmap] [--trace out.trace.json]
//! cargo run -p rtle-bench --release --bin diag -- --slo run.json
//! cargo run -p rtle-bench --release --bin diag -- --timeline flight.json
//! cargo run -p rtle-bench --release --bin diag -- top 127.0.0.1:9090
//! ```
//!
//! `top ADDR` connects to a live scrape endpoint (`slo_bench --live` /
//! `shard_bench --live`) and renders a refreshing per-source view:
//! commit-path mix, window latency percentiles, abort composition,
//! shard imbalance and watchdog status. `--iters N` bounds the refresh
//! count (0 = until the endpoint goes away, the default);
//! `--interval-ms N` sets the refresh period.
//!
//! `--heatmap` prints the per-orec conflict hot-spot report; `--trace`
//! writes a Chrome `trace_event` document loadable in Perfetto
//! (<https://ui.perfetto.dev>), one process per method (requires the
//! default `trace` feature for non-empty tracks).
//!
//! `--slo FILE` / `--timeline FILE` are offline viewers: they render a
//! saved `slo_bench` export (verdict summary / per-window timeline) or
//! a watchdog flight record without running anything. A file written by
//! an older build (schema mismatch) is a clean error telling you to
//! regenerate it, never a panic.

use rtle_bench::diag::{
    diag_to_json, diag_trace_to_json, print_diag_table, print_heatmap_report, run_diag,
};
use rtle_bench::slo::{load_versioned, render_slo, render_timeline, SloViewError};
use rtle_bench::BenchArgs;
use rtle_obs::Json;

fn write_doc(path: &std::path::Path, doc: String) {
    if let Err(e) = std::fs::write(path, doc + "\n") {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// Loads a schema-checked `slo_bench`/flight-record document and renders
/// it with `render`. Any failure — unreadable file, bad JSON, stale
/// schema, wrong shape — is a diagnostic on stderr and exit 1.
fn view_file(path: &std::path::Path, render: fn(&Json) -> Result<String, SloViewError>) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("diag: cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    match load_versioned(&text).and_then(|doc| render(&doc)) {
        Ok(rendered) => {
            print!("{rendered}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("diag: {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Parses and runs `diag top ADDR [--iters N] [--interval-ms N]`.
fn run_top_command(rest: &[String]) -> ! {
    let usage = || -> ! {
        eprintln!("usage: diag top ADDR [--iters N] [--interval-ms N]");
        std::process::exit(1);
    };
    let mut cfg = rtle_bench::top::TopConfig {
        addr: String::new(),
        iters: 0,
        interval_ms: 1_000,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                cfg.iters = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--interval-ms" => {
                cfg.interval_ms =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            flag if flag.starts_with('-') => usage(),
            addr if cfg.addr.is_empty() => cfg.addr = addr.to_string(),
            _ => usage(),
        }
    }
    if cfg.addr.is_empty() {
        usage();
    }
    match rtle_bench::top::run_top(&cfg) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("diag top: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // The `top` subcommand owns its own flags; dispatch before the
    // shared flag parser sees (and rejects) them.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("top") {
        run_top_command(&raw[1..]);
    }
    let args = BenchArgs::parse();
    if let Some(path) = args.slo.as_deref() {
        view_file(path, render_slo);
    }
    if let Some(path) = args.timeline.as_deref() {
        view_file(path, render_timeline);
    }
    let threads: usize = args
        .rest
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let sim_ms = if args.quick { 1 } else { 2 };
    let rows = run_diag(threads, sim_ms);
    print_diag_table(threads, &rows);
    if args.heatmap {
        println!();
        print_heatmap_report(&rows);
    }
    if let Some(path) = args.json.as_deref() {
        write_doc(path, diag_to_json(threads, &rows).to_string_pretty());
    }
    if let Some(path) = args.trace.as_deref() {
        write_doc(path, diag_trace_to_json(&rows).to_string_pretty());
    }
}
