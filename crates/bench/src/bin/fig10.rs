//! Figure 10: average value-based validations per software transaction,
//! NOrec vs RHNOrec.

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let series = figures::fig10(args.scale());
    print_table("Figure 10 validations per software txn", &series);
    print_csv("Figure 10", "validations_per_txn", &series);
    let mut report = Report::new("fig10", args.scale());
    report.add_series("validations", "validations_per_txn", &series);
    report.write_if_requested(args.json.as_deref());
}
