//! Figure 10: average value-based validations per software transaction,
//! NOrec vs RHNOrec.

use rtle_bench::{figures, print_csv, print_table, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let series = figures::fig10(scale);
    print_table("Figure 10 validations per software txn", &series);
    print_csv("Figure 10", "validations_per_txn", &series);
}
