//! Composable-transaction benchmark: one `atomically` closure over three
//! transactional structures (an `AvlSet`, a `TxHashSet`, and a
//! `ShardedTxMap`), swept across the space configurations, plus a
//! producer/consumer handoff that measures the retry/wakeup path.
//!
//! The headline numbers are thread-ns per committed transaction and the
//! ladder-rung mix (speculation / software TM / pessimistic) each space
//! settles into; the handoff section proves blocked consumers park and
//! are woken by commits rather than spinning (`parks`, `wakes_notified`,
//! `wakes_timeout` come straight from the space's [`rtle_stm::StmStats`]).
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin stm_bench            # full
//! cargo run -p rtle-bench --release --bin stm_bench -- --quick # smoke
//! cargo run -p rtle-bench --release --bin stm_bench -- --quick --json out.json
//! ```

use std::process::exit;
use std::time::Instant;

use rtle_avltree::{xorshift64, AvlSet};
use rtle_bench::BenchArgs;
use rtle_core::ElisionPolicy;
use rtle_obs::{Json, SCHEMA_VERSION};
use rtle_shard::ShardedTxMap;
use rtle_stm::{Stm, StmStatsSnapshot, TxVar};
use rtle_structs::TxHashSet;

const THREADS: usize = 4;
const KEY_SPACE: u64 = 128;

/// One measured row of the composed sweep.
struct Row {
    name: &'static str,
    ns_per_op: f64,
    committed: u64,
    snap: StmStatsSnapshot,
}

fn spaces() -> [(&'static str, Stm); 4] {
    [
        (
            "lock_only",
            Stm::builder()
                .policy(ElisionPolicy::LockOnly)
                .software_backends(Vec::new())
                .build(),
        ),
        ("tle", Stm::builder().policy(ElisionPolicy::Tle).build()),
        ("rw_tle", Stm::builder().policy(ElisionPolicy::RwTle).build()),
        (
            "fg_tle_norec",
            Stm::builder()
                .policy(ElisionPolicy::FgTle { orecs: 512 })
                .build(),
        ),
    ]
}

/// Runs the three-structure composed transaction mix on `space`:
/// 40% insert / 40% remove / 20% lookup, every op covering all three
/// structures atomically.
fn run_composed(name: &'static str, space: &Stm, ops_per_thread: u64) -> Row {
    let avl = AvlSet::with_key_range(KEY_SPACE);
    let hash = TxHashSet::with_capacity(2048);
    let map: ShardedTxMap<u64> = ShardedTxMap::with_builder(8, 512, space.lock_builder());

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let (avl, hash, map) = (&avl, &hash, &map);
        for t in 0..THREADS {
            s.spawn(move || {
                let mut rng = 0x57b_0b37u64 ^ (t as u64 + 1);
                for _ in 0..ops_per_thread {
                    let r = xorshift64(&mut rng);
                    let k = r % KEY_SPACE;
                    match (r >> 32) % 5 {
                        0 | 1 => space.atomically(|tx| {
                            avl.insert(tx, k);
                            hash.insert(tx, k);
                            tx.map_insert(map, k, k + 1);
                            Ok(())
                        }),
                        2 | 3 => space.atomically(|tx| {
                            avl.remove(tx, k);
                            hash.remove(tx, k);
                            tx.map_remove(map, k);
                            Ok(())
                        }),
                        _ => space.atomically(|tx| {
                            let a = avl.contains(tx, k);
                            let h = hash.contains(tx, k);
                            let m = tx.map_contains(map, k);
                            assert_eq!(a, h, "torn commit: avl vs hash");
                            assert_eq!(a, m, "torn commit: avl vs map");
                            Ok(())
                        }),
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let snap = space.stats().snapshot();
    let committed = snap.commits();
    Row {
        name,
        ns_per_op: elapsed.as_nanos() as f64 * THREADS as f64 / committed.max(1) as f64,
        committed,
        snap,
    }
}

/// Producer/consumer handoff over a bounded TxVar counter: consumers
/// block via `retry` when the pool is empty, producers when it is full.
/// Returns the space's stats (parks and notified wakeups are the point)
/// and the items moved per second.
fn run_handoff(items: u64) -> (StmStatsSnapshot, f64) {
    let space = Stm::new();
    let pool = TxVar::new(0u64);
    const BOUND: u64 = 4;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let (space, pool) = (&space, &pool);
        s.spawn(move || {
            for _ in 0..items {
                space.atomically(|tx| {
                    let n = tx.read(pool);
                    tx.check(n < BOUND)?; // full: park until a consumer drains
                    tx.write(pool, n + 1);
                    Ok(())
                });
            }
        });
        s.spawn(move || {
            for _ in 0..items {
                space.atomically(|tx| {
                    let n = tx.read(pool);
                    tx.check(n > 0)?; // empty: park until a producer fills
                    tx.write(pool, n - 1);
                    Ok(())
                });
            }
        });
    });
    let per_sec = items as f64 / t0.elapsed().as_secs_f64();
    (space.stats().snapshot(), per_sec)
}

fn main() {
    let args = BenchArgs::parse();
    let (ops_per_thread, handoff_items) = if args.quick {
        (2_000, 500)
    } else {
        (50_000, 20_000)
    };

    println!(
        "stm_bench: composed 3-structure transactions, {THREADS} threads x {ops_per_thread} ops"
    );
    println!(
        "{:<16}{:>12}{:>10}{:>10}{:>10}{:>10}",
        "space", "ns/op", "spec", "sw", "locked", "restarts"
    );
    let rows: Vec<Row> = spaces()
        .into_iter()
        .map(|(name, space)| {
            let row = run_composed(name, &space, ops_per_thread);
            println!(
                "{:<16}{:>12.0}{:>10}{:>10}{:>10}{:>10}",
                row.name,
                row.ns_per_op,
                row.snap.commits_spec,
                row.snap.commits_sw,
                row.snap.commits_locked,
                row.snap.plan_restarts
            );
            row
        })
        .collect();

    let (handoff, handoff_per_sec) = run_handoff(handoff_items);
    println!(
        "\nhandoff: {handoff_items} items, {:.0} items/s — parks={} wakes_notified={} \
         wakes_timeout={}",
        handoff_per_sec, handoff.parks, handoff.wakes_notified, handoff.wakes_timeout
    );

    // Sanity that holds even on a loaded 1-core host: the bounded buffer
    // forces real blocking, and wakeups must be delivered by commits.
    assert!(handoff.wakeups_sent >= 1, "no wakeups sent: {handoff:?}");

    if let Some(path) = &args.json {
        let rung_mix = |s: &StmStatsSnapshot| {
            Json::obj([
                ("spec", Json::UInt(s.commits_spec)),
                ("sw", Json::UInt(s.commits_sw)),
                ("locked", Json::UInt(s.commits_locked)),
                ("plan_restarts", Json::UInt(s.plan_restarts)),
            ])
        };
        let doc = Json::obj([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("tool", Json::Str("stm_bench".into())),
            ("kind", Json::Str("perf-baseline".into())),
            ("latency_unit", Json::Str("ns".into())),
            ("threads", Json::UInt(THREADS as u64)),
            ("ops_per_thread", Json::UInt(ops_per_thread)),
            (
                "benches",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::Str(format!("stm/composed/{}", r.name))),
                                ("ns_per_op", Json::Num(r.ns_per_op)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "committed_ops",
                Json::Obj(
                    rows.iter()
                        .map(|r| (format!("stm/composed/{}", r.name), Json::UInt(r.committed)))
                        .collect(),
                ),
            ),
            (
                "rung_mix",
                Json::Obj(
                    rows.iter()
                        .map(|r| (r.name.to_string(), rung_mix(&r.snap)))
                        .collect(),
                ),
            ),
            (
                "handoff",
                Json::obj([
                    ("items", Json::UInt(handoff_items)),
                    ("items_per_sec", Json::Num(handoff_per_sec)),
                    ("parks", Json::UInt(handoff.parks)),
                    ("wakes_notified", Json::UInt(handoff.wakes_notified)),
                    ("wakes_timeout", Json::UInt(handoff.wakes_timeout)),
                    ("wakeups_sent", Json::UInt(handoff.wakeups_sent)),
                ]),
            ),
        ]);
        if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
        println!("wrote {}", path.display());
    }
}
