//! Figure 8: RHNOrec slow-path throughput split — hardware commits that
//! bump the clock (SlowHTM) vs software commits (SWSlow), per ms of
//! software-transaction time.

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let (htm, sw) = figures::fig08(args.scale());
    let series = vec![htm, sw];
    print_table("Figure 8 RHNOrec slow-path throughput", &series);
    print_csv("Figure 8", "commits_per_ms_sw_time", &series);
    let mut report = Report::new("fig08", args.scale());
    report.add_series("slow_path_split", "commits_per_ms_sw_time", &series);
    report.write_if_requested(args.json.as_deref());
}
