//! Figure 8: RHNOrec slow-path throughput split — hardware commits that
//! bump the clock (SlowHTM) vs software commits (SWSlow), per ms of
//! software-transaction time.

use rtle_bench::{figures, print_csv, print_table, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let (htm, sw) = figures::fig08(scale);
    let series = vec![htm, sw];
    print_table("Figure 8 RHNOrec slow-path throughput", &series);
    print_csv("Figure 8", "commits_per_ms_sw_time", &series);
}
