//! Figure 12: AVL throughput with one thread running HTM-hostile updates
//! while all other threads run Finds (65536 key range).

use rtle_bench::{figures, print_csv, print_table, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let series = figures::fig12(scale);
    print_table("Figure 12 hostile updater + finders (ops/ms)", &series);
    print_csv("Figure 12", "ops_per_ms", &series);
}
