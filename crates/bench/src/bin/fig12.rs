//! Figure 12: AVL throughput with one thread running HTM-hostile updates
//! while all other threads run Finds (65536 key range).

use rtle_bench::{figures, print_csv, print_table, BenchArgs, Report};

fn main() {
    let args = BenchArgs::parse();
    let series = figures::fig12(args.scale());
    print_table("Figure 12 hostile updater + finders (ops/ms)", &series);
    print_csv("Figure 12", "ops_per_ms", &series);
    let mut report = Report::new("fig12", args.scale());
    report.add_series("hostile_updater", "ops_per_ms", &series);
    report.write_if_requested(args.json.as_deref());
}
