//! Perf-baseline harness binary.
//!
//! ```sh
//! # Measure the baseline suite and write a schema-versioned document:
//! cargo run -p rtle-bench --release --bin bench -- run --out BENCH_0.json
//!
//! # Diff a new run against a stored baseline (exit 1 on regression,
//! # unless --report-only):
//! cargo run -p rtle-bench --release --bin bench -- compare BENCH_0.json new.json
//! ```

use std::path::Path;
use std::process::exit;

use rtle_bench::baseline::{
    baseline_from_json, baseline_to_json, compare, render_compare, run_baseline, DEFAULT_RATIO,
};
use rtle_obs::parse_json;

fn usage() -> ! {
    eprintln!(
        "usage: bench run [--out PATH]\n       bench compare OLD NEW [--threshold RATIO] [--report-only]"
    );
    exit(2);
}

fn load(path: &str) -> Vec<rtle_bench::baseline::BenchResult> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let j = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        exit(1);
    });
    baseline_from_json(&j).unwrap_or_else(|| {
        eprintln!("{path}: not a perf-baseline document");
        exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out = Some(it.next().cloned().unwrap_or_else(|| usage())),
                    _ => usage(),
                }
            }
            let results = run_baseline();
            if let Some(path) = out {
                let doc = baseline_to_json(&results).to_string_pretty();
                if let Err(e) = std::fs::write(Path::new(&path), doc + "\n") {
                    eprintln!("cannot write {path}: {e}");
                    exit(1);
                }
                eprintln!("wrote {path}");
            }
        }
        Some("compare") => {
            if args.len() < 3 {
                usage();
            }
            let (old_path, new_path) = (&args[1], &args[2]);
            let mut threshold = DEFAULT_RATIO;
            let mut report_only = false;
            let mut it = args[3..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--threshold" => {
                        threshold = it
                            .next()
                            .and_then(|s| s.parse().ok())
                            .filter(|&t| t > 1.0)
                            .unwrap_or_else(|| usage());
                    }
                    "--report-only" => report_only = true,
                    _ => usage(),
                }
            }
            let outcome = compare(&load(old_path), &load(new_path), threshold);
            print!("{}", render_compare(&outcome));
            if !outcome.ok() && !report_only {
                exit(1);
            }
        }
        _ => usage(),
    }
}
