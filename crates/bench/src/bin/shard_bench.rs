//! Throughput scaling of [`ShardedTxMap`] vs a single `ElidableLock`.
//!
//! Runs the same mixed workload (76% `get`, 10% `insert`, 10%
//! `remove`, 4% pessimistic audit scans, uniform keys) at 1–8 threads
//! against a 1-shard map — which *is* a single `ElidableLock` guarding
//! one transactional map — and an N-shard map (default 16), and reports
//! committed-ops throughput. Emits a `perf-baseline`-kind JSON document
//! so the existing `bench compare` harness diffs runs (`--json PATH`),
//! with the sharded run's merged per-shard observability report embedded
//! under `shard_stats`.
//!
//! The audit fraction is what makes the comparison honest rather than a
//! hash-table microbenchmark: audits are maintenance scans that must run
//! under the lock (irrevocable, HTM-unfriendly work), and a lock-holder
//! descheduled mid-scan strands every thread that next needs *that*
//! lock — with one global lock that is every auditor in the process,
//! with N shards it is the ~1/N of traffic routed to the stranded shard.
//! This is exactly the single-big-lock pathology sharding exists to
//! contain, and it is what the speedup figure measures.
//!
//! ```sh
//! cargo run -p rtle-bench --release --bin shard_bench            # full
//! cargo run -p rtle-bench --release --bin shard_bench -- --quick # smoke
//! ```

use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rtle_bench::baseline::BenchResult;
use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::prng::SplitMix64;
use rtle_obs::{Json, LiveServer, MetricsRegistry, SCHEMA_VERSION};
use rtle_shard::ShardedTxMap;

struct Args {
    quick: bool,
    threads: usize,
    shards: usize,
    json: Option<String>,
    seed: u64,
    /// One op in `audit_one_in` is a pessimistic audit sweep.
    audit_one_in: u64,
    /// Passes over the scan window per audit (sets the sweep's length).
    audit_passes: u64,
    /// `--live ADDR`: serve each run's map at `/metrics` and `/json`
    /// while the sweep executes.
    live: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: 8,
        shards: 16,
        json: None,
        seed: 0x5ba4d,
        audit_one_in: 2_048,
        audit_passes: 256,
        live: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--threads" => args.threads = num(it.next()) as usize,
            "--shards" => args.shards = num(it.next()) as usize,
            "--seed" => args.seed = num(it.next()),
            "--audit-one-in" => args.audit_one_in = num(it.next()).max(1),
            "--audit-passes" => args.audit_passes = num(it.next()).max(1),
            "--json" => args.json = Some(it.next().unwrap_or_else(|| usage())),
            "--live" => args.live = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if !args.shards.is_power_of_two() || args.shards == 0 {
        eprintln!("--shards must be a power of two");
        exit(2);
    }
    args
}

fn num(s: Option<String>) -> u64 {
    let s = s.unwrap_or_else(|| usage());
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.unwrap_or_else(|_| usage())
}

fn usage() -> ! {
    eprintln!(
        "usage: shard_bench [--quick] [--threads N] [--shards N] [--seed S] \
         [--audit-one-in N] [--audit-passes P] [--json PATH] [--live ADDR]"
    );
    exit(2);
}

struct RunOutcome {
    ops_per_ms: f64,
    ns_per_op: f64,
    map: Arc<ShardedTxMap>,
}

/// The partition a key belongs to — the same hash and bit-slice the
/// `partitions`-shard map routes by, computed independently of the map
/// under test so both configurations see identical per-thread streams.
fn part_of(key: u64, partitions: usize) -> usize {
    if partitions == 1 {
        return 0;
    }
    (rtle_htm::hash::wang_mix64(key) >> (64 - partitions.trailing_zeros())) as usize
}

/// Partitioned mixed workload: the key space is split into `partitions`
/// slices (by the exact hash/bit-slice a `partitions`-shard map routes
/// by), each thread owns an exclusive set of partitions, and runs 80%
/// `get` / 10% `insert` / 10% `remove` over its own keys — the
/// per-client regime sharding serves. One op in `audit_one_in` is a
/// pessimistic audit: `audit_passes` verification passes over each owned
/// partition, under the owning shard's lock
/// ([`ShardedTxMap::with_shard_locked`]).
///
/// Both configurations run the identical per-thread key streams and the
/// identical audit sweeps; only the lock granularity differs. At
/// `shards == partitions` every partition is one shard, so threads never
/// share a lock and an audit freezes only the auditor's own data. At
/// `shards == 1` the same streams funnel through one `ElidableLock`:
/// non-audit traffic still speculates concurrently (refined TLE at
/// work), but every audit pins the global lock — and, with FG-TLE, its
/// sweep stamps essentially the whole orec table, so concurrent slow
/// paths abort (`OREC_CONFLICT`) until the audit drains. A descheduled
/// auditor then strands the entire process, which is exactly the
/// single-big-lock pathology this benchmark quantifies.
/// The per-run workload shape shared by every configuration of the
/// sweep, so single-lock and sharded runs are compared on identical work.
#[derive(Clone, Copy)]
struct Workload {
    keys: u64,
    ops_per_thread: u64,
    seed: u64,
    audit_one_in: u64,
    audit_passes: u64,
}

fn run_mixed(
    shards: usize,
    partitions: usize,
    threads: usize,
    w: Workload,
    live: Option<(&MetricsRegistry, &str)>,
) -> RunOutcome {
    let Workload { keys, ops_per_thread, seed, audit_one_in, audit_passes } = w;
    let map: Arc<ShardedTxMap> = Arc::new(ShardedTxMap::with_builder(
        shards,
        // Size each shard so total capacity covers the key range with the
        // 2x headroom TxMap wants, independent of shard count.
        ((keys as usize * 2) / shards).max(64),
        ElidableLock::builder().policy(ElisionPolicy::FgTle { orecs: 128 }),
    ));
    if let Some((registry, label)) = live {
        // Registered before the clock starts, so a scraper watching the
        // endpoint sees every run of the sweep from its first op.
        map.register_live(registry, label);
    }
    // Pre-populate half the key range so gets actually hit.
    for k in (0..keys).step_by(2) {
        map.insert(k, k);
    }
    // Each partition's keys, computed once outside the measured region (a
    // real system would keep this via per-shard iteration).
    let owned: Arc<Vec<Vec<u64>>> = Arc::new(
        (0..partitions)
            .map(|p| (0..keys).filter(|&k| part_of(k, partitions) == p).collect())
            .collect(),
    );
    // Extra lock sections committed by audits (beyond their one workload
    // op), for the exact-commit sanity check below.
    let audit_extra = AtomicU64::new(0);
    let before = map.merged_stats();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let map = Arc::clone(&map);
            let owned = Arc::clone(&owned);
            let audit_extra = &audit_extra;
            scope.spawn(move || {
                // This thread's exclusive partitions and key pool.
                let my_parts: Vec<usize> = if partitions >= threads {
                    (0..partitions).filter(|p| p % threads == t).collect()
                } else {
                    vec![t % partitions] // more threads than partitions: share
                };
                let pool: Vec<u64> = my_parts
                    .iter()
                    .flat_map(|&p| owned[p].iter().copied())
                    .collect();
                let mut rng = SplitMix64::new(seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
                let mut extra = 0u64;
                for _ in 0..ops_per_thread {
                    let k = pool[rng.below(pool.len() as u64) as usize];
                    if rng.below(audit_one_in) == 0 {
                        // Rare pessimistic audit: verify this thread's own
                        // partitions, one lock section per partition
                        // (maintenance work that must not speculate). The
                        // sharded map pins only the auditor's own shards;
                        // the single lock pins the world.
                        let mut acc = 0u64;
                        for &p in &my_parts {
                            let keys_of = &owned[p];
                            extra += 1;
                            acc = map.with_shard_locked(map.shard_of(keys_of[0]), |m, ctx| {
                                let mut a = acc;
                                for _ in 0..audit_passes {
                                    for &key in keys_of {
                                        a = a.wrapping_add(m.get(ctx, key).unwrap_or(0));
                                    }
                                }
                                a
                            });
                        }
                        extra -= 1; // the audit itself is one workload op
                        std::hint::black_box(acc);
                    } else {
                        match rng.below(10) {
                            0 => {
                                map.insert(k, k);
                            }
                            1 => {
                                map.remove(k);
                            }
                            _ => {
                                std::hint::black_box(map.get(k));
                            }
                        }
                    }
                }
                audit_extra.fetch_add(extra, Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed();
    // Sanity: every workload op commits exactly once; an audit commits one
    // lock section per owned partition.
    let committed = map.merged_stats().since(&before).ops;
    let workload_ops = threads as u64 * ops_per_thread;
    assert_eq!(
        committed,
        workload_ops + audit_extra.load(Ordering::Relaxed),
        "every submitted op must commit exactly once"
    );
    // Throughput is counted in workload ops (an audit is one op no matter
    // how many shard sections it visits), so the two configurations are
    // compared on identical work.
    RunOutcome {
        ops_per_ms: workload_ops as f64 / elapsed.as_secs_f64() / 1e3,
        ns_per_op: elapsed.as_nanos() as f64 / workload_ops.max(1) as f64,
        map,
    }
}

fn main() {
    let args = parse_args();
    let (keys, ops_per_thread) = if args.quick { (1024, 48_000) } else { (2048, 96_000) };

    let live = args.live.as_ref().map(|addr| {
        let registry = Arc::new(MetricsRegistry::new());
        let server = LiveServer::start(Arc::clone(&registry), addr.as_str())
            .unwrap_or_else(|e| {
                eprintln!("shard_bench: cannot bind live endpoint on {addr}: {e}");
                exit(1);
            });
        eprintln!("shard_bench: live endpoint at http://{}/metrics", server.addr());
        (registry, server)
    });

    println!(
        "shard_bench: mixed 80/10/10 over {keys} keys, {} ops/thread, \
         audit 1/{} x {} passes, seed {:#x}",
        ops_per_thread, args.audit_one_in, args.audit_passes, args.seed
    );
    println!(
        "{:<28}{:>10}{:>16}{:>12}",
        "configuration", "threads", "ops/ms", "ns/op"
    );

    let mut results: Vec<BenchResult> = Vec::new();
    let mut headline: Vec<(f64, f64)> = Vec::new(); // (single, sharded) at max threads
    let thread_points: Vec<usize> = if args.quick {
        vec![args.threads]
    } else {
        vec![1, 2, 4, args.threads]
    };
    let mut sharded_report = None;
    for &threads in &thread_points {
        let mut pair = (0.0, 0.0);
        for shards in [1, args.shards] {
            let label = format!("shard{shards}_mixed_{threads}thr");
            let out = run_mixed(
                shards,
                args.shards,
                threads,
                Workload {
                    keys,
                    ops_per_thread,
                    seed: args.seed,
                    audit_one_in: args.audit_one_in,
                    audit_passes: args.audit_passes,
                },
                live.as_ref().map(|(r, _)| (r.as_ref(), label.as_str())),
            );
            println!(
                "{label:<28}{threads:>10}{:>16.1}{:>12.1}",
                out.ops_per_ms, out.ns_per_op
            );
            if std::env::var_os("SHARD_BENCH_DEBUG").is_some() {
                eprintln!("  [debug] {label}: {:?}", out.map.merged_stats());
            }
            results.push(BenchResult {
                name: label,
                ns_per_op: out.ns_per_op,
            });
            if shards == 1 {
                pair.0 = out.ops_per_ms;
            } else {
                pair.1 = out.ops_per_ms;
                if threads == args.threads {
                    sharded_report = Some(out.map.report());
                }
            }
        }
        if threads == args.threads {
            headline = vec![pair];
        }
    }

    let (single, sharded) = headline[0];
    let speedup = sharded / single.max(f64::MIN_POSITIVE);
    println!(
        "\n{}-shard speedup over single lock at {} threads: {speedup:.2}x",
        args.shards, args.threads
    );

    let report = sharded_report.expect("sharded run at max threads always happens");
    println!(
        "sharded run: load imbalance {:.2}, abort imbalance {:.2}, lock fallback rate {:.4}",
        report.load_imbalance(),
        report.abort_imbalance(),
        report.merged.lock_fallback_rate()
    );

    if let Some(path) = args.json {
        // perf-baseline kind: `bench compare` diffs the rows; the extra
        // fields (speedup + the merged shard-stats document) ride along
        // for the tier-1 smoke gate and operators.
        let doc = Json::obj([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("tool", Json::Str("shard_bench".into())),
            ("kind", Json::Str("perf-baseline".into())),
            ("latency_unit", Json::Str("ns".into())),
            ("threads", Json::UInt(args.threads as u64)),
            ("shards", Json::UInt(args.shards as u64)),
            ("seed", Json::UInt(args.seed)),
            ("speedup_at_max_threads", Json::Num(speedup)),
            ("shard_stats", report.to_json()),
            (
                "benches",
                Json::Arr(
                    results
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("name", Json::Str(r.name.clone())),
                                ("ns_per_op", Json::Num(r.ns_per_op)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("wrote {path}");
    }
}
