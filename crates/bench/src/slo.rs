//! The open-loop SLO harness: windowed tail-latency measurement of the
//! elision runtimes under a fixed arrival schedule, with a collapse
//! watchdog riding the window rotator.
//!
//! # Why open-loop
//!
//! A closed-loop benchmark (each thread issues the next operation when
//! the previous one returns) measures *service* time and silently
//! forgives stalls: while the lock convoys, the loop simply stops
//! submitting, so the stall shows up in one unlucky sample instead of
//! the hundreds of requests that would have arrived meanwhile — the
//! classic coordinated-omission error. This harness instead draws a
//! SplitMix64-seeded schedule of **intended** arrival times
//! (exponential inter-arrival at a target rate) before touching the
//! lock, and charges every operation from its intended start: when the
//! runtime falls behind, the queueing delay lands in the percentiles of
//! every window it poisoned, exactly as a latency SLO would account it.
//!
//! # Workload
//!
//! 80% `get` / 10% `insert` / 10% `remove` with Zipf-ish skew (a
//! configurable share of ops aimed at a small hot set), plus rare
//! pessimistic audits — verify-and-refresh sweeps whose write-backs
//! stamp the orec table of the scope they pin, so concurrent slow
//! paths there abort. A mid-run **hot-key storm** (the middle fifth of
//! the schedule) shrinks the hot set to a strided handful of keys,
//! turns the mix write-heavy, and multiplies the audit frequency — the
//! forced-collapse stimulus. The identical schedule (same seed, same
//! arrival times, same key and audit draws) runs against two
//! configurations:
//!
//! * `single_lock` — one `ElidableLock` + `TxMap`, operations through
//!   [`rtle_core::ElidableLock::execute_from`] (the core intended-start
//!   hook); every audit pins the world and the storm convoys the lock.
//! * `sharded` — a [`ShardedTxMap`] whose shards share one windowed
//!   [`Recorder`]; audits pin one shard, and the same storm stays a
//!   local nuisance.
//!
//! A rotator thread closes telemetry windows every `window_ms` and
//! feeds each to a [`Watchdog`]; on the first collapse verdict the
//! flight record (trailing windows + recent attempt events) is dumped
//! to a JSON file for offline `diag --timeline` analysis.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtle_core::{Ctx, ElidableLock, ElisionPolicy, RetryPolicy};
use rtle_htm::prng::SplitMix64;
use rtle_obs::{
    flight_record, CollapseEvent, HistSnapshot, Json, LiveServer, LiveSource, MetricsRegistry,
    ObsConfig, Recorder, Watchdog, WatchdogConfig, WindowSnapshot, SCHEMA_VERSION,
};
use rtle_shard::{ShardedTxMap, TxMap};

/// All knobs of one SLO run (both configurations share it).
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Worker (load-generator) threads.
    pub threads: usize,
    /// Target total arrival rate, operations per second.
    pub rate: f64,
    /// Scheduled load duration in ms (the run tail-drains past it when
    /// the system falls behind — that is the point).
    pub duration_ms: u64,
    /// Telemetry window length in ms.
    pub window_ms: u64,
    /// Key-space size.
    pub keys: u64,
    /// Percent of operations aimed at the hot set (Zipf-ish skew).
    pub hot_pct: u64,
    /// Hot-set size outside the storm.
    pub hot_keys: u64,
    /// Inject the mid-run hot-key storm (middle fifth of the schedule:
    /// hot set shrinks to `storm_keys`, writes surge to
    /// `storm_write_pct`, audits multiply by `storm_audit_boost`).
    pub storm: bool,
    /// Hot-set size during the storm (strided, so the keys scatter
    /// across shards — the stress is the skew, not one unlucky shard).
    pub storm_keys: u64,
    /// Percent of storm ops that are writes (insert/remove).
    pub storm_write_pct: u64,
    /// One op in this many is a pessimistic audit scan (outside storm).
    pub audit_one_in: u64,
    /// Audit-frequency multiplier during the storm.
    pub storm_audit_boost: u64,
    /// Scan passes over the key space per audit.
    pub audit_passes: u64,
    /// How long each audit *holds its lock across a blocking wait*
    /// (checkpoint-style I/O under quiesce), in ms. This is the
    /// collapse stimulus that lock granularity actually decides: the
    /// hold blocks one shard on the sharded map but the whole world on
    /// the single lock — without saturating the CPU, so the difference
    /// survives even on a single-core host.
    pub audit_hold_ms: u64,
    /// Shard count for the sharded configuration (power of two).
    pub shards: usize,
    /// Schedule seed: same seed = same arrivals, keys and audit draws.
    pub seed: u64,
    /// Worst-window p99 SLO target, ms.
    pub p99_target_ms: f64,
    /// Worst-window p999 SLO target, ms.
    pub p999_target_ms: f64,
    /// Closed windows retained per run.
    pub series_cap: usize,
    /// Where collapse flight records are written (`None` disables the
    /// dump; the watchdog still reports verdicts).
    pub flight_dir: Option<PathBuf>,
    /// Bind address for the live scrape endpoint (`None` disables it).
    /// Each target's recorder and watchdog mirror — plus the sharded
    /// map itself — register with one [`MetricsRegistry`] served at
    /// `/metrics` and `/json` for the whole run.
    pub live: Option<String>,
    /// Where to write the endpoint's actual address (useful with a
    /// `:0` ephemeral port — the tier-1 scrape smoke reads this).
    pub live_port_file: Option<PathBuf>,
}

impl SloConfig {
    /// The full-size run the checked-in `SLO_0.json` baseline uses.
    pub fn full() -> SloConfig {
        SloConfig {
            // Enough workers that an audit's blocking hold occupies one
            // generator — and every op queued behind a held shard
            // another — without starving the schedule: the open-loop
            // backlog must come from the system under test, not from
            // the harness running out of threads. Cheap even on a
            // 1-core host — workers sleep between arrivals.
            threads: 32,
            // The rate is chosen against the audit holds, not the CPU:
            // during the storm the single lock serializes one
            // `audit_hold_ms` hold every `audit_one_in /
            // storm_audit_boost` ops, capping it near 1.9k ops/s — far
            // under the offered 6k (forced collapse) — while the
            // sharded map spreads the same holds over all shards and
            // keeps up. Low enough that workers' sleeps stay honest
            // even on a single core.
            rate: 6_000.0,
            duration_ms: 6_000,
            window_ms: 200,
            keys: 2_048,
            hot_pct: 90,
            hot_keys: 32,
            storm: true,
            storm_keys: 16,
            storm_write_pct: 30,
            audit_one_in: 1_500,
            storm_audit_boost: 96,
            audit_passes: 4,
            audit_hold_ms: 8,
            shards: 16,
            seed: 0x510_b42d,
            // Sized for the sharded map on a busy 1-core host: storm
            // windows legitimately queue a few hundred ms behind the
            // 8 ms blocking holds, while the convoyed single lock
            // backlogs past two full seconds — the verdicts separate
            // cleanly with margin on both sides.
            p99_target_ms: 400.0,
            p999_target_ms: 800.0,
            series_cap: 512,
            flight_dir: None,
            live: None,
            live_port_file: None,
        }
    }

    /// The tier-1 smoke scale: same shape, ~2 s wall time.
    pub fn quick() -> SloConfig {
        SloConfig {
            duration_ms: 2_000,
            window_ms: 125,
            keys: 1_024,
            ..SloConfig::full()
        }
    }

    fn duration_ns(&self) -> u64 {
        self.duration_ms * 1_000_000
    }

    /// `[storm_start, storm_end)` in schedule-ns: the middle fifth.
    fn storm_span(&self) -> (u64, u64) {
        (self.duration_ns() * 2 / 5, self.duration_ns() * 3 / 5)
    }
}

/// One configuration under test. Both wrap the same transactional map
/// type; only the lock granularity differs.
enum Target {
    /// One `ElidableLock` guarding one `TxMap` (the collapse candidate).
    /// Boxed: the lock (orec table + stats) dwarfs the sharded variant's
    /// handle, and the target is matched once per op, never moved.
    SingleLock {
        lock: Box<ElidableLock>,
        map: TxMap<u64>,
    },
    /// The sharded map; shards share the harness recorder. `Arc` so the
    /// map can double as a registered live-scrape source.
    Sharded { map: Arc<ShardedTxMap> },
}

impl Target {
    /// One workload op (`action`: 0 insert, 1 remove, else get), with
    /// the latency charged from `intended`. The single-lock target goes
    /// through `execute_from` — the runtime-side intended-start hook —
    /// while the sharded target (whose per-key API picks the lock
    /// internally) is timed harness-side into the same recorder.
    fn op(&self, rec: &Recorder, tkey: u64, intended: Instant, action: u64, key: u64) {
        match self {
            Target::SingleLock { lock, map } => {
                lock.execute_from(intended, |ctx: &Ctx<'_>| match action {
                    0 => {
                        map.insert(ctx, key, key);
                    }
                    1 => {
                        map.remove(ctx, key);
                    }
                    _ => {
                        std::hint::black_box(map.get(ctx, key));
                    }
                });
            }
            Target::Sharded { map } => {
                match action {
                    0 => {
                        map.insert(key, key);
                    }
                    1 => {
                        map.remove(key);
                    }
                    _ => {
                        std::hint::black_box(map.get(key));
                    }
                }
                rec.record_op_latency(tkey, intended.elapsed().as_nanos() as u64);
            }
        }
    }

    /// One pessimistic audit: a verify-and-refresh sweep over the key
    /// space under a real lock, then a blocking hold (`audit_hold_ms`,
    /// modeling checkpoint I/O done while quiesced) before releasing.
    /// The first pass *writes back* every present key — stamping the
    /// orec table, so concurrent slow paths on the pinned scope abort
    /// with OREC_CONFLICT for the section's whole duration — and the
    /// remaining passes re-verify read-only. Identical work in both
    /// targets; the single lock pins the world for the hold, the
    /// sharded map only `probe_key`'s shard.
    fn audit(&self, rec: &Recorder, tkey: u64, intended: Instant, cfg: &SloConfig, probe_key: u64) {
        fn sweep(m: &TxMap<u64>, ctx: &Ctx<'_>, cfg: &SloConfig) -> u64 {
            let mut acc = 0u64;
            for pass in 0..cfg.audit_passes {
                for k in 0..cfg.keys {
                    if let Some(v) = m.get(ctx, k) {
                        acc = acc.wrapping_add(v);
                        if pass == 0 {
                            m.insert(ctx, k, v); // refresh: write-stamps the orec
                        }
                    }
                }
            }
            acc
        }
        let hold = Duration::from_millis(cfg.audit_hold_ms);
        let acc = match self {
            Target::SingleLock { lock, map } => {
                let section = lock.lock_section();
                let acc = sweep(map, section.ctx(), cfg);
                std::thread::sleep(hold);
                acc
            }
            Target::Sharded { map } => {
                map.with_shard_locked(map.shard_of(probe_key), |m, ctx| {
                    let acc = sweep(m, ctx, cfg);
                    std::thread::sleep(hold);
                    acc
                })
            }
        };
        std::hint::black_box(acc);
        rec.record_op_latency(tkey, intended.elapsed().as_nanos() as u64);
    }
}

/// The worst (highest-p99) window of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstWindow {
    /// Window index on the run's timeline.
    pub index: u64,
    /// Its p99 latency, ns.
    pub p99_ns: u64,
    /// Its p999 latency, ns.
    pub p999_ns: u64,
}

/// Everything one configuration's run produced.
#[derive(Debug)]
pub struct SloOutcome {
    /// `"single_lock"` or `"sharded<N>"`.
    pub name: String,
    /// The closed-window series, oldest first.
    pub windows: Vec<WindowSnapshot>,
    /// All windows' latency merged: the full-run distribution.
    pub merged_latency: HistSnapshot,
    /// Operations submitted by the schedule (and completed — workers
    /// drain their schedule even when late).
    pub ops_submitted: u64,
    /// Completed ops per second of wall time (tail drain included).
    pub achieved_rate: f64,
    /// The worst window by p99, among windows that saw ops.
    pub worst: Option<WorstWindow>,
    /// Worst-window p99 within `p99_target_ms`?
    pub p99_met: bool,
    /// Worst-window p999 within `p999_target_ms`?
    pub p999_met: bool,
    /// Watchdog verdicts, oldest first.
    pub watchdog_events: Vec<CollapseEvent>,
    /// Flight-record path, when the watchdog fired and a dump directory
    /// was configured.
    pub flight_path: Option<PathBuf>,
}

fn exp_gap_ns(rng: &mut SplitMix64, mean_ns: f64) -> u64 {
    // Inverse-CDF exponential; f64() is in [0, 1), so 1-u is in (0, 1].
    (-mean_ns * (1.0 - rng.f64()).ln()) as u64
}

/// Sleeps until `target_ns` on the schedule clock. Pure sleep, no spin
/// phase: sub-100 µs arrival jitter is irrelevant against millisecond
/// SLO targets, while a spin-wait tail across many workers would eat
/// the whole budget of a small host and masquerade as system latency.
fn wait_until(t0: Instant, target_ns: u64) {
    loop {
        let now = t0.elapsed().as_nanos() as u64;
        if now >= target_ns {
            return;
        }
        std::thread::sleep(Duration::from_nanos(target_ns - now));
    }
}

/// Runs one configuration under the schedule. The returned outcome owns
/// everything the JSON export needs. When `registry` is given, the
/// run's watchdog publishes its live mirror there (the recorder and map
/// sources are registered by [`run_slo`] before the clock starts).
fn run_target(
    cfg: &SloConfig,
    name: String,
    target: Target,
    rec: Arc<Recorder>,
    registry: Option<Arc<MetricsRegistry>>,
) -> SloOutcome {
    let target = Arc::new(target);
    // Pre-populate half the key range so gets hit (outside the clock).
    for k in (0..cfg.keys).step_by(2) {
        match &*target {
            Target::SingleLock { lock, map } => {
                lock.execute(|ctx: &Ctx<'_>| {
                    map.insert(ctx, k, k);
                });
            }
            Target::Sharded { map } => {
                map.insert(k, k);
            }
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let submitted = AtomicU64::new(0);
    let (storm_lo, storm_hi) = cfg.storm_span();
    let t0 = Instant::now();

    // The rotator + watchdog thread: closes windows on schedule, feeds
    // each to the watchdog, dumps the flight record on first trigger.
    let rotator = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        let flight_to = cfg.flight_dir.as_ref().map(|d| d.join(format!("slo_flight_{name}.json")));
        let tick = Duration::from_millis((cfg.window_ms / 4).max(5));
        let wd_name = format!("{name}_watchdog");
        std::thread::spawn(move || {
            let mut wd = Watchdog::new(WatchdogConfig::default());
            let live_mirror = registry.map(|reg| {
                let mirror = wd.live();
                reg.register(wd_name, Arc::clone(&mirror) as Arc<dyn LiveSource>);
                mirror
            });
            let mut flight_path = None;
            let coll = rec.windows().expect("harness recorder always has windows");
            loop {
                let done = stop.load(Relaxed);
                let closed = if done {
                    // Final rotation collects the partial tail window.
                    Some(coll.rotate())
                } else {
                    coll.maybe_rotate()
                };
                if let Some(rot) = closed {
                    if let Some(ev) = wd.inspect(&rot.merged) {
                        if let (Some(path), None) = (&flight_to, &flight_path) {
                            let doc = flight_record(&ev, &coll.series(), &rec.snapshot());
                            if std::fs::write(path, doc.to_string_pretty()).is_ok() {
                                if let Some(mirror) = &live_mirror {
                                    mirror.set_flight_record_path(path.display().to_string());
                                }
                                flight_path = Some(path.clone());
                            }
                        }
                    }
                }
                if done {
                    return (wd.events().to_vec(), flight_path);
                }
                std::thread::sleep(tick);
            }
        })
    };

    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let target = Arc::clone(&target);
            let rec = Arc::clone(&rec);
            let submitted = &submitted;
            scope.spawn(move || {
                let mut rng =
                    SplitMix64::new(cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let mean_gap_ns = cfg.threads as f64 / cfg.rate * 1e9;
                let mut next_ns = exp_gap_ns(&mut rng, mean_gap_ns);
                let mut count = 0u64;
                while next_ns < cfg.duration_ns() {
                    // The schedule never waits for the system: `next_ns`
                    // advances by draw, and the op is charged from it.
                    wait_until(t0, next_ns);
                    let intended = t0 + Duration::from_nanos(next_ns);
                    let in_storm = cfg.storm && (storm_lo..storm_hi).contains(&next_ns);

                    let draw = rng.next_u64();
                    let key = if rng.below(100) < cfg.hot_pct {
                        if in_storm {
                            // Strided storm set: scorching keys that still
                            // scatter across shards — the stimulus is the
                            // skew + audits, not one overloaded shard.
                            (draw % cfg.storm_keys) * (cfg.keys / cfg.storm_keys.max(1))
                        } else {
                            (draw % cfg.hot_keys) * (cfg.keys / cfg.hot_keys.max(1))
                        }
                    } else {
                        draw % cfg.keys
                    };
                    let audit_period = if in_storm {
                        (cfg.audit_one_in / cfg.storm_audit_boost).max(1)
                    } else {
                        cfg.audit_one_in
                    };
                    if rng.below(audit_period) == 0 {
                        // Audits probe a uniform key: background integrity
                        // scans are not tied to the hot set, so the sharded
                        // target spreads them over all shards.
                        let probe = rng.below(cfg.keys);
                        target.audit(&rec, t as u64, intended, cfg, probe);
                    } else {
                        // 80/10/10 get/insert/remove normally; the storm
                        // turns write-heavy (flash-crowd updates).
                        let action = if in_storm {
                            if rng.below(100) < cfg.storm_write_pct {
                                draw % 2 // insert or remove
                            } else {
                                9
                            }
                        } else {
                            rng.below(10)
                        };
                        target.op(&rec, t as u64, intended, action, key);
                    }
                    count += 1;
                    next_ns += exp_gap_ns(&mut rng, mean_gap_ns);
                }
                submitted.fetch_add(count, Relaxed);
            });
        }
    });
    let wall = t0.elapsed();
    stop.store(true, Relaxed);
    let (watchdog_events, flight_path) = rotator.join().expect("rotator never panics");

    let windows = rec
        .windows()
        .expect("harness recorder always has windows")
        .series();
    let merged_latency =
        HistSnapshot::merged(windows.iter().map(|w| &w.counts.latency).collect::<Vec<_>>());
    let worst = windows
        .iter()
        .filter(|w| w.ops() > 0)
        .max_by_key(|w| w.latency_p(0.99))
        .map(|w| WorstWindow {
            index: w.index,
            p99_ns: w.latency_p(0.99),
            p999_ns: w.latency_p(0.999),
        });
    let ops_submitted = submitted.load(Relaxed);
    SloOutcome {
        p99_met: worst
            .as_ref()
            .is_none_or(|w| (w.p99_ns as f64) <= cfg.p99_target_ms * 1e6),
        p999_met: worst
            .as_ref()
            .is_none_or(|w| (w.p999_ns as f64) <= cfg.p999_target_ms * 1e6),
        name,
        windows,
        merged_latency,
        ops_submitted,
        achieved_rate: ops_submitted as f64 / wall.as_secs_f64(),
        worst,
        watchdog_events,
        flight_path,
    }
}

fn harness_recorder(cfg: &SloConfig) -> Arc<Recorder> {
    Arc::new(Recorder::new(ObsConfig {
        window_len_ms: cfg.window_ms,
        window_series_cap: cfg.series_cap,
        window_stripes: cfg.threads.next_power_of_two(),
        ..ObsConfig::default()
    }))
}

/// Runs the identical schedule against both configurations:
/// `single_lock` first, then `sharded<N>`.
///
/// Both use FG-TLE with the anti-starvation cap (`max_slow_attempts`)
/// set: an SLO-sensitive deployment bounds per-operation work, which is
/// also what makes a convoy *visible* — once an audit pins a scope for
/// longer than a few slow retries, waiters stop speculating and queue
/// on the lock, so a coarse-lock collapse shows up as the fallback-rate
/// spike the watchdog keys on instead of unbounded invisible spinning.
pub fn run_slo(cfg: &SloConfig) -> Vec<SloOutcome> {
    let policy = ElisionPolicy::FgTle { orecs: 128 };
    let retry = RetryPolicy {
        max_slow_attempts: Some(6),
        ..RetryPolicy::default()
    };
    let capacity = (cfg.keys as usize) * 2;

    // The live scrape endpoint, when asked for: one registry + server
    // outlives both target runs, so an operator watching `diag top` sees
    // the single-lock collapse and the sharded recovery back to back.
    let live = cfg.live.as_ref().map(|addr| {
        let registry = Arc::new(MetricsRegistry::new());
        let server = LiveServer::start(Arc::clone(&registry), addr.as_str())
            .unwrap_or_else(|e| panic!("cannot bind live endpoint on {addr}: {e}"));
        eprintln!("slo: live endpoint at http://{}/metrics", server.addr());
        if let Some(path) = &cfg.live_port_file {
            std::fs::write(path, server.addr().to_string()).expect("write live port file");
        }
        (registry, server)
    });
    let registry = live.as_ref().map(|(r, _)| Arc::clone(r));

    let rec = harness_recorder(cfg);
    if let Some(reg) = &registry {
        reg.register("single_lock", Arc::clone(&rec) as Arc<dyn LiveSource>);
    }
    let single = Target::SingleLock {
        lock: Box::new(
            ElidableLock::builder()
                .policy(policy)
                .retry(retry)
                .recorder(Arc::clone(&rec))
                .build(),
        ),
        map: TxMap::with_capacity(capacity),
    };
    let single_out = run_target(cfg, "single_lock".into(), single, rec, registry.clone());

    let rec = harness_recorder(cfg);
    let sharded_name = format!("sharded{}", cfg.shards);
    if let Some(reg) = &registry {
        reg.register(&sharded_name, Arc::clone(&rec) as Arc<dyn LiveSource>);
    }
    let map = Arc::new(ShardedTxMap::with_builder(
        cfg.shards,
        (capacity / cfg.shards).max(64),
        ElidableLock::builder()
            .policy(policy)
            .retry(retry)
            .recorder(Arc::clone(&rec)),
    ));
    if let Some(reg) = &registry {
        reg.register(
            format!("{sharded_name}_map"),
            Arc::clone(&map) as Arc<dyn LiveSource>,
        );
    }
    let sharded = Target::Sharded { map };
    let sharded_out = run_target(cfg, sharded_name, sharded, rec, registry);

    if let Some((_, mut server)) = live {
        server.shutdown();
    }
    vec![single_out, sharded_out]
}

/// JSON form of one outcome (full per-window series plus verdicts).
pub fn outcome_to_json(cfg: &SloConfig, o: &SloOutcome) -> Json {
    let worst = match &o.worst {
        Some(w) => Json::obj([
            ("index", Json::UInt(w.index)),
            ("p99_ns", Json::UInt(w.p99_ns)),
            ("p999_ns", Json::UInt(w.p999_ns)),
        ]),
        None => Json::Null,
    };
    Json::obj([
        ("name", Json::Str(o.name.clone())),
        ("ops_submitted", Json::UInt(o.ops_submitted)),
        ("achieved_rate", Json::Num(o.achieved_rate)),
        ("overall_latency", o.merged_latency.to_json()),
        ("worst_window", worst),
        (
            "verdicts",
            Json::obj([
                ("p99_target_ns", Json::UInt((cfg.p99_target_ms * 1e6) as u64)),
                ("p99_met", Json::Bool(o.p99_met)),
                (
                    "p999_target_ns",
                    Json::UInt((cfg.p999_target_ms * 1e6) as u64),
                ),
                ("p999_met", Json::Bool(o.p999_met)),
            ]),
        ),
        (
            "watchdog",
            Json::Arr(o.watchdog_events.iter().map(CollapseEvent::to_json).collect()),
        ),
        (
            "flight_record",
            match &o.flight_path {
                Some(p) => Json::Str(p.display().to_string()),
                None => Json::Null,
            },
        ),
        (
            "windows",
            Json::Arr(o.windows.iter().map(WindowSnapshot::to_json).collect()),
        ),
    ])
}

/// The schema-versioned `slo` section of the export document.
pub fn slo_section(cfg: &SloConfig, outcomes: &[SloOutcome]) -> Json {
    Json::obj([
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        ("threads", Json::UInt(cfg.threads as u64)),
        ("rate_ops_s", Json::Num(cfg.rate)),
        ("duration_ms", Json::UInt(cfg.duration_ms)),
        ("window_ms", Json::UInt(cfg.window_ms)),
        ("keys", Json::UInt(cfg.keys)),
        ("storm", Json::Bool(cfg.storm)),
        ("seed", Json::UInt(cfg.seed)),
        (
            "configs",
            Json::Arr(outcomes.iter().map(|o| outcome_to_json(cfg, o)).collect()),
        ),
    ])
}

/// The complete `slo_bench` export: a `perf-baseline`-kind document
/// (so `bench compare` diffs the headline rows) with the full `slo`
/// section embedded.
pub fn doc_to_json(cfg: &SloConfig, outcomes: &[SloOutcome]) -> Json {
    let mut benches = Vec::new();
    for o in outcomes {
        benches.push(Json::obj([
            ("name", Json::Str(format!("slo_{}_p50_ns", o.name))),
            ("ns_per_op", Json::Num(o.merged_latency.percentile(0.50) as f64)),
        ]));
        if let Some(w) = &o.worst {
            benches.push(Json::obj([
                ("name", Json::Str(format!("slo_{}_worst_p99_ns", o.name))),
                ("ns_per_op", Json::Num(w.p99_ns as f64)),
            ]));
        }
    }
    Json::obj([
        ("schema_version", Json::UInt(SCHEMA_VERSION)),
        ("tool", Json::Str("slo_bench".into())),
        ("kind", Json::Str("perf-baseline".into())),
        ("latency_unit", Json::Str("ns".into())),
        ("benches", Json::Arr(benches)),
        ("slo", slo_section(cfg, outcomes)),
    ])
}

/// Why a saved SLO/flight-record document could not be rendered.
#[derive(Debug, PartialEq, Eq)]
pub enum SloViewError {
    /// The file is not valid JSON.
    Parse(String),
    /// The document's `schema_version` does not match this build's
    /// [`SCHEMA_VERSION`] — regenerate the file rather than re-reading
    /// an old layout (see the migration policy in `rtle_obs::json`).
    Schema {
        /// Version found in the document, when present.
        found: Option<u64>,
        /// The version this build understands.
        expected: u64,
    },
    /// Valid JSON of the right version but not the expected shape.
    Shape(&'static str),
}

impl std::fmt::Display for SloViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SloViewError::Parse(e) => write!(f, "not valid JSON: {e}"),
            SloViewError::Schema { found, expected } => match found {
                Some(v) => write!(
                    f,
                    "schema version {v} is not the version this build reads ({expected}); \
                     re-run the producing tool to regenerate the document"
                ),
                None => write!(f, "document carries no schema_version field"),
            },
            SloViewError::Shape(what) => write!(f, "unexpected document shape: {what}"),
        }
    }
}

/// Parses a saved document and checks its schema version — the clean
/// (non-panicking) front door for `diag`'s file views.
pub fn load_versioned(text: &str) -> Result<Json, SloViewError> {
    let j = rtle_obs::parse_json(text).map_err(|e| SloViewError::Parse(format!("{e:?}")))?;
    match j.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == SCHEMA_VERSION => Ok(j),
        found => Err(SloViewError::Schema {
            found,
            expected: SCHEMA_VERSION,
        }),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn timeline_rows(out: &mut String, windows: &[Json]) -> Result<(), SloViewError> {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "  {:>5} {:>8} {:>10} {:>10} {:>10} {:>12} {:>9} {:>8}",
        "win", "ops", "p50", "p99", "p999", "commit/s", "fallback", "ab/cmt"
    );
    for w in windows {
        let w = WindowSnapshot::from_json(w).ok_or(SloViewError::Shape("window entry"))?;
        let _ = writeln!(
            out,
            "  {:>5} {:>8} {:>10} {:>10} {:>10} {:>12.0} {:>8.1}% {:>8.2}",
            w.index,
            w.ops(),
            fmt_ns(w.latency_p(0.50)),
            fmt_ns(w.latency_p(0.99)),
            fmt_ns(w.latency_p(0.999)),
            w.commit_rate(),
            w.fallback_rate() * 100.0,
            w.aborts_per_commit(),
        );
    }
    Ok(())
}

/// Renders the per-window timeline of a saved `slo_bench` document or
/// watchdog flight record (`diag --timeline FILE`).
pub fn render_timeline(doc: &Json) -> Result<String, SloViewError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    if doc.get("kind").and_then(Json::as_str) == Some("flight-record") {
        let trigger = doc.get("trigger").ok_or(SloViewError::Shape("no trigger"))?;
        let _ = writeln!(
            out,
            "flight record: {} at window {} (commit rate {:.0}/s vs trailing {:.0}/s, \
             fallback {:.1}%, {:.2} aborts/commit)",
            trigger.get("kind").and_then(Json::as_str).unwrap_or("?"),
            trigger.get("window_index").and_then(Json::as_u64).unwrap_or(0),
            trigger.get("commit_rate").and_then(Json::as_f64).unwrap_or(0.0),
            trigger
                .get("trailing_commit_rate")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            trigger.get("fallback_rate").and_then(Json::as_f64).unwrap_or(0.0) * 100.0,
            trigger
                .get("aborts_per_commit")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        );
        let windows = doc
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or(SloViewError::Shape("no windows array"))?;
        timeline_rows(&mut out, windows)?;
        let _ = writeln!(
            out,
            "  recent events in ring: {}",
            doc.get("recent_events")
                .and_then(Json::as_arr)
                .map_or(0, |a| a.len())
        );
        return Ok(out);
    }
    let configs = doc
        .get("slo")
        .and_then(|s| s.get("configs"))
        .and_then(Json::as_arr)
        .ok_or(SloViewError::Shape("not an slo_bench document (no slo.configs)"))?;
    for c in configs {
        let _ = writeln!(
            out,
            "== {} ==",
            c.get("name").and_then(Json::as_str).unwrap_or("?")
        );
        let windows = c
            .get("windows")
            .and_then(Json::as_arr)
            .ok_or(SloViewError::Shape("config without windows"))?;
        timeline_rows(&mut out, windows)?;
    }
    Ok(out)
}

/// Renders the SLO verdict summary of a saved `slo_bench` document
/// (`diag --slo FILE`).
pub fn render_slo(doc: &Json) -> Result<String, SloViewError> {
    use std::fmt::Write as _;
    let slo = doc.get("slo").ok_or(SloViewError::Shape("no slo section"))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "slo: {} threads, {:.0} ops/s target, {} ms windows, storm={}",
        slo.get("threads").and_then(Json::as_u64).unwrap_or(0),
        slo.get("rate_ops_s").and_then(Json::as_f64).unwrap_or(0.0),
        slo.get("window_ms").and_then(Json::as_u64).unwrap_or(0),
        matches!(slo.get("storm"), Some(Json::Bool(true))),
    );
    let configs = slo
        .get("configs")
        .and_then(Json::as_arr)
        .ok_or(SloViewError::Shape("no configs"))?;
    for c in configs {
        let name = c.get("name").and_then(Json::as_str).unwrap_or("?");
        let verdicts = c.get("verdicts").ok_or(SloViewError::Shape("no verdicts"))?;
        let worst = c.get("worst_window");
        let (wp99, wp999, widx) = match worst {
            Some(w) if w.get("p99_ns").is_some() => (
                w.get("p99_ns").and_then(Json::as_u64).unwrap_or(0),
                w.get("p999_ns").and_then(Json::as_u64).unwrap_or(0),
                w.get("index").and_then(Json::as_u64).unwrap_or(0),
            ),
            _ => (0, 0, 0),
        };
        let verdict = |key: &str| match verdicts.get(key) {
            Some(Json::Bool(true)) => "met",
            Some(Json::Bool(false)) => "MISSED",
            _ => "?",
        };
        let dog = c.get("watchdog").and_then(Json::as_arr).map_or(0, |a| a.len());
        let _ = writeln!(
            out,
            "  {name:<14} worst window {widx}: p99 {} [{}]  p999 {} [{}]  watchdog: {}",
            fmt_ns(wp99),
            verdict("p99_met"),
            fmt_ns(wp999),
            verdict("p999_met"),
            if dog == 0 {
                "silent".to_string()
            } else {
                format!("{dog} verdict(s)")
            },
        );
        if let Some(Json::Str(p)) = c.get("flight_record") {
            let _ = writeln!(out, "  {:<14} flight record: {p}", "");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature schedule that keeps test wall time sane while still
    /// exercising the full pipeline (arrivals, windows, verdicts, JSON).
    fn tiny(storm: bool) -> SloConfig {
        SloConfig {
            threads: 2,
            rate: 3_000.0,
            duration_ms: 400,
            window_ms: 50,
            keys: 128,
            hot_pct: 80,
            hot_keys: 8,
            storm,
            storm_keys: 4,
            storm_write_pct: 50,
            audit_one_in: 4_000,
            storm_audit_boost: 4,
            audit_passes: 2,
            audit_hold_ms: 1,
            shards: 4,
            seed: 0xabc,
            p99_target_ms: 500.0,
            p999_target_ms: 2_000.0,
            series_cap: 64,
            flight_dir: None,
            live: None,
            live_port_file: None,
        }
    }

    #[test]
    fn tiny_run_produces_windows_and_round_trips() {
        let cfg = tiny(false);
        let outcomes = run_slo(&cfg);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].name, "single_lock");
        assert_eq!(outcomes[1].name, "sharded4");
        for o in &outcomes {
            assert!(o.ops_submitted > 200, "{}: {}", o.name, o.ops_submitted);
            assert!(!o.windows.is_empty(), "{} produced no windows", o.name);
            assert_eq!(
                o.merged_latency.count,
                o.ops_submitted,
                "{}: every op's latency must land in some window",
                o.name
            );
            let w = o.worst.as_ref().expect("ops were recorded");
            assert!(w.p99_ns <= w.p999_ns.max(w.p99_ns));
        }
        let doc = doc_to_json(&cfg, &outcomes);
        let text = doc.to_string_pretty();
        let back = load_versioned(&text).expect("export must parse and be current");
        let summary = render_slo(&back).expect("summary renders");
        assert!(summary.contains("single_lock"));
        assert!(summary.contains("sharded4"));
        let timeline = render_timeline(&back).expect("timeline renders");
        assert!(timeline.contains("== single_lock =="));
        assert!(timeline.contains("p999"));
    }

    #[test]
    fn stale_schema_is_a_clean_error_not_a_panic() {
        let doc = Json::obj([
            ("schema_version", Json::UInt(1)),
            ("tool", Json::Str("slo_bench".into())),
        ]);
        let err = load_versioned(&doc.to_string_pretty()).unwrap_err();
        assert_eq!(
            err,
            SloViewError::Schema {
                found: Some(1),
                expected: SCHEMA_VERSION
            }
        );
        assert!(err.to_string().contains("re-run the producing tool"));
        let err = load_versioned("{not json").unwrap_err();
        assert!(matches!(err, SloViewError::Parse(_)));
        let err = load_versioned("{\"schema_version\": 2}")
            .map(|j| render_slo(&j).unwrap_err())
            .unwrap();
        assert_eq!(err, SloViewError::Shape("no slo section"));
    }

    #[test]
    fn live_endpoint_serves_while_the_run_is_hot() {
        use std::io::{Read as _, Write as _};

        let dir = std::env::temp_dir().join(format!("rtle_slo_live_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let _ = std::fs::remove_file(&port_file);
        let cfg = SloConfig {
            live: Some("127.0.0.1:0".into()),
            live_port_file: Some(port_file.clone()),
            ..tiny(false)
        };

        // A scraper racing the run: wait for the port file, then GET both
        // routes while the workload is still generating load.
        let scraper = {
            let port_file = port_file.clone();
            std::thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(10);
                let addr = loop {
                    if let Ok(s) = std::fs::read_to_string(&port_file) {
                        if !s.trim().is_empty() {
                            break s.trim().to_string();
                        }
                    }
                    assert!(Instant::now() < deadline, "port file never appeared");
                    std::thread::sleep(Duration::from_millis(5));
                };
                let get = |route: &str| {
                    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
                    write!(conn, "GET {route} HTTP/1.0\r\n\r\n").unwrap();
                    let mut resp = String::new();
                    conn.read_to_string(&mut resp).expect("read response");
                    resp
                };
                (get("/metrics"), get("/json"))
            })
        };
        let outcomes = run_slo(&cfg);
        let (metrics, json) = scraper.join().expect("scraper never panics");

        assert_eq!(outcomes.len(), 2);
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(
            metrics.contains(r#"source="single_lock",kind="recorder""#),
            "recorder registered before the clock started:\n{metrics}"
        );
        assert!(
            metrics.contains("rtle_windows_inspected"),
            "watchdog mirror registered:\n{metrics}"
        );
        assert!(json.starts_with("HTTP/1.1 200 OK"), "{json}");
        let body = json.split("\r\n\r\n").nth(1).expect("json body");
        let doc = rtle_obs::parse_json(body).expect("live JSON parses");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("live-registry"));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_is_deterministic_across_targets() {
        // Same seed, two runs: the submitted-op counts must match
        // exactly — the schedule is fixed before the system reacts.
        let cfg = tiny(true);
        let a = run_slo(&cfg);
        let b = run_slo(&cfg);
        assert_eq!(a[0].ops_submitted, b[0].ops_submitted);
        assert_eq!(a[1].ops_submitted, b[1].ops_submitted);
        assert_eq!(
            a[0].ops_submitted, a[1].ops_submitted,
            "both configurations get the identical arrival schedule"
        );
    }
}
