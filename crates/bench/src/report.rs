//! Structured results export for the figure binaries.
//!
//! Every binary keeps its human-readable table/CSV output and
//! additionally accepts `--json <path>`: the sweep results are then also
//! written as one schema-versioned JSON document (the version is shared
//! with the runtime's [`rtle_obs`] snapshots), so runs can be collected,
//! diffed and plotted by external tooling. See EXPERIMENTS.md.

use std::io::Write;
use std::path::{Path, PathBuf};

use rtle_obs::{Json, SCHEMA_VERSION};

use crate::figures::{Scale, Series};

/// Parsed command-line arguments shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// `--quick` present: run the miniature sweep.
    pub quick: bool,
    /// `--json <path>`: where to write the structured report.
    pub json: Option<PathBuf>,
    /// `--trace <path>`: where to write a Chrome `trace_event` document
    /// (Perfetto-loadable) for binaries that collect causal traces.
    pub trace: Option<PathBuf>,
    /// `--heatmap` present: print the per-orec conflict hot-spot report.
    pub heatmap: bool,
    /// `--slo <path>`: render a saved `slo_bench` export's verdict
    /// summary instead of running a sweep.
    pub slo: Option<PathBuf>,
    /// `--timeline <path>`: render a saved `slo_bench` export's
    /// per-window timeline, or a watchdog flight record.
    pub timeline: Option<PathBuf>,
    /// Remaining positional arguments, in order.
    pub rest: Vec<String>,
}

/// The flag summary printed when a binary is invoked with a flag nobody
/// understands. Binaries with extra flags of their own parse those first
/// and only hand the remainder to [`BenchArgs`].
pub const USAGE: &str = "shared flags: [--quick] [--json PATH] [--trace PATH] [--heatmap] \
                         [--slo FILE] [--timeline FILE]";

impl BenchArgs {
    /// Parses `std::env::args()` (skipping the binary name). An
    /// unrecognized `-`-prefixed argument is a usage error (exit 1), not
    /// a positional: silently swallowing a misspelled flag means a run
    /// quietly measures something other than what was asked for.
    pub fn parse() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// [`Self::try_parse_args`], exiting with usage on a bad flag.
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        Self::try_parse_args(args).unwrap_or_else(|bad| {
            eprintln!("unrecognized flag: {bad}");
            eprintln!("{USAGE}");
            std::process::exit(1);
        })
    }

    /// Parses an explicit argument list; `Err` carries the first
    /// unrecognized `-`-prefixed argument.
    pub fn try_parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => {
                    let p = it.next().unwrap_or_else(|| {
                        eprintln!("--json requires a path argument");
                        std::process::exit(2);
                    });
                    out.json = Some(PathBuf::from(p));
                }
                "--trace" => {
                    let p = it.next().unwrap_or_else(|| {
                        eprintln!("--trace requires a path argument");
                        std::process::exit(2);
                    });
                    out.trace = Some(PathBuf::from(p));
                }
                "--heatmap" => out.heatmap = true,
                "--slo" => {
                    let p = it.next().unwrap_or_else(|| {
                        eprintln!("--slo requires a path argument");
                        std::process::exit(2);
                    });
                    out.slo = Some(PathBuf::from(p));
                }
                "--timeline" => {
                    let p = it.next().unwrap_or_else(|| {
                        eprintln!("--timeline requires a path argument");
                        std::process::exit(2);
                    });
                    out.timeline = Some(PathBuf::from(p));
                }
                flag if flag.starts_with('-') => return Err(a),
                _ => out.rest.push(a),
            }
        }
        Ok(out)
    }

    /// The sweep scale implied by the flags.
    pub fn scale(&self) -> Scale {
        if self.quick {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// JSON form of a list of figure series:
/// `[{label, value_name, points: [{threads, value}]}]`.
pub fn series_to_json(value_name: &str, series: &[Series]) -> Json {
    Json::Arr(
        series
            .iter()
            .map(|s| {
                Json::obj([
                    ("label", Json::Str(s.label.clone())),
                    ("value_name", Json::Str(value_name.into())),
                    (
                        "points",
                        Json::Arr(
                            s.points
                                .iter()
                                .map(|p| {
                                    Json::obj([
                                        ("threads", Json::UInt(p.threads as u64)),
                                        ("value", Json::Num(p.value)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// A structured report accumulated by one binary run: named sections in
/// insertion order, emitted as a single schema-versioned JSON object.
#[derive(Debug)]
pub struct Report {
    tool: String,
    scale: Scale,
    sections: Vec<(String, Json)>,
}

impl Report {
    /// Starts a report for `tool` (the binary name) at `scale`.
    pub fn new(tool: &str, scale: Scale) -> Self {
        Report {
            tool: tool.into(),
            scale,
            sections: Vec::new(),
        }
    }

    /// Appends an arbitrary JSON section.
    pub fn add(&mut self, name: &str, value: Json) {
        self.sections.push((name.into(), value));
    }

    /// Appends a figure-series section.
    pub fn add_series(&mut self, name: &str, value_name: &str, series: &[Series]) {
        self.add(name, series_to_json(value_name, series));
    }

    /// The complete report document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("tool", Json::Str(self.tool.clone())),
            (
                "scale",
                Json::Str(
                    match self.scale {
                        Scale::Quick => "quick",
                        Scale::Full => "full",
                    }
                    .into(),
                ),
            ),
            (
                "sections",
                Json::Obj(
                    self.sections
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the report (pretty-printed) to `path` when given; a no-op
    /// otherwise. Exits with an error message on I/O failure so binaries
    /// can call it unconditionally as their last step.
    pub fn write_if_requested(&self, path: Option<&Path>) {
        let Some(path) = path else { return };
        let doc = self.to_json().to_string_pretty();
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(path)?;
            f.write_all(doc.as_bytes())?;
            f.write_all(b"\n")?;
            Ok(())
        };
        match write() {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::SeriesPoint;
    use rtle_obs::parse_json;

    fn sample_series() -> Vec<Series> {
        vec![Series {
            label: "TLE".into(),
            points: vec![
                SeriesPoint {
                    threads: 1,
                    value: 1.0,
                },
                SeriesPoint {
                    threads: 8,
                    value: 5.5,
                },
            ],
        }]
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let a = BenchArgs::parse_args(
            ["--quick", "--json", "/tmp/x.json", "--trace", "/tmp/t.json", "--heatmap", "12"]
                .map(String::from),
        );
        assert!(a.quick);
        assert_eq!(a.scale(), Scale::Quick);
        assert_eq!(a.json.as_deref(), Some(Path::new("/tmp/x.json")));
        assert_eq!(a.trace.as_deref(), Some(Path::new("/tmp/t.json")));
        assert!(a.heatmap);
        assert_eq!(a.rest, vec!["12".to_string()]);
        assert_eq!(BenchArgs::parse_args(std::iter::empty()).scale(), Scale::Full);
    }

    #[test]
    fn unknown_flags_are_rejected_not_swallowed() {
        let err = BenchArgs::try_parse_args(
            ["--quick", "--heatmpa"].map(String::from),
        )
        .unwrap_err();
        assert_eq!(err, "--heatmpa");
        let err = BenchArgs::try_parse_args(["-q"].map(String::from)).unwrap_err();
        assert_eq!(err, "-q");
        // Positionals (no dash) still pass through untouched.
        let ok = BenchArgs::try_parse_args(["12", "top"].map(String::from)).unwrap();
        assert_eq!(ok.rest, vec!["12".to_string(), "top".to_string()]);
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let mut r = Report::new("fig05", Scale::Quick);
        r.add_series("panel", "speedup", &sample_series());
        let text = r.to_json().to_string_pretty();
        let j = parse_json(&text).expect("report must be valid JSON");
        assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(j.get("tool").and_then(Json::as_str), Some("fig05"));
        assert_eq!(j.get("scale").and_then(Json::as_str), Some("quick"));
        let panel = j
            .get("sections")
            .and_then(|s| s.get("panel"))
            .and_then(Json::as_arr)
            .expect("panel section");
        assert_eq!(panel.len(), 1);
        assert_eq!(panel[0].get("label").and_then(Json::as_str), Some("TLE"));
        let pts = panel[0].get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(pts[1].get("threads").and_then(Json::as_u64), Some(8));
    }
}
