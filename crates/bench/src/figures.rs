//! Per-figure sweep functions. Each mirrors one figure of §6.

use rtle_sim::engine::{Engine, RunMode};
use rtle_sim::workloads::avl::{AvlConfig, AvlWorkload};
use rtle_sim::workloads::bank::{BankConfig, BankWorkload};
use rtle_sim::workloads::cctsa::{CctsaConfig, CctsaWorkload};
use rtle_sim::{CostModel, MachineProfile, SimMethod, SimStats};

/// One (threads, value) point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Thread count of this point.
    pub threads: usize,
    /// The plotted value (speedup, ops/ms, fraction, …).
    pub value: f64,
}

/// One curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// Points in ascending thread order.
    pub points: Vec<SeriesPoint>,
}

/// Sweep scale: the full figures simulate a few milliseconds per point;
/// tests use the quick scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Integration-test scale (sub-second sweeps).
    Quick,
    /// The figures as reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Simulated duration per fixed-duration point, in machine ms.
    fn sim_ms(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Full => 3,
        }
    }

    /// Thread sweep for `machine`, thinned at quick scale.
    fn threads(self, machine: &MachineProfile) -> Vec<usize> {
        let full = machine.thread_points();
        match self {
            Scale::Full => full,
            Scale::Quick => full.into_iter().step_by(3).collect(),
        }
    }

    /// ccTSA genome size.
    fn genome(self) -> usize {
        match self {
            Scale::Quick => 4_000,
            Scale::Full => 20_000,
        }
    }
}

fn duration(scale: Scale, machine: &MachineProfile) -> RunMode {
    RunMode::FixedDuration(scale.sim_ms() * machine.cycles_per_ms())
}

fn run_avl(
    method: SimMethod,
    threads: usize,
    cfg: AvlConfig,
    scale: Scale,
    machine: &MachineProfile,
) -> SimStats {
    let w = AvlWorkload::new(threads, cfg);
    Engine::new(
        method,
        threads,
        CostModel::pointer_chasing(),
        duration(scale, machine),
        w,
    )
    .with_time_scale(machine.smt_factor(threads))
    .with_spurious_aborts(machine.htm_spurious(threads))
    .run()
}

// ---------------------------------------------------------------------
// Figure 5: AVL throughput (speedup over 1-thread Lock) across the grid.
// ---------------------------------------------------------------------

/// One Figure 5 panel: `key_range` × `update_pct` (Insert = Remove =
/// `update_pct`) on `machine`. Values are speedups over the 1-thread
/// Lock run, exactly as the paper normalizes.
pub fn fig05_panel(
    machine: &MachineProfile,
    key_range: u64,
    update_pct: u32,
    scale: Scale,
) -> Vec<Series> {
    let cfg = AvlConfig::new(key_range, update_pct, update_pct);
    let baseline = run_avl(SimMethod::LockOnly { locks: 1 }, 1, cfg, scale, machine)
        .ops_per_ms(machine)
        .max(1e-9);

    SimMethod::figure5_set()
        .into_iter()
        .map(|m| Series {
            label: m.label(),
            points: scale
                .threads(machine)
                .into_iter()
                .map(|t| SeriesPoint {
                    threads: t,
                    value: run_avl(m, t, cfg, scale, machine).ops_per_ms(machine) / baseline,
                })
                .collect(),
        })
        .collect()
}

/// The refined-TLE method subset used by Figures 6 and 7.
fn refined_set() -> Vec<SimMethod> {
    let mut v = vec![SimMethod::RwTle];
    for orecs in [1usize, 4, 16, 256, 1024, 4096, 8192] {
        v.push(SimMethod::FgTle { orecs });
    }
    v
}

// ---------------------------------------------------------------------
// Figure 6: slow-path throughput (SlowHTM and Lock charts) while locked.
// ---------------------------------------------------------------------

/// Returns `(slow_htm, lock)` series: commits per ms *of locked time*,
/// for the Figure 6 workload (8192 keys, 20% Insert/Remove, Xeon).
pub fn fig06(scale: Scale) -> (Vec<Series>, Vec<Series>) {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let mut slow = Vec::new();
    let mut lock = Vec::new();
    for m in refined_set() {
        let mut sp = Vec::new();
        let mut lp = Vec::new();
        for t in scale.threads(&machine) {
            let s = run_avl(m, t, cfg, scale, &machine);
            sp.push(SeriesPoint {
                threads: t,
                value: s.slow_htm_per_ms(&machine),
            });
            lp.push(SeriesPoint {
                threads: t,
                value: s.lock_per_ms(&machine),
            });
        }
        slow.push(Series {
            label: m.label(),
            points: sp,
        });
        lock.push(Series {
            label: m.label(),
            points: lp,
        });
    }
    (slow, lock)
}

// ---------------------------------------------------------------------
// Figure 7: time under lock, normalized to the Lock-only execution.
// ---------------------------------------------------------------------

/// Per-critical-section time under the lock, normalized to the Lock-only
/// method at the same thread count (the instrumentation overhead factor).
pub fn fig07(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let threads = scale.threads(&machine);

    let per_cs = |s: &SimStats| {
        if s.lock_commits == 0 {
            f64::NAN
        } else {
            s.cycles_locked as f64 / s.lock_commits as f64
        }
    };

    let mut baselines = Vec::new();
    for &t in &threads {
        let s = run_avl(SimMethod::LockOnly { locks: 1 }, t, cfg, scale, &machine);
        baselines.push(per_cs(&s).max(1e-9));
    }

    let mut methods = vec![SimMethod::Tle];
    methods.extend(refined_set());
    methods
        .into_iter()
        .map(|m| Series {
            label: m.label(),
            points: threads
                .iter()
                .zip(&baselines)
                .map(|(&t, &base)| {
                    let s = run_avl(m, t, cfg, scale, &machine);
                    SeriesPoint {
                        threads: t,
                        value: per_cs(&s) / base,
                    }
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 8–10: RHNOrec slow-path split, execution types, validations.
// ---------------------------------------------------------------------

/// Figure 8: RHNOrec's throughput while software transactions run:
/// `(SlowHTM, SWSlow)` — hardware commits that bumped the clock, and
/// software commits, both per ms of software time.
pub fn fig08(scale: Scale) -> (Series, Series) {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let mut htm = Vec::new();
    let mut sw = Vec::new();
    for t in scale.threads(&machine) {
        let s = run_avl(SimMethod::RhNorec, t, cfg, scale, &machine);
        htm.push(SeriesPoint {
            threads: t,
            value: s.htm_slow_per_ms(&machine),
        });
        sw.push(SeriesPoint {
            threads: t,
            value: s.sw_per_ms(&machine),
        });
    }
    (
        Series {
            label: "SlowHTM".into(),
            points: htm,
        },
        Series {
            label: "SWSlow".into(),
            points: sw,
        },
    )
}

/// Figure 9: RHNOrec execution-type distribution
/// (HTMFast, HTMSlow, STMFastCommit, STMSlowCommit fractions).
pub fn fig09(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let labels = ["HTMFast", "HTMSlow", "STMFastCommit", "STMSlowCommit"];
    let mut out: Vec<Series> = labels
        .iter()
        .map(|l| Series {
            label: (*l).into(),
            points: Vec::new(),
        })
        .collect();
    for t in scale.threads(&machine) {
        let s = run_avl(SimMethod::RhNorec, t, cfg, scale, &machine);
        let f = s.exec_fractions();
        for (i, series) in out.iter_mut().enumerate() {
            series.points.push(SeriesPoint {
                threads: t,
                value: f[i],
            });
        }
    }
    out
}

/// Figure 10: average value-based validations per software transaction,
/// NOrec vs RHNOrec.
pub fn fig10(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    [SimMethod::Norec, SimMethod::RhNorec]
        .into_iter()
        .map(|m| Series {
            label: m.label(),
            points: scale
                .threads(&machine)
                .into_iter()
                .map(|t| {
                    let s = run_avl(m, t, cfg, scale, &machine);
                    SeriesPoint {
                        threads: t,
                        value: s.validations_per_stm_txn(),
                    }
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 11: bank accounts.
// ---------------------------------------------------------------------

/// Figure 11 method set (the paper's legend, minus one FG size).
pub fn fig11_methods() -> Vec<SimMethod> {
    vec![
        SimMethod::LockOnly { locks: 1 },
        SimMethod::Tle,
        SimMethod::RwTle,
        SimMethod::FgTle { orecs: 1 },
        SimMethod::FgTle { orecs: 16 },
        SimMethod::FgTle { orecs: 256 },
        SimMethod::FgTle { orecs: 1024 },
        SimMethod::FgTle { orecs: 4096 },
        SimMethod::FgTle { orecs: 8192 },
        SimMethod::Norec,
        SimMethod::RhNorec,
    ]
}

/// Figure 11: transfers/ms over 256 padded accounts on the Xeon.
pub fn fig11(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    fig11_methods()
        .into_iter()
        .map(|m| Series {
            label: m.label(),
            points: scale
                .threads(&machine)
                .into_iter()
                .map(|t| {
                    let w = BankWorkload::new(t, BankConfig::default());
                    let s = Engine::new(m, t, CostModel::default(), duration(scale, &machine), w)
                        .with_time_scale(machine.smt_factor(t))
                        .with_spurious_aborts(machine.htm_spurious(t))
                        .run();
                    SeriesPoint {
                        threads: t,
                        value: s.ops_per_ms(&machine),
                    }
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 12: one HTM-hostile updater among finders (65536 keys).
// ---------------------------------------------------------------------

/// Figure 12: total throughput with thread 0 running HTM-hostile updates
/// and all other threads running Finds.
pub fn fig12(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let methods = vec![
        SimMethod::LockOnly { locks: 1 },
        SimMethod::Tle,
        SimMethod::RwTle,
        SimMethod::FgTle { orecs: 1 },
        SimMethod::FgTle { orecs: 16 },
        SimMethod::FgTle { orecs: 256 },
        SimMethod::FgTle { orecs: 4096 },
        SimMethod::FgTle { orecs: 8192 },
        SimMethod::Norec,
        SimMethod::RhNorec,
    ];
    methods
        .into_iter()
        .map(|m| Series {
            label: m.label(),
            points: scale
                .threads(&machine)
                .into_iter()
                .filter(|&t| t >= 2)
                .map(|t| {
                    let mut cfg = AvlConfig::new(65_536, 0, 0);
                    cfg.hostile_thread = Some(0);
                    let s = run_avl(m, t, cfg, scale, &machine);
                    SeriesPoint {
                        threads: t,
                        value: s.ops_per_ms(&machine),
                    }
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 13: ccTSA runtime.
// ---------------------------------------------------------------------

/// Figure 13 method set: the original fine-grained program plus the
/// transactified program under each synchronization method.
pub fn fig13_methods() -> Vec<(SimMethod, bool, &'static str)> {
    let mut v: Vec<(SimMethod, bool, &'static str)> = vec![
        (SimMethod::LockOnly { locks: 4096 }, true, "Lock.orig"),
        (SimMethod::LockOnly { locks: 1 }, false, "Lock"),
        (SimMethod::Tle, false, "TLE"),
        (SimMethod::RwTle, false, "RW-TLE"),
    ];
    for orecs in [1usize, 16, 256, 1024, 4096, 8192] {
        v.push((SimMethod::FgTle { orecs }, false, ""));
    }
    v
}

/// Figure 13: total assembly (k-mer ingestion) time in simulated ms for a
/// fixed read set, as the thread count grows. Lower is better.
pub fn fig13(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let threads = scale.threads(&machine);
    fig13_methods()
        .into_iter()
        .map(|(m, sharded, label)| {
            let label = if label.is_empty() {
                m.label()
            } else {
                label.to_string()
            };
            Series {
                label,
                points: threads
                    .iter()
                    .map(|&t| {
                        let cfg = CctsaConfig {
                            genome_len: scale.genome(),
                            sharded,
                            ..Default::default()
                        };
                        let w = CctsaWorkload::new(t, cfg);
                        let s =
                            Engine::new(m, t, CostModel::pointer_chasing(), RunMode::FixedWork, w)
                                .with_time_scale(machine.smt_factor(t))
                                .with_spurious_aborts(machine.htm_spurious(t))
                                .run();
                        SeriesPoint {
                            threads: t,
                            value: s.sim_cycles as f64 / machine.cycles_per_ms() as f64,
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §design-choices): lazy subscription and the
// uniq-orecs shortcut.
// ---------------------------------------------------------------------

/// Ablation: FG-TLE(1024) with eager vs lazy lock subscription on the
/// Figure 6 workload.
pub fn ablation_lazy_subscription(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    [("eager", false), ("lazy", true)]
        .into_iter()
        .map(|(name, lazy)| Series {
            label: format!("FG-TLE(1024)/{name}"),
            points: scale
                .threads(&machine)
                .into_iter()
                .map(|t| {
                    let w = AvlWorkload::new(t, cfg);
                    let s = Engine::new(
                        SimMethod::FgTle { orecs: 1024 },
                        t,
                        CostModel::pointer_chasing(),
                        duration(scale, &machine),
                        w,
                    )
                    .with_lazy_subscription(lazy)
                    .with_time_scale(machine.smt_factor(t))
                    .with_spurious_aborts(machine.htm_spurious(t))
                    .run();
                    SeriesPoint {
                        threads: t,
                        value: s.ops_per_ms(&machine),
                    }
                })
                .collect(),
        })
        .collect()
}

/// Ablation: the lock holder's `uniq_*_orecs` shortcut (§4.2) on vs off,
/// FG-TLE(1) and FG-TLE(16) where it matters most.
pub fn ablation_uniq_shortcut(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let mut out = Vec::new();
    for orecs in [1usize, 16] {
        for (name, on) in [("on", true), ("off", false)] {
            out.push(Series {
                label: format!("FG-TLE({orecs})/shortcut-{name}"),
                points: scale
                    .threads(&machine)
                    .into_iter()
                    .map(|t| {
                        let w = AvlWorkload::new(t, cfg);
                        let s = Engine::new(
                            SimMethod::FgTle { orecs },
                            t,
                            CostModel::pointer_chasing(),
                            duration(scale, &machine),
                            w,
                        )
                        .with_uniq_shortcut(on)
                        .with_time_scale(machine.smt_factor(t))
                        .with_spurious_aborts(machine.htm_spurious(t))
                        .run();
                        SeriesPoint {
                            threads: t,
                            value: s.ops_per_ms(&machine),
                        }
                    })
                    .collect(),
            });
        }
    }
    out
}

/// Beyond-paper experiment: does adaptive FG-TLE (§4.2.1) track the best
/// fixed orec configuration across thread counts? Figure 6's workload.
pub fn ablation_adaptive(scale: Scale) -> Vec<Series> {
    let machine = MachineProfile::XEON;
    let cfg = AvlConfig::new(8192, 20, 20);
    let methods = vec![
        SimMethod::Tle,
        SimMethod::FgTle { orecs: 1 },
        SimMethod::FgTle { orecs: 1024 },
        SimMethod::FgTle { orecs: 8192 },
        SimMethod::AdaptiveFgTle {
            initial: 64,
            max_orecs: 8192,
        },
    ];
    methods
        .into_iter()
        .map(|m| Series {
            label: m.label(),
            points: scale
                .threads(&machine)
                .into_iter()
                .map(|t| {
                    let s = run_avl(m, t, cfg, scale, &machine);
                    SeriesPoint {
                        threads: t,
                        value: s.ops_per_ms(&machine),
                    }
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(series: &[Series], label: &str, threads: usize) -> f64 {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .points
            .iter()
            .find(|p| p.threads == threads)
            .unwrap_or_else(|| panic!("missing point {label}@{threads}"))
            .value
    }

    #[test]
    fn fig05_quick_shapes() {
        let s = fig05_panel(&MachineProfile::XEON, 8192, 20, Scale::Quick);
        assert_eq!(s.len(), 12);
        let t_hi = *s[0].points.last().map(|p| &p.threads).unwrap();
        // Refined TLE beats TLE once contention exists (the paper's core
        // result), and the single-thread Lock normalization is ≈ 1.
        assert!((val(&s, "Lock", 1) - 1.0).abs() < 0.25);
        assert!(
            val(&s, "FG-TLE(8192)", t_hi) > val(&s, "TLE", t_hi),
            "FG-TLE(8192) must beat TLE at {t_hi} threads"
        );
    }

    #[test]
    fn fig11_quick_shapes() {
        let s = fig11(Scale::Quick);
        let t_hi = *s[0].points.last().map(|p| &p.threads).unwrap();
        assert!(val(&s, "FG-TLE(8192)", t_hi) > val(&s, "TLE", t_hi));
        assert!(val(&s, "TLE", t_hi) > val(&s, "NOrec", t_hi) * 0.3);
    }

    #[test]
    fn fig13_quick_shapes() {
        let s = fig13(Scale::Quick);
        // Elided single lock beats the original fine-grained program at
        // every thread count (the >2x claim of §6.4.2).
        for (i, p) in s
            .iter()
            .find(|x| x.label == "TLE")
            .unwrap()
            .points
            .iter()
            .enumerate()
        {
            let orig = s.iter().find(|x| x.label == "Lock.orig").unwrap().points[i].value;
            assert!(
                p.value < orig,
                "TLE {} vs Lock.orig {} at {}",
                p.value,
                orig,
                p.threads
            );
        }
    }
}
