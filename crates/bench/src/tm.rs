//! `tm_bench`: three-way software-TM comparison — NOrec vs TL2 vs the
//! full RTLE stack — on the workload mixes where their designs differ.
//!
//! * **disjoint-write**: every thread writes only its own key partition.
//!   TL2's per-stripe write locks let all writers commit concurrently;
//!   NOrec serializes every writer on its single global clock (and a
//!   writer preempted mid-commit leaves everyone spinning on an odd
//!   clock), so this mix is where TL2's extra read-barrier cost pays off.
//! * **shared-hot-key**: all threads hammer one cell. Value-based
//!   validation (NOrec) shrugs off clock churn when the value happens to
//!   be unchanged; version-based validation (TL2) aborts on every stripe
//!   bump. Neither beats HTM here — the mix exists to show the trade-off.
//! * **read-mostly**: long reads, rare writes — every runtime should do
//!   well; regressions here are barrier overhead, not algorithm.
//!
//! Every engine executes the *same* closure through the word-level
//! [`DynAccess`] barrier, so measured differences are runtime, not
//! workload. Committed operations over a fixed wall-clock duration is
//! the headline number; the JSON export reshapes it as ns/commit so the
//! `bench compare` regression gate (lower = better) applies unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rtle_core::{ElidableLock, ElisionPolicy};
use rtle_htm::{DynAccess, TxAccess, TxCell};
use rtle_hytm::{Norec, Tl2};

use crate::baseline::BenchResult;

/// Thread count both the baseline rows and the acceptance ratio use.
pub const DEFAULT_THREADS: usize = 8;
/// Keys owned by each thread (the disjoint-write partition size).
const CELLS_PER_THREAD: usize = 64;
/// Cells touched per disjoint-write transaction.
const TOUCH: usize = 8;
/// Read-mostly: one write every this many transactions.
const WRITE_PERIOD: u64 = 16;

/// One of the three compared runtimes, each wrapping the same barrier.
pub enum TmEngine {
    /// Pure NOrec software transactions (no hardware attempts).
    Norec(Norec),
    /// Pure TL2 software transactions (no hardware attempts).
    Tl2(Tl2),
    /// The full refined-TLE stack: HTM fast/slow paths over the lock.
    /// Boxed so the enum stays near the software-TM variants' size.
    Rtle(Box<ElidableLock>),
}

impl TmEngine {
    /// Stable engine label (JSON row key component).
    pub fn label(&self) -> &'static str {
        match self {
            TmEngine::Norec(_) => "norec",
            TmEngine::Tl2(_) => "tl2",
            TmEngine::Rtle(_) => "rtle",
        }
    }

    /// Runs one transaction of `body` to commit.
    fn run(&self, body: &dyn Fn(&dyn DynAccess)) {
        match self {
            TmEngine::Norec(tm) => tm.execute(|ctx| body(ctx)),
            TmEngine::Tl2(tm) => tm.execute(|ctx| body(ctx)),
            TmEngine::Rtle(lock) => lock.execute(|ctx| body(ctx)),
        }
    }

    /// A fresh instance of every compared engine, in stable order.
    pub fn fleet() -> Vec<TmEngine> {
        vec![
            TmEngine::Norec(Norec::new()),
            TmEngine::Tl2(Tl2::new()),
            TmEngine::Rtle(Box::new(
                ElidableLock::builder()
                    .policy(ElisionPolicy::FgTle { orecs: 4096 })
                    .build(),
            )),
        ]
    }
}

/// The compared workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmMix {
    /// Per-thread key partitions, write-heavy.
    DisjointWrite,
    /// One cell everybody increments.
    SharedHotKey,
    /// Scattered reads, 1-in-16 writes.
    ReadMostly,
}

impl TmMix {
    /// All mixes, in report order.
    pub const ALL: [TmMix; 3] = [TmMix::DisjointWrite, TmMix::SharedHotKey, TmMix::ReadMostly];

    /// Stable mix label (JSON row key component).
    pub fn label(self) -> &'static str {
        match self {
            TmMix::DisjointWrite => "disjoint-write",
            TmMix::SharedHotKey => "shared-hot-key",
            TmMix::ReadMostly => "read-mostly",
        }
    }

    /// JSON-row-safe form of the label.
    fn key(self) -> &'static str {
        match self {
            TmMix::DisjointWrite => "disjoint_write",
            TmMix::SharedHotKey => "shared_hot_key",
            TmMix::ReadMostly => "read_mostly",
        }
    }

    /// One transaction of this mix for thread `t`, iteration `i`, over a
    /// table of `threads * CELLS_PER_THREAD` cells. All shared accesses go
    /// through `a`, so the closure is retry-safe on every engine.
    fn transact(self, a: &dyn DynAccess, cells: &[TxCell<u64>], t: usize, i: u64) {
        let base = t * CELLS_PER_THREAD;
        match self {
            TmMix::DisjointWrite => {
                for k in 0..TOUCH as u64 {
                    let c = &cells[base + ((i * 7 + k * 5) % CELLS_PER_THREAD as u64) as usize];
                    let v = a.load(c);
                    a.store(c, v + 1);
                }
            }
            TmMix::SharedHotKey => {
                let hot = &cells[0];
                let v = a.load(hot);
                a.store(hot, v + 1);
                let own = &cells[base + (i % CELLS_PER_THREAD as u64) as usize];
                let w = a.load(own);
                a.store(own, w + 1);
            }
            TmMix::ReadMostly => {
                let mut acc = 0u64;
                for k in 0..TOUCH as u64 {
                    let c = &cells[((i * 31 + k * 13 + t as u64) % cells.len() as u64) as usize];
                    acc = acc.wrapping_add(a.load(c));
                }
                std::hint::black_box(acc);
                if i.is_multiple_of(WRITE_PERIOD) {
                    let own = &cells[base + (i % CELLS_PER_THREAD as u64) as usize];
                    let v = a.load(own);
                    a.store(own, v + 1);
                }
            }
        }
    }

    /// Increments a committed transaction contributes to the table sum —
    /// the conservation oracle the tests check. `None` when it depends on
    /// the iteration index (read-mostly).
    fn increments_per_commit(self) -> Option<u64> {
        match self {
            TmMix::DisjointWrite => Some(TOUCH as u64),
            TmMix::SharedHotKey => Some(2),
            TmMix::ReadMostly => None,
        }
    }
}

/// One engine × mix measurement.
#[derive(Debug, Clone)]
pub struct TmMeasurement {
    /// Engine label ("norec" / "tl2" / "rtle").
    pub engine: &'static str,
    /// Mix label ("disjoint-write" / ...).
    pub mix: &'static str,
    /// JSON row name, `tm_<engine>_<mix>_<threads>thr`.
    pub row: String,
    /// Transactions committed across all threads.
    pub committed: u64,
    /// Wall-clock measurement duration.
    pub elapsed: Duration,
    /// Worker thread count.
    pub threads: usize,
}

impl TmMeasurement {
    /// Thread-seconds per committed transaction, in ns — the
    /// lower-is-better reshaping `bench compare` expects.
    pub fn ns_per_commit(&self) -> f64 {
        self.elapsed.as_nanos() as f64 * self.threads as f64 / self.committed.max(1) as f64
    }

    /// The perf-baseline row for this measurement.
    pub fn to_bench_result(&self) -> BenchResult {
        BenchResult {
            name: self.row.clone(),
            ns_per_op: self.ns_per_commit(),
        }
    }
}

/// Runs `mix` on `engine` with `threads` workers for `dur` and returns
/// the measurement. Also checks write conservation where the mix's
/// per-commit increment count is fixed — a committed-ops number that
/// double-counts or loses transactions would make the whole comparison
/// meaningless.
pub fn run_mix(engine: &TmEngine, mix: TmMix, threads: usize, dur: Duration) -> TmMeasurement {
    let cells: Vec<TxCell<u64>> = (0..threads * CELLS_PER_THREAD)
        .map(|_| TxCell::new(0))
        .collect();
    let committed = AtomicU64::new(0);
    let start = Instant::now();
    let deadline = start + dur;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (cells, committed, engine) = (&cells, &committed, &engine);
            scope.spawn(move || {
                let mut local = 0u64;
                let mut i = 0u64;
                while Instant::now() < deadline {
                    engine.run(&|a| mix.transact(a, cells, t, i));
                    local += 1;
                    i += 1;
                }
                committed.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    let committed = committed.load(Ordering::Relaxed);
    if let Some(per) = mix.increments_per_commit() {
        let sum: u64 = cells.iter().map(TxCell::read_plain).sum();
        assert_eq!(
            sum,
            committed * per,
            "{} on {}: table sum disagrees with committed count",
            mix.label(),
            engine.label()
        );
    }
    TmMeasurement {
        engine: engine.label(),
        mix: mix.label(),
        row: format!("tm_{}_{}_{threads}thr", engine.label(), mix.key()),
        committed,
        elapsed,
        threads,
    }
}

/// The full three-way sweep: every mix × every engine, best-of-`trials`
/// by committed count. Fresh engines per trial, so clocks and stripe
/// tables start cold each time. Best-of matters on oversubscribed hosts:
/// a single descheduled NOrec committer convoys the whole run, and
/// best-of-N keeps that scheduler roulette out of the regression gate
/// while still showing the *capability* of each runtime.
pub fn run_suite(threads: usize, dur: Duration, trials: usize) -> Vec<TmMeasurement> {
    let mut out = Vec::new();
    for mix in TmMix::ALL {
        let mut best: Vec<Option<TmMeasurement>> = vec![None; 3];
        for _ in 0..trials.max(1) {
            for (slot, engine) in TmEngine::fleet().iter().enumerate() {
                let m = run_mix(engine, mix, threads, dur);
                if best[slot].as_ref().is_none_or(|b| m.committed > b.committed) {
                    best[slot] = Some(m);
                }
            }
        }
        out.extend(best.into_iter().flatten());
    }
    out
}

/// Committed-ops ratio `num_engine / den_engine` on `mix`, if both rows
/// are present.
pub fn committed_ratio(
    results: &[TmMeasurement],
    mix: TmMix,
    num_engine: &str,
    den_engine: &str,
) -> Option<f64> {
    let find = |e: &str| {
        results
            .iter()
            .find(|m| m.mix == mix.label() && m.engine == e)
    };
    let num = find(num_engine)?.committed;
    let den = find(den_engine)?.committed.max(1);
    Some(num as f64 / den as f64)
}

/// Renders the comparison table plus the headline TL2-vs-NOrec ratio
/// line the acceptance gate greps for.
pub fn render(results: &[TmMeasurement], threads: usize, dur: Duration) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== tm_bench: NOrec vs TL2 vs RTLE ({threads} threads, {}ms/mix, committed ops) ==",
        dur.as_millis()
    );
    let engines = ["norec", "tl2", "rtle"];
    let _ = write!(s, "{:<16}", "mix");
    for e in engines {
        let _ = write!(s, "{e:>12}");
    }
    let _ = writeln!(s);
    for mix in TmMix::ALL {
        let _ = write!(s, "{:<16}", mix.label());
        for e in engines {
            let c = results
                .iter()
                .find(|m| m.mix == mix.label() && m.engine == e)
                .map_or(0, |m| m.committed);
            let _ = write!(s, "{c:>12}");
        }
        let _ = writeln!(s);
    }
    if let Some(r) = committed_ratio(results, TmMix::DisjointWrite, "tl2", "norec") {
        let _ = writeln!(
            s,
            "disjoint-write: tl2/norec committed-ops ratio = {r:.2}"
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every engine commits every mix, the conservation oracle inside
    /// `run_mix` holds, and row names are stable.
    #[test]
    fn three_way_smoke_commits_and_conserves() {
        let dur = Duration::from_millis(25);
        let results = run_suite(2, dur, 1);
        assert_eq!(results.len(), 9, "3 mixes x 3 engines");
        for m in &results {
            assert!(m.committed > 0, "{} on {} committed nothing", m.mix, m.engine);
            assert!(m.ns_per_commit().is_finite() && m.ns_per_commit() > 0.0);
        }
        assert!(results.iter().any(|m| m.row == "tm_tl2_disjoint_write_2thr"));
        let text = render(&results, 2, dur);
        assert!(text.contains("disjoint-write: tl2/norec committed-ops ratio ="), "{text}");
        assert!(
            committed_ratio(&results, TmMix::DisjointWrite, "tl2", "norec").is_some()
        );
    }

    #[test]
    fn baseline_rows_reshape_to_ns_per_commit() {
        let m = TmMeasurement {
            engine: "tl2",
            mix: "disjoint-write",
            row: "tm_tl2_disjoint_write_8thr".into(),
            committed: 1000,
            elapsed: Duration::from_millis(100),
            threads: 8,
        };
        let r = m.to_bench_result();
        assert_eq!(r.name, "tm_tl2_disjoint_write_8thr");
        // 100ms * 8 threads / 1000 commits = 800_000 ns/commit.
        assert!((r.ns_per_op - 800_000.0).abs() < 1e-6);
    }
}
