//! Acceptance test for the causal-tracing tentpole: a deterministic
//! 8-thread FG-TLE run exports a Chrome `trace_event` document that (a)
//! passes the same structural checks Perfetto applies before loading, (b)
//! survives a full parse → records → re-export round-trip, and (c) shows
//! at least one lock-holder span overlapping a *committed* slow-path
//! span — the paper's central claim ("slow-path transactions commit while
//! the lock is held") made visible on a timeline.
//!
//! Runs meaningfully with the default `trace` feature; with
//! `--no-default-features` it degrades to asserting the tracer records
//! nothing.

use std::sync::Arc;

use rtle_obs::trace::{records_from_chrome_json, to_chrome_json, validate_chrome};
use rtle_obs::{parse_json, ObsConfig, Recorder, TraceKind};
use rtle_sim::{Access, CostModel, Engine, OpSpec, RunMode, SimMethod, Workload};

/// Thread 0 is HTM-hostile (locks every op); the others run disjoint
/// two-access ops that succeed on the instrumented slow path while the
/// lock is held.
struct Mix {
    remaining: Vec<u64>,
}

impl Workload for Mix {
    fn next_op(&mut self, thread: usize) -> OpSpec {
        let base = 1_000 * thread as u64;
        OpSpec {
            trace: vec![
                Access {
                    line: base,
                    write: false,
                },
                Access {
                    line: base + 1,
                    write: true,
                },
            ],
            setup_cycles: 20,
            htm_hostile: thread == 0,
            ..Default::default()
        }
    }
    fn next_op_again(&mut self, thread: usize) -> OpSpec {
        self.next_op(thread)
    }
    fn commit(&mut self, thread: usize) {
        self.remaining[thread] -= 1;
    }
    fn remaining(&self, thread: usize) -> Option<u64> {
        Some(self.remaining[thread])
    }
}

#[test]
fn eight_thread_fg_tle_trace_loads_in_perfetto_shape() {
    const THREADS: usize = 8;
    let rec = Arc::new(Recorder::new(ObsConfig {
        latency_unit: "cycles",
        ..ObsConfig::default()
    }));
    let stats = Engine::new(
        SimMethod::FgTle { orecs: 1024 },
        THREADS,
        CostModel::default(),
        RunMode::FixedWork,
        Mix {
            remaining: vec![200; THREADS],
        },
    )
    .with_recorder(Arc::clone(&rec))
    .run();
    assert_eq!(stats.ops, 200 * THREADS as u64);
    assert!(stats.slow_commits > 0, "slow path must commit: {stats:?}");

    let records = rec.tracer().drain();
    if !rec.tracer().enabled() {
        assert!(records.is_empty(), "trace off: nothing recorded");
        return;
    }

    // (a) Structural validity of the export, after a real parse of the
    // serialized text (not just the in-memory tree).
    let doc = to_chrome_json(&records, "fg-tle-sim", "cycles");
    let text = doc.to_string_pretty();
    let parsed = parse_json(&text).expect("exported trace is valid JSON");
    let n = validate_chrome(&parsed).expect("trace_event structure");
    assert!(n > records.len(), "all records exported plus metadata");

    // (b) Lossless round-trip through the Chrome shape.
    let back = records_from_chrome_json(&parsed).expect("round-trip parse");
    assert_eq!(back, records, "raw args preserve exact cycle stamps");

    // (c) A lock-holder span overlaps a committed slow-path span from a
    // different thread.
    let lock_spans: Vec<_> = records
        .iter()
        .filter(|r| r.kind == TraceKind::LockHeld)
        .collect();
    let slow_commits: Vec<_> = records
        .iter()
        .filter(|r| r.kind == TraceKind::SlowCommit)
        .collect();
    assert!(!lock_spans.is_empty(), "holder spans recorded");
    assert!(!slow_commits.is_empty(), "slow-path commit spans recorded");
    let overlap = lock_spans.iter().any(|l| {
        slow_commits.iter().any(|s| {
            s.tid != l.tid && s.ts < l.ts + l.dur && l.ts < s.ts + s.dur
        })
    });
    assert!(
        overlap,
        "a slow-path commit must overlap a concurrent lock-holder span"
    );

    // Thread tracks cover all 8 simulated threads over the whole run.
    let tids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.tid as u64).collect();
    assert!(tids.len() >= THREADS, "every thread appears in the trace");
}
