//! Acceptance check: recording must be pay-for-what-you-use. With no
//! recorder installed, the `ElidableLock` hot path must not slow down
//! measurably; with a recorder installed at the default 1/64 sampling
//! rate, the same op must stay within a small factor.

use rtle_bench::micro::measure_ns;
use rtle_core::{Ctx, ElidableLock, ElisionPolicy};
use rtle_htm::TxCell;
use rtle_obs::{ObsConfig, Recorder};
use std::sync::Arc;

fn rmw_ns(lock: &ElidableLock) -> f64 {
    let cell = TxCell::new(0u64);
    measure_ns(|| {
        lock.execute(|ctx: &Ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    })
}

#[test]
fn disabled_recording_adds_no_measurable_overhead() {
    // Interleave the two measurements and keep the best of several
    // rounds each, so scheduler noise on shared CI hardware cannot fake
    // a regression.
    let mut bare = f64::INFINITY;
    let mut with_rec = f64::INFINITY;
    for _ in 0..3 {
        let lock = ElidableLock::new(ElisionPolicy::Tle);
        bare = bare.min(rmw_ns(&lock));

        let lock = ElidableLock::new(ElisionPolicy::Tle)
            .with_recorder(Arc::new(Recorder::new(ObsConfig::default())));
        with_rec = with_rec.min(rmw_ns(&lock));
    }
    // The sampled recorder path (1 event per 64 ops by default) must stay
    // within a generous 2.5x of the bare lock; in practice it is ~1x.
    assert!(
        with_rec < bare * 2.5 + 50.0,
        "recorder overhead too high: bare={bare:.1}ns with_recorder={with_rec:.1}ns"
    );
}
