//! Acceptance check: recording must be pay-for-what-you-use. With no
//! recorder installed, the `ElidableLock` hot path must not slow down
//! measurably; with a recorder installed at the default 1/64 sampling
//! rate, the same op must stay within a small factor.

use rtle_bench::micro::measure_ns;
use rtle_core::{Ctx, ElidableLock, ElisionPolicy};
use rtle_htm::TxCell;
use rtle_obs::{ObsConfig, Recorder};
use std::sync::Arc;

fn rmw_ns(lock: &ElidableLock) -> f64 {
    let cell = TxCell::new(0u64);
    measure_ns(|| {
        lock.execute(|ctx: &Ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    })
}

#[test]
fn disabled_recording_adds_no_measurable_overhead() {
    // Interleave the two measurements and keep the best of several
    // rounds each, so scheduler noise on shared CI hardware cannot fake
    // a regression.
    let mut bare = f64::INFINITY;
    let mut with_rec = f64::INFINITY;
    for _ in 0..3 {
        let lock = ElidableLock::builder().policy(ElisionPolicy::Tle).build();
        bare = bare.min(rmw_ns(&lock));

        let lock = ElidableLock::builder()
            .policy(ElisionPolicy::Tle)
            .recorder(Arc::new(Recorder::new(ObsConfig::default())))
            .build();
        with_rec = with_rec.min(rmw_ns(&lock));
    }
    // The sampled recorder path (1 event per 64 ops by default) must stay
    // within a generous 2.5x of the bare lock; in practice it is ~1x.
    assert!(
        with_rec < bare * 2.5 + 50.0,
        "recorder overhead too high: bare={bare:.1}ns with_recorder={with_rec:.1}ns"
    );
}

/// With the `trace` cargo feature off (this crate built with
/// `--no-default-features`), causal tracing must be compiled down to true
/// no-ops: the tracer is a ZST, recording folds away to nothing, and no
/// record is ever retained. This is the trace half of the pay-for-what-
/// you-use guarantee; the timing guard above covers the recorder half.
#[cfg(not(feature = "trace"))]
#[test]
fn trace_off_compiles_to_noops_on_the_fast_path() {
    use rtle_obs::{TraceKind, Tracer};

    assert_eq!(
        std::mem::size_of::<Tracer>(),
        0,
        "trace-off Tracer must be a ZST"
    );
    let tracer = Tracer::new(8, 4096);
    assert!(!tracer.enabled());

    // The per-record cost must be indistinguishable from an empty loop —
    // single-digit ns even on a loaded CI box (a real recording path
    // costs a fetch_add plus two stores and cannot hide below that).
    let ns = measure_ns(|| {
        tracer.span_ending_now(0, TraceKind::FastCommit, 100, 0);
        tracer.instant_now(0, TraceKind::EpochBump, 1);
    });
    // Only meaningful in optimized builds (debug keeps the calls).
    if !cfg!(debug_assertions) {
        assert!(ns < 5.0, "trace-off record must fold away: {ns:.2}ns/op");
    }
    assert_eq!(tracer.recorded(), 0);
    assert!(tracer.drain().is_empty());

    // An instrumented lock with a recorder still records *nothing* to the
    // trace stream when the feature is off.
    let rec = Arc::new(Recorder::new(ObsConfig::default()));
    let lock = ElidableLock::builder()
        .policy(ElisionPolicy::FgTle { orecs: 4 })
        .recorder(Arc::clone(&rec))
        .build();
    let cell = TxCell::new(0u64);
    for _ in 0..256 {
        lock.execute(|ctx: &Ctx| {
            let v = ctx.read(&cell);
            ctx.write(&cell, v + 1);
        });
    }
    assert_eq!(rec.tracer().recorded(), 0);
}
