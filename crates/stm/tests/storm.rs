//! The composable-transaction acceptance storm: 8 threads hammer one
//! closure that touches an `AvlSet`, a `TxHashSet`, and a `ShardedTxMap`
//! inside a single `atomically` block, under chaos-injected HTM aborts,
//! and every commit must be all-or-nothing across all three structures.
//!
//! Divergence is checked *exactly*, not statistically, via a
//! serialization-order oracle: every transaction also increments one hot
//! `TxVar` sequence counter, so each commit owns a unique position in the
//! space's serialization order. Replaying the per-op records in sequence
//! order against a sequential oracle must reproduce every result bit for
//! bit — any torn commit, lost write, or isolation violation shows up as
//! a divergence. (The hot counter doubles as a conflict magnet, forcing
//! the software and pessimistic rungs to carry real load.)

use std::sync::Mutex;

use rtle_avltree::AvlSet;
use rtle_core::ElisionPolicy;
use rtle_htm::HtmConfig;
use rtle_shard::ShardedTxMap;
use rtle_stm::{Stm, TxVar};
use rtle_structs::TxHashSet;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 250;
const KEY_SPACE: u64 = 48;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    Remove(u64),
    Check(u64),
}

#[derive(Debug, Clone, Copy)]
struct Record {
    seq: u64,
    op: Op,
    /// Insert/Remove: "did it change the set"; Check: membership.
    result: bool,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Runs the storm against `space`, returning all per-op records.
fn run_storm(space: &Stm) -> Vec<Record> {
    let avl = AvlSet::with_key_range(KEY_SPACE);
    let hash = TxHashSet::with_capacity(1024);
    let map: ShardedTxMap<u64> = ShardedTxMap::with_builder(8, 256, space.lock_builder());
    let seq = TxVar::new(0u64);
    let records: Mutex<Vec<Record>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (avl, hash, map, seq, records) = (&avl, &hash, &map, &seq, &records);
            s.spawn(move || {
                let mut rng = 0x9E3779B97F4A7C15u64 ^ (t as u64 + 1);
                let mut local = Vec::with_capacity(OPS_PER_THREAD);
                for _ in 0..OPS_PER_THREAD {
                    let r = xorshift(&mut rng);
                    let key = r % KEY_SPACE;
                    let op = match (r >> 32) % 5 {
                        0 | 1 => Op::Insert(key),
                        2 | 3 => Op::Remove(key),
                        _ => Op::Check(key),
                    };
                    let (seq_at, result) = space.atomically(|tx| {
                        let s = tx.read(seq);
                        tx.write(seq, s + 1);
                        let result = match op {
                            Op::Insert(k) => {
                                let fresh = avl.insert(tx, k);
                                let h = hash.insert(tx, k);
                                let m = tx.map_insert(map, k, k * 3 + 1).is_none();
                                assert_eq!(fresh, h, "avl/hash disagree inside tx");
                                assert_eq!(fresh, m, "avl/map disagree inside tx");
                                fresh
                            }
                            Op::Remove(k) => {
                                let had = avl.remove(tx, k);
                                let h = hash.remove(tx, k);
                                let m = tx.map_remove(map, k).is_some();
                                assert_eq!(had, h, "avl/hash disagree inside tx");
                                assert_eq!(had, m, "avl/map disagree inside tx");
                                had
                            }
                            Op::Check(k) => {
                                let a = avl.contains(tx, k);
                                let h = hash.contains(tx, k);
                                let m = tx.map_contains(map, k);
                                assert_eq!(a, h, "avl/hash disagree inside tx");
                                assert_eq!(a, m, "avl/map disagree inside tx");
                                a
                            }
                        };
                        Ok((s, result))
                    });
                    local.push(Record {
                        seq: seq_at,
                        op,
                        result,
                    });
                }
                records.lock().unwrap().extend(local);
            });
        }
    });

    // Sequence sanity: every commit owns a unique serialization slot.
    let total = THREADS * OPS_PER_THREAD;
    assert_eq!(seq.read_plain(), total as u64, "every op committed exactly once");

    // Replay in serialization order against a sequential oracle.
    let mut all = records.into_inner().unwrap();
    all.sort_by_key(|r| r.seq);
    let mut oracle = std::collections::BTreeSet::new();
    let mut divergence = 0usize;
    for rec in &all {
        let expect = match rec.op {
            Op::Insert(k) => oracle.insert(k),
            Op::Remove(k) => oracle.remove(&k),
            Op::Check(k) => oracle.contains(&k),
        };
        if expect != rec.result {
            divergence += 1;
        }
    }
    assert_eq!(divergence, 0, "oracle replay diverged");

    // Final-state agreement: all three structures equal the oracle.
    let final_keys: Vec<u64> = oracle.iter().copied().collect();
    let mut avl_keys = avl.keys_plain();
    avl_keys.sort_unstable();
    let mut hash_keys = hash.keys_plain();
    hash_keys.sort_unstable();
    let mut map_keys: Vec<u64> = map.entries_plain().iter().map(|(k, _)| *k).collect();
    map_keys.sort_unstable();
    assert_eq!(avl_keys, final_keys, "avl final state");
    assert_eq!(hash_keys, final_keys, "hash final state");
    assert_eq!(map_keys, final_keys, "sharded map final state");
    avl.check_invariants_plain().expect("avl invariants hold");

    all
}

/// 8-thread chaos storm on a default (FG-TLE + NOrec) space: the HTM
/// randomly aborts, so commits flow through all three ladder rungs, and
/// the oracle must still see zero divergence.
#[test]
fn three_structure_storm_under_chaos_has_zero_divergence() {
    let chaos = HtmConfig {
        spurious_one_in: 3,
        conflict_one_in: 5,
        capacity_one_in: 17,
        ..HtmConfig::current()
    };
    chaos.with_installed(|| {
        // A tight speculation budget under heavy chaos guarantees the
        // software and pessimistic rungs carry real load.
        let space = Stm::builder()
            .retry(rtle_core::RetryPolicy {
                max_attempts: 2,
                ..rtle_core::RetryPolicy::default()
            })
            .build();
        run_storm(&space);
        let s = space.stats().snapshot();
        assert_eq!(s.commits(), (THREADS * OPS_PER_THREAD) as u64);
        assert!(
            s.commits_sw + s.commits_locked > 0,
            "chaos must push some commits off the speculation rung: {s:?}"
        );
    });
}

/// The same storm on a LockOnly space: every transaction takes the
/// pessimistic rung, exercising plan growth (restarts) and ordered
/// multi-lock acquisition exclusively.
#[test]
fn storm_on_lock_only_space_is_fully_pessimistic() {
    let space = Stm::builder()
        .policy(ElisionPolicy::LockOnly)
        .software_backends(Vec::new())
        .build();
    run_storm(&space);
    let s = space.stats().snapshot();
    assert_eq!(s.commits_locked, (THREADS * OPS_PER_THREAD) as u64);
    assert_eq!(s.commits_spec + s.commits_sw, 0);
    assert!(s.plan_restarts > 0, "plan growth must have occurred: {s:?}");
}

/// Torn-commit hunt: a writer transaction inserts a key into all three
/// structures while readers continuously assert the membership invariant
/// (in all three or in none) — under chaos, with removals mixed in.
#[test]
fn membership_invariant_never_tears() {
    let chaos = HtmConfig {
        spurious_one_in: 5,
        conflict_one_in: 9,
        ..HtmConfig::current()
    };
    chaos.with_installed(|| {
        let space = Stm::new();
        let avl = AvlSet::with_key_range(KEY_SPACE);
        let hash = TxHashSet::with_capacity(1024);
        let map: ShardedTxMap<u64> = ShardedTxMap::with_builder(4, 256, space.lock_builder());
        let space = &space;

        std::thread::scope(|s| {
            for t in 0..4 {
                let (avl, hash, map) = (&avl, &hash, &map);
                s.spawn(move || {
                    let mut rng = 0xD1B54A32D192ED03u64 ^ (t + 1);
                    for _ in 0..400 {
                        let r = xorshift(&mut rng);
                        let k = r % KEY_SPACE;
                        if r & 1 == 0 {
                            space.atomically(|tx| {
                                avl.insert(tx, k);
                                hash.insert(tx, k);
                                tx.map_insert(map, k, 1);
                                Ok(())
                            });
                        } else {
                            space.atomically(|tx| {
                                avl.remove(tx, k);
                                hash.remove(tx, k);
                                tx.map_remove(map, k);
                                Ok(())
                            });
                        }
                    }
                });
            }
            for _ in 0..4 {
                let (avl, hash, map) = (&avl, &hash, &map);
                s.spawn(move || {
                    let mut rng = 0x2545F4914F6CDD1Du64;
                    for _ in 0..400 {
                        let k = xorshift(&mut rng) % KEY_SPACE;
                        let (a, h, m) = space.atomically(|tx| {
                            Ok((
                                avl.contains(tx, k),
                                hash.contains(tx, k),
                                tx.map_contains(map, k),
                            ))
                        });
                        assert_eq!(a, h, "torn commit visible: avl vs hash for {k}");
                        assert_eq!(a, m, "torn commit visible: avl vs map for {k}");
                    }
                });
            }
        });
    });
}
