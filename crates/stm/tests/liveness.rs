//! Retry/wakeup liveness: blocked consumers must actually park (no
//! spinning) and must be woken by producer commits (no lost wakeups),
//! across every rung the producer can commit on.

use std::time::{Duration, Instant};

use rtle_core::ElisionPolicy;
use rtle_stm::{Stm, TxVar};
use rtle_structs::TxHashSet;

/// A consumer that retries on an empty counter parks and is woken by the
/// producer's commit — visible in the stats as parks ≥ 1 with notified
/// wakeups, not timeout recoveries.
#[test]
fn blocked_consumer_is_woken_by_producer_commit() {
    let space = Stm::new();
    let items = TxVar::new(0u64);
    const BATCHES: u64 = 16;

    std::thread::scope(|s| {
        let (space, items) = (&space, &items);
        let consumer = s.spawn(move || {
            let mut consumed = 0u64;
            while consumed < BATCHES {
                space.atomically(|tx| {
                    let n = tx.read(items);
                    tx.check(n > 0)?; // retry: park until a producer commits
                    tx.write(items, n - 1);
                    Ok(())
                });
                consumed += 1;
            }
            consumed
        });
        s.spawn(move || {
            for _ in 0..BATCHES {
                // Give the consumer time to drain and park again, so the
                // wakeup path (not the fast pre-park recheck) is exercised.
                std::thread::sleep(Duration::from_millis(2));
                space.atomically(|tx| {
                    let n = tx.read(items);
                    tx.write(items, n + 1);
                    Ok(())
                });
            }
        });
        assert_eq!(consumer.join().unwrap(), BATCHES);
    });

    let s = space.stats().snapshot();
    assert!(s.parks >= 1, "consumer never parked: {s:?}");
    assert!(s.wakes_notified >= 1, "no notified wakeup observed: {s:?}");
    assert!(s.wakeups_sent >= 1, "producer sent no wakeups: {s:?}");
}

/// Ping-pong handoff through a TxVar: each side blocks for the other's
/// parity. With lost wakeups every round would eat a 100 ms timeout
/// (≥ 40 s total); the wall-clock bound plus the notified/timeout split
/// proves wakeups are delivered by commits.
#[test]
fn ping_pong_has_no_lost_wakeups() {
    let space = Stm::new();
    let token = TxVar::new(0u64);
    const ROUNDS: u64 = 200;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let (space, token) = (&space, &token);
        s.spawn(move || {
            for i in 0..ROUNDS {
                space.atomically(|tx| {
                    let v = tx.read(token);
                    tx.check(v == 2 * i)?;
                    tx.write(token, v + 1);
                    Ok(())
                });
            }
        });
        s.spawn(move || {
            for i in 0..ROUNDS {
                space.atomically(|tx| {
                    let v = tx.read(token);
                    tx.check(v == 2 * i + 1)?;
                    tx.write(token, v + 1);
                    Ok(())
                });
            }
        });
    });
    let elapsed = t0.elapsed();

    assert_eq!(token.read_plain(), 2 * ROUNDS);
    let s = space.stats().snapshot();
    assert!(
        elapsed < Duration::from_secs(10),
        "handoffs relied on timeout recovery ({elapsed:?}): {s:?}"
    );
    assert!(
        s.wakes_notified > s.wakes_timeout,
        "most wakeups must be notifications, not timeouts: {s:?}"
    );
}

/// Wakeups also fire when the producer commits on the pessimistic rung
/// (LockOnly space): the wake runs after lock release, and the waiter
/// must see the published value.
#[test]
fn pessimistic_commits_wake_waiters_too() {
    let space = Stm::builder()
        .policy(ElisionPolicy::LockOnly)
        .software_backends(Vec::new())
        .build();
    let flag = TxVar::new(0u64);

    std::thread::scope(|s| {
        let (space, flag) = (&space, &flag);
        let waiter = s.spawn(move || {
            space.atomically(|tx| {
                let v = tx.read(flag);
                tx.check(v == 42)?;
                Ok(v)
            })
        });
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            space.atomically(|tx| {
                tx.write(flag, 42u64);
                Ok(())
            });
        });
        assert_eq!(waiter.join().unwrap(), 42);
    });
    let s = space.stats().snapshot();
    assert!(s.commits_locked >= 2, "{s:?}");
}

/// `or_else` with a retrying first branch parks on the *union* of both
/// branches' read sets: a producer filling either side wakes the waiter.
#[test]
fn or_else_parks_on_union_of_read_sets() {
    for fill_first in [true, false] {
        let space = Stm::new();
        let a = TxVar::new(0u64);
        let b = TxVar::new(0u64);

        std::thread::scope(|s| {
            let (space, a, b) = (&space, &a, &b);
            let chooser = s.spawn(move || {
                space.atomically(|tx| {
                    tx.or_else(
                        |tx| {
                            let v = tx.read(a);
                            tx.check(v > 0)?;
                            tx.write(a, v - 1);
                            Ok("a")
                        },
                        |tx| {
                            let v = tx.read(b);
                            tx.check(v > 0)?;
                            tx.write(b, v - 1);
                            Ok("b")
                        },
                    )
                })
            });
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                space.atomically(|tx| {
                    if fill_first {
                        tx.write(a, 1u64);
                    } else {
                        tx.write(b, 1u64);
                    }
                    Ok(())
                });
            });
            let got = chooser.join().unwrap();
            assert_eq!(got, if fill_first { "a" } else { "b" });
        });
    }
}

/// A retry-driven consumer over a space-domain structure: `any_key` +
/// `remove` + retry blocks until a producer inserts, and the read-set
/// must include a TxVar for the wakeup (the version var pattern).
#[test]
fn structure_consumer_blocks_via_version_var() {
    let space = Stm::new();
    let pool = TxHashSet::with_capacity(64);
    let version = TxVar::new(0u64); // bumped on every pool mutation
    const ITEMS: u64 = 10;

    std::thread::scope(|s| {
        let (space, pool, version) = (&space, &pool, &version);
        let consumer = s.spawn(move || {
            let mut got = Vec::new();
            while got.len() < ITEMS as usize {
                let k = space.atomically(|tx| {
                    let _ = tx.read(version); // wakeup dependency
                    match pool.any_key(tx) {
                        Some(k) => {
                            pool.remove(tx, k);
                            tx.write(version, tx.read(version) + 1);
                            Ok(k)
                        }
                        None => tx.retry(),
                    }
                });
                got.push(k);
            }
            got.sort_unstable();
            got
        });
        s.spawn(move || {
            for k in 0..ITEMS {
                std::thread::sleep(Duration::from_millis(1));
                space.atomically(|tx| {
                    pool.insert(tx, k);
                    tx.write(version, tx.read(version) + 1);
                    Ok(())
                });
            }
        });
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..ITEMS).collect::<Vec<u64>>());
    });
}
