//! [`TxVar`]: a transactional variable that composable transactions can
//! block on.
//!
//! A `TxVar<T>` is a [`TxCell`] plus a *waiter list*. The cell is ordinary
//! transactional state — the space lock's domain, read and written through
//! whatever execution mode the `atomically` ladder is in. The waiter list
//! is what makes `retry` a *blocking* primitive instead of a spin: a
//! transaction that gives up via [`crate::Tx::retry`] parks one [`Waiter`]
//! on every `TxVar` in its read set, and every committing transaction that
//! wrote a `TxVar` wakes that var's list after its writes are visible.
//!
//! The wakeup protocol (no lost wakeups):
//!
//! 1. the parker **registers** its waiter on each read var's list,
//! 2. then re-validates every logged read value plainly,
//! 3. and only parks if nothing changed.
//!
//! A writer that commits before step 2 is seen by the validation (the
//! parker reruns immediately); a writer that commits after step 2 finds
//! the waiter already registered (step 1 happened first) and notifies it.
//! A ~100 ms timeout backstops the protocol — a timed-out waiter
//! revalidates and re-parks, so even a missed edge costs bounded latency,
//! and the `wakes_timeout` statistic makes such bugs visible instead of
//! silent.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rtle_htm::{TxCell, TxWord};

/// A transactional variable: shared state read and written inside
/// [`crate::atomically`] blocks, with a waiter list so transactions that
/// [`crate::Tx::retry`] after reading it are woken when it changes.
#[derive(Debug)]
pub struct TxVar<T: TxWord> {
    cell: TxCell<T>,
    waiters: WaitList,
}

impl<T: TxWord> TxVar<T> {
    /// Creates a variable holding `value`.
    pub fn new(value: T) -> Self {
        TxVar {
            cell: TxCell::new(value),
            waiters: WaitList::new(),
        }
    }

    /// Non-transactional snapshot read — setup, teardown, assertions.
    pub fn read_plain(&self) -> T {
        self.cell.read_plain()
    }

    pub(crate) fn cell(&self) -> &TxCell<T> {
        &self.cell
    }

    pub(crate) fn waiters(&self) -> &WaitList {
        &self.waiters
    }
}

impl<T: TxWord + Default> Default for TxVar<T> {
    fn default() -> Self {
        TxVar::new(T::default())
    }
}

/// The parked transactions waiting for one [`TxVar`] to change.
///
/// A coarse `Mutex<Vec<..>>` is deliberate: the list is touched only on
/// the *blocking* path (a transaction that already gave up) and on the
/// commit of a transaction that wrote the var — never on the speculative
/// fast path, so a fine-grained structure would optimize the part of the
/// protocol that is waiting anyway.
#[derive(Debug, Default)]
pub(crate) struct WaitList {
    inner: Mutex<Vec<Arc<Waiter>>>,
}

impl WaitList {
    pub(crate) fn new() -> Self {
        WaitList::default()
    }

    /// Adds `w` to the list, purging stale entries (waiters whose owning
    /// thread gave up — sole `Arc` holder — or that were already notified)
    /// so abandoned registrations from timed-out parks cannot accumulate.
    pub(crate) fn register(&self, w: &Arc<Waiter>) {
        let mut list = self.inner.lock().unwrap();
        list.retain(|old| Arc::strong_count(old) > 1 && !old.is_notified());
        list.push(Arc::clone(w));
    }

    /// Drains the list and notifies every waiter. Returns how many were
    /// notified. Called *after* the waking transaction's writes are
    /// visible (post-commit / post-release).
    pub(crate) fn wake_all(&self) -> usize {
        let drained: Vec<Arc<Waiter>> = {
            let mut list = self.inner.lock().unwrap();
            list.drain(..).collect()
        };
        let n = drained.len();
        for w in &drained {
            w.notify();
        }
        n
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// One parked transaction: a notified flag under a mutex plus a condvar.
#[derive(Debug, Default)]
pub(crate) struct Waiter {
    state: Mutex<bool>,
    cv: Condvar,
}

impl Waiter {
    pub(crate) fn new() -> Self {
        Waiter::default()
    }

    pub(crate) fn notify(&self) {
        let mut notified = self.state.lock().unwrap();
        *notified = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_notified(&self) -> bool {
        *self.state.lock().unwrap()
    }

    /// Blocks until notified or `timeout` elapses. Returns whether the
    /// wakeup was a notification (vs the timeout backstop).
    pub(crate) fn park(&self, timeout: Duration) -> bool {
        let mut notified = self.state.lock().unwrap();
        while !*notified {
            let (guard, result) = self.cv.wait_timeout(notified, timeout).unwrap();
            notified = guard;
            if result.timed_out() {
                return *notified;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn notify_before_park_returns_immediately() {
        let w = Arc::new(Waiter::new());
        w.notify();
        assert!(w.park(Duration::from_secs(5)));
    }

    #[test]
    fn park_times_out_without_notification() {
        let w = Arc::new(Waiter::new());
        assert!(!w.park(Duration::from_millis(5)));
    }

    #[test]
    fn wake_all_drains_and_notifies() {
        let list = WaitList::new();
        let a = Arc::new(Waiter::new());
        let b = Arc::new(Waiter::new());
        list.register(&a);
        list.register(&b);
        assert_eq!(list.wake_all(), 2);
        assert_eq!(list.wake_all(), 0, "list drained");
        assert!(a.is_notified());
        assert!(b.is_notified());
    }

    #[test]
    fn register_purges_abandoned_waiters() {
        let list = WaitList::new();
        {
            let abandoned = Arc::new(Waiter::new());
            list.register(&abandoned);
        } // sole owner dropped: entry is stale
        let live = Arc::new(Waiter::new());
        list.register(&live);
        assert_eq!(list.len(), 1, "stale entry purged on register");
    }

    #[test]
    fn cross_thread_wakeup() {
        let list = Arc::new(WaitList::new());
        let w = Arc::new(Waiter::new());
        list.register(&w);
        let l2 = Arc::clone(&list);
        let t = thread::spawn(move || {
            l2.wake_all();
        });
        assert!(w.park(Duration::from_secs(5)), "woken by notification");
        t.join().unwrap();
    }

    #[test]
    fn txvar_plain_roundtrip() {
        let v = TxVar::new(7u64);
        assert_eq!(v.read_plain(), 7);
        let d: TxVar<u64> = TxVar::default();
        assert_eq!(d.read_plain(), 0);
    }
}
