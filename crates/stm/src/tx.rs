//! [`Tx`]: the in-flight composable transaction handle.
//!
//! One `Tx` is one *attempt* of an [`crate::atomically`] block, in one of
//! three execution modes mirroring the refined-TLE ladder:
//!
//! * **Spec** — inside a hardware transaction of the space lock's
//!   speculative phase (fast or slow path). Participant locks touched
//!   through [`Tx::map_get`] & co. are enrolled by *transactional lock
//!   subscription* ([`ElidableLock::subscribe_speculatively`]): if a
//!   participant is held, the attempt aborts; if it is acquired later, the
//!   lock word in the HTM read set dooms the transaction. The paper's
//!   single-lock subscription argument, applied per participant.
//! * **Sw** — inside a software-TM attempt on the space's backend.
//!   Enrollment raises the participant's `sw_running` presence
//!   ([`ElidableLock::try_software_presence`]) so pessimistic holders
//!   quiesce us; acquisition is *non-blocking* with a bounded spin —
//!   blocking while holding other presences would close a deadlock cycle
//!   with multi-lock pessimistic acquirers, so a stubbornly held lock
//!   aborts the attempt instead ([`rtle_hytm::abort_sw`]).
//! * **Locked** — every needed lock is held pessimistically, acquired in
//!   ascending address order (the same total order `rtle-shard` uses for
//!   cross-shard transfers, so the deadlock-freedom argument composes).
//!   Touching a lock outside the held plan unwinds with [`StmRestart`];
//!   the driver grows the plan and re-runs.
//!
//! In **every** mode the transaction buffers its writes in an append-only
//! redo log and flushes them at commit time. Append-only is what makes
//! [`Tx::or_else`] cheap: the abandoned first branch is rolled back by
//! truncating the write log to a checkpoint, while its reads stay logged —
//! STM-Haskell's semantics, where a nested-retry blocks on the *union* of
//! both branches' read sets.
//!
//! # Safety contract
//!
//! The logs hold raw `*const TxCell<u64>` pointers, exactly like the
//! software-TM descriptors in `rtle-hytm`: cells reached through the
//! closure's captured references must outlive the `atomically` call. The
//! dedicated entry points ([`Tx::read`], [`Tx::map_get`], …) enforce this
//! with `'env` bounds; the blanket [`TxAccess`] implementation (which lets
//! space-domain structures like `AvlSet` run unmodified) inherits the same
//! contract the descriptors document: do not feed it cells owned by the
//! closure's own stack frame.

use std::cell::RefCell;
use std::panic;
use std::sync::Arc;

use rtle_core::{ElidableLock, SoftwarePresence};
use rtle_htm::{DynAccess, SwHtmBackend, TxAccess, TxCell, TxWord};
use rtle_hytm::SoftwareTm;
use rtle_shard::ShardedTxMap;

use crate::space::Stm;
use crate::var::{TxVar, WaitList};

/// The elidable-lock flavour composable transactions run over. The stack
/// is built on the emulated HTM backend throughout (chaos injection,
/// deterministic tests); a generic-`B` space would buy nothing here.
pub(crate) type Lock = ElidableLock<SwHtmBackend>;

/// Why a transaction attempt did not produce a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The transaction asked to block until something in its read set
    /// changes ([`Tx::retry`]).
    Retry,
}

/// What an `atomically` closure returns: the value, or a request to block
/// and rerun. Compose with `?`.
pub type TxResult<T> = Result<T, TxError>;

/// One logged read: the cell, the value observed, and — for [`TxVar`]
/// reads — the var's waiter list, so `retry` knows where to park.
pub(crate) struct ReadRec {
    pub(crate) cell: *const TxCell<u64>,
    pub(crate) value: u64,
    pub(crate) waiters: Option<*const WaitList>,
}

/// One buffered write. `domain` is the owning lock's address, so the
/// pessimistic flush can route it through that lock's holder context
/// (stamping the right orecs / write flag for slow-path coexistence).
pub(crate) struct WriteRec {
    pub(crate) cell: *const TxCell<u64>,
    pub(crate) value: u64,
    pub(crate) domain: usize,
    pub(crate) waiters: Option<*const WaitList>,
}

/// Per-attempt state, owned by the driver so it survives the closure frame
/// (the flush and the park/wake bookkeeping run after `f` returns).
#[derive(Default)]
pub(crate) struct TxInner<'env> {
    pub(crate) reads: Vec<ReadRec>,
    pub(crate) writes: Vec<WriteRec>,
    /// Participant locks enrolled this attempt (the space lock excluded).
    pub(crate) enrolled: Vec<&'env Lock>,
    /// Set by a Locked-mode enrollment miss just before [`restart`].
    pub(crate) missing: Option<&'env Lock>,
}

impl<'env> TxInner<'env> {
    pub(crate) fn new() -> Self {
        TxInner::default()
    }

    pub(crate) fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
        self.enrolled.clear();
        self.missing = None;
    }
}

/// The held pessimistic plan: each acquired lock's address paired with its
/// holder execution context (borrowed from the driver's `LockedSection`s).
pub(crate) struct LockedPlan<'s> {
    pub(crate) entries: Vec<(usize, &'s (dyn DynAccess + 's))>,
}

impl<'s> LockedPlan<'s> {
    pub(crate) fn access_for(&self, domain: usize) -> Option<&'s (dyn DynAccess + 's)> {
        self.entries
            .iter()
            .find(|(d, _)| *d == domain)
            .map(|(_, a)| *a)
    }
}

/// The attempt's execution mode (see module docs).
pub(crate) enum Mode<'env, 'run> {
    /// Hardware speculation under the space lock.
    Spec(&'run (dyn DynAccess + 'run)),
    /// Software-TM attempt on the space's active backend.
    Sw {
        acc: &'run (dyn DynAccess + 'run),
        tm: &'run Arc<dyn SoftwareTm>,
        presences: &'run RefCell<Vec<SoftwarePresence<'env>>>,
    },
    /// Pessimistic: all planned locks held in address order.
    Locked(&'run LockedPlan<'run>),
}

/// The live transaction handle an [`crate::atomically`] closure receives.
///
/// `Tx` implements [`TxAccess`], so space-domain transactional structures
/// (`AvlSet`, `TxHashSet`, …) run inside the transaction unmodified:
/// `set.insert(tx, k)`. Sharded maps with their own locks participate via
/// the [`Tx::map_get`] / [`Tx::map_insert`] / [`Tx::map_remove`] /
/// [`Tx::map_contains`] adapters, which enroll the owning shard lock
/// before routing the operation.
pub struct Tx<'env, 'run> {
    pub(crate) space: &'env Stm,
    pub(crate) mode: Mode<'env, 'run>,
    pub(crate) inner: &'run RefCell<TxInner<'env>>,
}

impl<'env, 'run> Tx<'env, 'run> {
    pub(crate) fn new(
        space: &'env Stm,
        mode: Mode<'env, 'run>,
        inner: &'run RefCell<TxInner<'env>>,
    ) -> Self {
        Tx { space, mode, inner }
    }

    #[inline]
    fn space_domain(&self) -> usize {
        self.space.lock_addr()
    }

    /// Transactional read of a [`TxVar`]. The read is logged with the
    /// var's waiter list, so a later [`Tx::retry`] blocks on it.
    pub fn read<T: TxWord>(&self, var: &'env TxVar<T>) -> T {
        let word = self.load_raw(
            var.cell().as_word_cell(),
            self.space_domain(),
            Some(var.waiters() as *const WaitList),
        );
        T::from_word(word)
    }

    /// Transactional write of a [`TxVar`]. Buffered until commit; the
    /// var's waiter list is woken after the commit is visible.
    pub fn write<T: TxWord>(&self, var: &'env TxVar<T>, value: T) {
        self.store_raw(
            var.cell().as_word_cell(),
            value.to_word(),
            self.space_domain(),
            Some(var.waiters() as *const WaitList),
        );
    }

    /// Gives up this attempt and blocks until some [`TxVar`] in the read
    /// set changes, then reruns the whole transaction. Use with `?`:
    ///
    /// ```ignore
    /// let n = tx.read(&avail);
    /// if n == 0 { return tx.retry(); }
    /// ```
    ///
    /// The blocked transaction commits nothing (its buffered writes are
    /// discarded); the read set it parks on is the consistent snapshot the
    /// attempt observed. At least one `TxVar` must have been read — a
    /// retry with no vars in the read set has no wakeup source and panics
    /// rather than blocking forever.
    pub fn retry<T>(&self) -> TxResult<T> {
        Err(TxError::Retry)
    }

    /// `check(cond)?` — STM-Haskell's `check`: retry unless `cond` holds.
    pub fn check(&self, cond: bool) -> TxResult<()> {
        if cond {
            Ok(())
        } else {
            Err(TxError::Retry)
        }
    }

    /// Composes two alternatives: runs `a`; if it retries, rolls back its
    /// writes (truncating the append-only redo log to a checkpoint) and
    /// runs `b`. Reads from the abandoned branch stay logged, so a retry
    /// of the *composition* blocks on the union of both branches' read
    /// sets — exactly STM-Haskell's `orElse`. Nests freely.
    pub fn or_else<R>(
        &self,
        a: impl FnOnce(&Self) -> TxResult<R>,
        b: impl FnOnce(&Self) -> TxResult<R>,
    ) -> TxResult<R> {
        let checkpoint = self.inner.borrow().writes.len();
        match a(self) {
            Err(TxError::Retry) => {
                self.inner.borrow_mut().writes.truncate(checkpoint);
                b(self)
            }
            done => done,
        }
    }

    // ------------------------------------------------------------------
    // Sharded-map participation
    // ------------------------------------------------------------------

    /// Transactional `get` on a sharded map: enrolls the key's shard lock
    /// as a participant, then routes the probe through this transaction.
    pub fn map_get<V: TxWord>(
        &self,
        map: &'env ShardedTxMap<V, SwHtmBackend>,
        key: u64,
    ) -> Option<V> {
        let (lock, shard) = map.shard_parts(key);
        let domain = self.enroll(lock);
        shard.get(&DomainAccess { tx: self, domain }, key)
    }

    /// Transactional membership test on a sharded map.
    pub fn map_contains<V: TxWord>(
        &self,
        map: &'env ShardedTxMap<V, SwHtmBackend>,
        key: u64,
    ) -> bool {
        let (lock, shard) = map.shard_parts(key);
        let domain = self.enroll(lock);
        shard.contains(&DomainAccess { tx: self, domain }, key)
    }

    /// Transactional insert on a sharded map; returns the previous value.
    pub fn map_insert<V: TxWord>(
        &self,
        map: &'env ShardedTxMap<V, SwHtmBackend>,
        key: u64,
        value: V,
    ) -> Option<V> {
        let (lock, shard) = map.shard_parts(key);
        let domain = self.enroll(lock);
        shard.insert(&DomainAccess { tx: self, domain }, key, value)
    }

    /// Transactional remove on a sharded map; returns the removed value.
    pub fn map_remove<V: TxWord>(
        &self,
        map: &'env ShardedTxMap<V, SwHtmBackend>,
        key: u64,
    ) -> Option<V> {
        let (lock, shard) = map.shard_parts(key);
        let domain = self.enroll(lock);
        shard.remove(&DomainAccess { tx: self, domain }, key)
    }

    // ------------------------------------------------------------------
    // Enrollment
    // ------------------------------------------------------------------

    /// Enrolls a participant lock into this attempt (idempotent) and
    /// returns its domain id. Mode-specific protocol per module docs.
    pub(crate) fn enroll(&self, lock: &'env Lock) -> usize {
        let domain = lock as *const Lock as usize;
        if domain == self.space_domain() {
            return domain;
        }
        let already = self
            .inner
            .borrow()
            .enrolled
            .iter()
            .any(|l| std::ptr::eq(*l as *const Lock, lock as *const Lock));
        if already {
            return domain;
        }
        match &self.mode {
            Mode::Spec(_) => {
                // Aborts the hardware transaction if the participant is
                // held; otherwise its lock word joins the HTM read set.
                lock.subscribe_speculatively();
            }
            Mode::Sw { tm, presences, .. } => {
                // The space's validation protocol only covers participant
                // data if the participant's hardware commits run the same
                // backend's commit hook — require the shared Arc.
                assert!(
                    lock.software_backends().iter().any(|b| Arc::ptr_eq(b, tm)),
                    "composable transaction participant does not share the \
                     space's software backend; build participant locks with \
                     Stm::lock_builder() so hybrid validation covers them"
                );
                let mut presence = None;
                for _ in 0..PRESENCE_SPIN {
                    if let Some(p) = lock.try_software_presence() {
                        presence = Some(p);
                        break;
                    }
                    std::hint::spin_loop();
                }
                match presence {
                    Some(p) => presences.borrow_mut().push(p),
                    // Held by a pessimist: back off by aborting the
                    // attempt. Never block here — this thread may already
                    // hold presences on other locks, and a pessimist
                    // quiescing one of those while holding this lock
                    // would deadlock with us.
                    None => rtle_hytm::abort_sw(),
                }
            }
            Mode::Locked(plan) => {
                if plan.access_for(domain).is_none() {
                    self.inner.borrow_mut().missing = Some(lock);
                    restart();
                }
            }
        }
        self.inner.borrow_mut().enrolled.push(lock);
        domain
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    /// Read barrier: redo-log lookup (read-own-write), then the mode's
    /// underlying access, then the read log.
    pub(crate) fn load_raw(
        &self,
        cell: &TxCell<u64>,
        domain: usize,
        waiters: Option<*const WaitList>,
    ) -> u64 {
        let ptr = cell as *const TxCell<u64>;
        {
            let inner = self.inner.borrow();
            if let Some(w) = inner.writes.iter().rev().find(|w| std::ptr::eq(w.cell, ptr)) {
                return w.value;
            }
        }
        let value = match &self.mode {
            Mode::Spec(acc) => acc.load_word(cell),
            Mode::Sw { acc, .. } => acc.load_word(cell),
            Mode::Locked(plan) => plan
                .access_for(domain)
                .expect("read from a domain that was never enrolled")
                .load_word(cell),
        };
        self.inner.borrow_mut().reads.push(ReadRec {
            cell: ptr,
            value,
            waiters,
        });
        value
    }

    /// Write barrier: append to the redo log. Nothing touches memory
    /// until the attempt flushes at commit time.
    pub(crate) fn store_raw(
        &self,
        cell: &TxCell<u64>,
        value: u64,
        domain: usize,
        waiters: Option<*const WaitList>,
    ) {
        self.inner.borrow_mut().writes.push(WriteRec {
            cell: cell as *const TxCell<u64>,
            value,
            domain,
            waiters,
        });
    }
}

/// How long a Sw-mode enrollment spins for a held participant lock before
/// aborting the attempt (see [`Tx::enroll`]).
const PRESENCE_SPIN: usize = 128;

/// Space-domain access: lets space-guarded structures (`AvlSet`,
/// `TxHashSet`, plain `TxCell` code) run inside the transaction directly.
impl TxAccess for Tx<'_, '_> {
    #[inline]
    fn load<T: TxWord>(&self, cell: &TxCell<T>) -> T {
        T::from_word(self.load_raw(cell.as_word_cell(), self.space_domain(), None))
    }

    #[inline]
    fn store<T: TxWord>(&self, cell: &TxCell<T>, value: T) {
        self.store_raw(
            cell.as_word_cell(),
            value.to_word(),
            self.space_domain(),
            None,
        );
    }
}

/// Participant-domain access: the same barriers tagged with the owning
/// lock's domain, so Locked-mode routing picks the right holder context.
pub(crate) struct DomainAccess<'t, 'env, 'run> {
    pub(crate) tx: &'t Tx<'env, 'run>,
    pub(crate) domain: usize,
}

impl TxAccess for DomainAccess<'_, '_, '_> {
    #[inline]
    fn load<T: TxWord>(&self, cell: &TxCell<T>) -> T {
        T::from_word(self.tx.load_raw(cell.as_word_cell(), self.domain, None))
    }

    #[inline]
    fn store<T: TxWord>(&self, cell: &TxCell<T>, value: T) {
        self.tx
            .store_raw(cell.as_word_cell(), value.to_word(), self.domain, None);
    }
}

// ----------------------------------------------------------------------
// Commit-time flush (driver side)
// ----------------------------------------------------------------------

/// Flushes the redo log through one access (Spec: inside the hardware
/// transaction; Sw: into the backend's buffered write set, published by
/// the backend commit). Log order is preserved, so later writes to the
/// same cell win.
///
/// # Safety (by contract, see module docs)
/// Cell pointers were captured from references live in the closure; the
/// flush runs while those references are still borrowed.
pub(crate) fn flush_via(inner: &TxInner<'_>, acc: &dyn DynAccess) {
    for w in &inner.writes {
        // SAFETY: the pointer was captured from a `&TxCell` that is still
        // borrowed by the closure this flush runs inside (module contract).
        // lockcheck: the deref only reconstructs the reference; the store
        // goes through the attempt's own transactional access barriers.
        let cell = unsafe { &*w.cell };
        acc.store_word(cell, w.value);
    }
}

/// Runs each enrolled participant's hardware commit hook — Spec-mode
/// commits must give participants' software backends their commit-time
/// instrumentation, exactly as the space lock's own attempt machinery
/// does for the space's backends. Must run inside the hardware
/// transaction, after the flush.
pub(crate) fn run_participant_hooks(inner: &TxInner<'_>) {
    for lock in &inner.enrolled {
        lock.participant_commit_hook();
    }
}

/// Pessimistic flush: every write goes through its owning domain's holder
/// context, stamping that lock's orecs / write flag so concurrent
/// slow-path hardware transactions on the participant observe the holder
/// mutating (the refined-TLE coexistence invariant).
pub(crate) fn flush_locked(inner: &TxInner<'_>, plan: &LockedPlan<'_>) {
    for w in &inner.writes {
        let acc = plan
            .access_for(w.domain)
            .expect("write to a domain missing from the locked plan");
        // SAFETY: the pointer was captured from a `&TxCell` that is still
        // borrowed by the closure this flush runs inside (module contract).
        // lockcheck: the deref only reconstructs the reference; the store
        // goes through the owning domain's holder-context barriers while
        // that domain's lock is held.
        let cell = unsafe { &*w.cell };
        acc.store_word(cell, w.value);
    }
}

// ----------------------------------------------------------------------
// Locked-mode restart (plan growth)
// ----------------------------------------------------------------------

/// Panic payload for Locked-mode plan growth: the attempt touched a lock
/// it does not hold, so the driver must widen the plan and re-acquire.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StmRestart;

/// Unwinds the current Locked-mode attempt for plan growth.
#[cold]
#[inline(never)]
pub(crate) fn restart() -> ! {
    panic::panic_any(StmRestart);
}

/// Runs one Locked-mode attempt, translating [`StmRestart`] unwinds into
/// `None`; real panics propagate (leaving held locks poisoned, matching
/// `ElidableLock::execute`'s panic semantics).
pub(crate) fn catch_restart<R>(f: impl FnOnce() -> R) -> Option<R> {
    match panic::catch_unwind(panic::AssertUnwindSafe(f)) {
        Ok(r) => Some(r),
        Err(payload) => {
            if payload.downcast_ref::<StmRestart>().is_some() {
                None
            } else {
                panic::resume_unwind(payload)
            }
        }
    }
}

/// Installs (once) a panic hook that silences [`StmRestart`] unwinds so
/// plan growth does not spam stderr. Chains the previous hook.
pub(crate) fn install_restart_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<StmRestart>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_is_caught_and_real_panics_pass() {
        install_restart_hook();
        assert_eq!(catch_restart(|| 3), Some(3));
        let r: Option<u64> = catch_restart(|| restart());
        assert_eq!(r, None);
        let real = panic::catch_unwind(|| {
            let _ = catch_restart(|| -> u64 { panic!("real bug") });
        });
        assert!(real.is_err());
    }

    #[test]
    fn tx_error_is_comparable() {
        assert_eq!(TxError::Retry, TxError::Retry);
    }
}
