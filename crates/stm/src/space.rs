//! [`Stm`]: a transaction space and its `atomically` driver.
//!
//! A space owns one [`ElidableLock`] (the *space lock*) guarding every
//! [`TxVar`] and every space-domain structure used through it, plus the
//! software backends shared with participant locks. [`Stm::atomically`]
//! drives one composable transaction down the refined-TLE ladder:
//!
//! 1. **Speculation** — the space lock's fast/slow hardware phase
//!    ([`ElidableLock::try_speculate`]), with participant locks enrolled
//!    by transactional subscription.
//! 2. **Software TM** — attempts on the space's active backend, with
//!    participant presences keeping pessimistic holders quiesced.
//! 3. **Pessimistic** — all discovered locks acquired in ascending
//!    address order; the plan grows by restart when the closure touches a
//!    lock it does not hold.
//!
//! A [`Tx::retry`] outcome at any rung parks the thread on the read-set
//! vars' waiter lists (see `var.rs` for the lost-wakeup argument) and
//! reruns the ladder from the top when woken.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rtle_core::{ElidableLock, ElidableLockBuilder, ElisionPolicy, LockedSection, RetryPolicy, SoftwarePresence};
use rtle_htm::{DynAccess, SwHtmBackend};
use rtle_hytm::{sw_attempt, Norec, SoftwareTm, SwDescriptor, SwPhase};

use crate::tx::{
    catch_restart, flush_locked, flush_via, install_restart_hook, run_participant_hooks, Lock,
    LockedPlan, Mode, Tx, TxError, TxInner, TxResult,
};
use crate::var::{WaitList, Waiter};

/// Software attempts per ladder round before falling back to locks.
const SW_ATTEMPTS: usize = 8;

/// Park timeout backstop: a timed-out waiter revalidates and reruns, so a
/// (hypothetical) lost wakeup costs bounded latency, not a hang.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

/// Counters for the composable-transaction plane. All counters are
/// monotonic statistics read at quiescence or for telemetry — `Relaxed`
/// throughout (per the workspace ordering table in DESIGN.md §3).
#[derive(Debug, Default)]
pub struct StmStats {
    commits_spec: AtomicU64,
    commits_sw: AtomicU64,
    commits_locked: AtomicU64,
    parks: AtomicU64,
    wakes_notified: AtomicU64,
    wakes_timeout: AtomicU64,
    retry_reruns: AtomicU64,
    plan_restarts: AtomicU64,
    wakeups_sent: AtomicU64,
}

/// Point-in-time copy of [`StmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmStatsSnapshot {
    /// Transactions committed in the hardware speculation phase.
    pub commits_spec: u64,
    /// Transactions committed by the software-TM fallback.
    pub commits_sw: u64,
    /// Transactions committed under pessimistic locks.
    pub commits_locked: u64,
    /// Times a retrying transaction actually parked.
    pub parks: u64,
    /// Parks ended by a waker's notification.
    pub wakes_notified: u64,
    /// Parks ended by the timeout backstop.
    pub wakes_timeout: u64,
    /// Retries that skipped parking because a read had already changed.
    pub retry_reruns: u64,
    /// Locked-mode plan-growth restarts.
    pub plan_restarts: u64,
    /// Waiters notified by this space's committing writers.
    pub wakeups_sent: u64,
}

impl StmStatsSnapshot {
    /// Total committed transactions across all three rungs.
    pub fn commits(&self) -> u64 {
        self.commits_spec + self.commits_sw + self.commits_locked
    }
}

impl StmStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits_spec: self.commits_spec.load(Ordering::Relaxed),
            commits_sw: self.commits_sw.load(Ordering::Relaxed),
            commits_locked: self.commits_locked.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            wakes_notified: self.wakes_notified.load(Ordering::Relaxed),
            wakes_timeout: self.wakes_timeout.load(Ordering::Relaxed),
            retry_reruns: self.retry_reruns.load(Ordering::Relaxed),
            plan_restarts: self.plan_restarts.load(Ordering::Relaxed),
            wakeups_sent: self.wakeups_sent.load(Ordering::Relaxed),
        }
    }
}

/// Which rung committed (internal bookkeeping).
#[derive(Clone, Copy)]
enum Rung {
    Spec,
    Sw,
    Locked,
}

/// Builder for a transaction space.
pub struct StmBuilder {
    policy: ElisionPolicy,
    retry: RetryPolicy,
    backends: Vec<Arc<dyn SoftwareTm>>,
}

impl Default for StmBuilder {
    fn default() -> Self {
        StmBuilder {
            // FG-TLE by default: the space lock guards *all* vars and
            // space structures, so holder/speculation coexistence is what
            // keeps unrelated transactions parallel during pessimistic
            // episodes.
            policy: ElisionPolicy::FgTle { orecs: 128 },
            retry: RetryPolicy::default(),
            backends: vec![Arc::new(Norec::new())],
        }
    }
}

impl StmBuilder {
    /// Elision policy for the space lock (default: FG-TLE, 128 orecs).
    pub fn policy(mut self, policy: ElisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Retry policy for the space lock's speculative phase.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the software backends (default: one shared NOrec). The
    /// first registered backend is favoured by the heatmap selection; an
    /// empty list disables the software rung entirely.
    pub fn software_backends(mut self, backends: Vec<Arc<dyn SoftwareTm>>) -> Self {
        self.backends = backends;
        self
    }

    /// Builds the space.
    pub fn build(self) -> Stm {
        let mut b = ElidableLock::builder().policy(self.policy).retry(self.retry);
        for tm in &self.backends {
            b = b.with_software_backend(Arc::clone(tm));
        }
        Stm {
            lock: b.build(),
            backends: self.backends,
            stats: StmStats::default(),
        }
    }
}

/// A transaction space: the front door for composable transactions.
#[derive(Debug)]
pub struct Stm {
    lock: Lock,
    backends: Vec<Arc<dyn SoftwareTm>>,
    stats: StmStats,
}

impl Default for Stm {
    fn default() -> Self {
        Stm::new()
    }
}

impl Stm {
    /// A space with the default configuration (FG-TLE spec phase, one
    /// shared NOrec software backend).
    pub fn new() -> Self {
        Stm::builder().build()
    }

    /// Starts building a customized space.
    pub fn builder() -> StmBuilder {
        StmBuilder::default()
    }

    /// The space lock (telemetry: its [`rtle_core::ExecStats`] show the
    /// spec/software/pessimistic mix of the space's own phase).
    pub fn lock(&self) -> &Lock {
        &self.lock
    }

    /// The composable-transaction counters.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// A lock builder pre-loaded with this space's software backends
    /// (shared `Arc`s). Participant locks — e.g. the per-shard locks of a
    /// `ShardedTxMap` built via `with_builder` — **must** be constructed
    /// from this, so the space's software rung validates against the same
    /// backend the participants' hardware commits publish to.
    pub fn lock_builder(&self) -> ElidableLockBuilder<SwHtmBackend> {
        let mut b = ElidableLock::builder();
        for tm in &self.backends {
            b = b.with_software_backend(Arc::clone(tm));
        }
        b
    }

    pub(crate) fn lock_addr(&self) -> usize {
        &self.lock as *const Lock as usize
    }

    /// Runs `f` as one composable transaction: every read and write in
    /// the closure commits atomically — across [`crate::TxVar`]s,
    /// space-domain structures, and enrolled sharded-map participants —
    /// or not at all. Blocks (without spinning) when `f` returns
    /// [`TxError::Retry`], until a read-set var changes.
    ///
    /// The closure may run any number of times and must be side-effect
    /// free outside its transactional accesses.
    pub fn atomically<'env, R>(&'env self, f: impl Fn(&Tx<'env, '_>) -> TxResult<R>) -> R {
        install_restart_hook();
        let inner: RefCell<TxInner<'env>> = RefCell::new(TxInner::new());
        // Participant locks discovered in failed attempts seed the
        // pessimistic plan, so the Locked rung usually acquires the full
        // set on its first try instead of growing lock by lock.
        let mut known: Vec<&'env Lock> = Vec::new();

        loop {
            // ---- Rung 1: hardware speculation --------------------------
            let spec = self.lock.try_speculate(|ctx| {
                inner.borrow_mut().reset();
                let tx = Tx::new(self, Mode::Spec(ctx), &inner);
                let r = f(&tx);
                if r.is_ok() {
                    let logs = inner.borrow();
                    flush_via(&logs, ctx);
                    run_participant_hooks(&logs);
                }
                r
            });
            match spec {
                Some(Ok(v)) => {
                    self.finish(Rung::Spec, &inner);
                    return v;
                }
                Some(Err(TxError::Retry)) => {
                    self.park(&inner);
                    continue;
                }
                None => self.merge_known(&mut known, &inner),
            }

            // ---- Rung 2: software TM -----------------------------------
            if let Some(committed) = self.software_rung(&f, &inner, &mut known) {
                match committed {
                    Ok(v) => {
                        self.finish(Rung::Sw, &inner);
                        return v;
                    }
                    Err(TxError::Retry) => {
                        self.park(&inner);
                        continue;
                    }
                }
            }

            // ---- Rung 3: ordered pessimistic locks ---------------------
            match self.locked_rung(&f, &inner, &mut known) {
                Ok(v) => {
                    self.finish(Rung::Locked, &inner);
                    return v;
                }
                Err(TxError::Retry) => {
                    self.park(&inner);
                    continue;
                }
            }
        }
    }

    /// One round of software-TM attempts. `Some(outcome)` when an attempt
    /// committed (possibly read-only with a retry request); `None` when
    /// the rung is exhausted or no backend is installed.
    fn software_rung<'env, R>(
        &'env self,
        f: &impl Fn(&Tx<'env, '_>) -> TxResult<R>,
        inner: &RefCell<TxInner<'env>>,
        known: &mut Vec<&'env Lock>,
    ) -> Option<TxResult<R>> {
        let tm = self.lock.selected_software_backend()?;
        let tm_ref: &dyn SoftwareTm = tm.as_ref();
        let _phase = SwPhase::enter(tm_ref);
        let desc = RefCell::new(SwDescriptor::default());
        let presences: RefCell<Vec<SoftwarePresence<'env>>> = RefCell::new(Vec::new());
        for _ in 0..SW_ATTEMPTS {
            // Presence on the space lock itself first. Blocking here is
            // safe — this thread holds no other presences or locks yet.
            loop {
                while self.lock.is_held() {
                    std::hint::spin_loop();
                }
                if let Some(p) = self.lock.try_software_presence() {
                    presences.borrow_mut().push(p);
                    break;
                }
            }
            let outcome = sw_attempt(tm_ref, &desc, |tmctx| {
                inner.borrow_mut().reset();
                let tx = Tx::new(
                    self,
                    Mode::Sw {
                        acc: tmctx,
                        tm: &tm,
                        presences: &presences,
                    },
                    inner,
                );
                let r = f(&tx);
                if r.is_ok() {
                    flush_via(&inner.borrow(), tmctx);
                }
                r
            });
            // The attempt (and, on success, its backend commit) is over:
            // release all presences before deciding what to do next.
            presences.borrow_mut().clear();
            match outcome {
                Some(done) => return Some(done),
                None => self.merge_known(known, inner),
            }
        }
        None
    }

    /// The pessimistic rung: acquire the known plan in ascending lock
    /// address order, growing it via restarts until the closure runs to
    /// completion. Always commits (or retries) eventually — the plan is
    /// bounded by the locks the closure can touch.
    fn locked_rung<'env, R>(
        &'env self,
        f: &impl Fn(&Tx<'env, '_>) -> TxResult<R>,
        inner: &RefCell<TxInner<'env>>,
        known: &mut Vec<&'env Lock>,
    ) -> TxResult<R> {
        let mut plan: Vec<&'env Lock> = Vec::with_capacity(known.len() + 1);
        plan.push(&self.lock);
        plan.extend(known.iter().copied());
        sort_plan(&mut plan);
        loop {
            let sections: Vec<LockedSection<'env, SwHtmBackend>> =
                plan.iter().map(|l| l.lock_section()).collect();
            let locked = LockedPlan {
                entries: plan
                    .iter()
                    .zip(&sections)
                    .map(|(l, s)| {
                        (
                            *l as *const Lock as usize,
                            s.ctx() as &dyn DynAccess,
                        )
                    })
                    .collect(),
            };
            let attempt = catch_restart(|| {
                inner.borrow_mut().reset();
                let tx = Tx::new(self, Mode::Locked(&locked), inner);
                f(&tx)
            });
            match attempt {
                Some(done) => {
                    if done.is_ok() {
                        flush_locked(&inner.borrow(), &locked);
                    }
                    drop(locked);
                    drop(sections); // releases the locks (writes visible)
                    return done;
                }
                None => {
                    StmStats::bump(&self.stats.plan_restarts);
                    let missing = inner
                        .borrow_mut()
                        .missing
                        .take()
                        .expect("restart without a missing lock");
                    drop(locked);
                    drop(sections);
                    plan.push(missing);
                    sort_plan(&mut plan);
                    if !known.iter().any(|k| std::ptr::eq(*k, missing)) {
                        known.push(missing);
                    }
                }
            }
        }
    }

    /// Post-commit bookkeeping: count the commit and wake the waiter list
    /// of every [`crate::TxVar`] the transaction wrote. Runs strictly
    /// after the writes are visible (post HTM commit / backend commit /
    /// lock release).
    fn finish(&self, rung: Rung, inner: &RefCell<TxInner<'_>>) {
        StmStats::bump(match rung {
            Rung::Spec => &self.stats.commits_spec,
            Rung::Sw => &self.stats.commits_sw,
            Rung::Locked => &self.stats.commits_locked,
        });
        let logs = inner.borrow();
        let mut seen: Vec<*const WaitList> = Vec::new();
        for w in &logs.writes {
            if let Some(wl) = w.waiters {
                if !seen.contains(&wl) {
                    seen.push(wl);
                }
            }
        }
        for wl in seen {
            // SAFETY: the list belongs to a `&'env TxVar` that outlives
            // this `atomically` call (enforced by `Tx::write`'s bound).
            // lockcheck: waiter lists are mutex-guarded internally; the
            // committed values this wake publishes went through the
            // rung's own commit protocol before finish() runs.
            let woken = unsafe { &*wl }.wake_all();
            self.stats
                .wakeups_sent
                .fetch_add(woken as u64, Ordering::Relaxed);
        }
    }

    /// Blocks until some read-set var changes: register on every read
    /// var's waiter list, revalidate the logged reads, park. See `var.rs`
    /// for why this ordering has no lost wakeups.
    fn park(&self, inner: &RefCell<TxInner<'_>>) {
        let logs = inner.borrow();
        let mut lists: Vec<*const WaitList> = Vec::new();
        for r in &logs.reads {
            if let Some(wl) = r.waiters {
                if !lists.contains(&wl) {
                    lists.push(wl);
                }
            }
        }
        assert!(
            !lists.is_empty(),
            "retry would block forever: the transaction read no TxVars, so \
             nothing can wake it (only TxVar reads register wakeups)"
        );
        let waiter = Arc::new(Waiter::new());
        for wl in &lists {
            // SAFETY: lists belong to `&'env TxVar`s outliving this call.
            // lockcheck: waiter lists are mutex-guarded internally; the
            // deref only reconstructs the reference.
            unsafe { &**wl }.register(&waiter);
        }
        // Registered first, *then* validate: a writer committing after
        // this check must see our registration.
        let changed = logs
            .reads
            .iter()
            // SAFETY: read-set cells outlive the atomically call.
            // lockcheck: deliberately racy revalidation read — a stale
            // value is caught by the rerun's own transactional read, and
            // TxCell's internal Acquire floor orders the load itself.
            .any(|r| unsafe { (*r.cell).read_plain() } != r.value);
        if changed {
            StmStats::bump(&self.stats.retry_reruns);
            return;
        }
        StmStats::bump(&self.stats.parks);
        if waiter.park(PARK_TIMEOUT) {
            StmStats::bump(&self.stats.wakes_notified);
        } else {
            StmStats::bump(&self.stats.wakes_timeout);
        }
    }

    /// Remembers participant locks enrolled by a failed attempt, seeding
    /// the pessimistic plan.
    fn merge_known<'env>(&self, known: &mut Vec<&'env Lock>, inner: &RefCell<TxInner<'env>>) {
        let logs = inner.borrow();
        for l in &logs.enrolled {
            if !known.iter().any(|k| std::ptr::eq(*k, *l)) {
                known.push(l);
            }
        }
    }
}

/// Ascending raw-address order — the global acquisition order shared with
/// `rtle-shard`'s cross-shard transfers (shards sort by index, and shard
/// locks live in one allocation, so index order *is* address order).
fn sort_plan(plan: &mut Vec<&Lock>) {
    plan.sort_by_key(|l| *l as *const Lock as usize);
    plan.dedup_by(|a, b| std::ptr::eq(*a, *b));
}

/// The process-wide default space backing the free [`crate::atomically`].
pub fn global() -> &'static Stm {
    static GLOBAL: OnceLock<Stm> = OnceLock::new();
    GLOBAL.get_or_init(Stm::new)
}
