#![warn(missing_docs)]
//! # rtle-stm: composable transactions over the refined-TLE stack
//!
//! STM-Haskell's composition operators — `atomically`, `retry`,
//! `orElse` (Harris, Marlow, Peyton Jones, Herlihy; PPoPP 2005) — layered
//! on this workspace's refined transactional lock elision runtime (Dice,
//! Kogan, Lev; PPoPP 2016). One closure can read and write [`TxVar`]s,
//! space-domain structures (`AvlSet`, `TxHashSet`, anything generic over
//! `TxAccess`), and sharded maps with their own per-shard elidable locks —
//! and the whole thing commits all-or-nothing:
//!
//! ```
//! use rtle_stm::{Stm, TxVar};
//!
//! let space = Stm::new();
//! let a = TxVar::new(100u64);
//! let b = TxVar::new(0u64);
//! let moved = space.atomically(|tx| {
//!     let v = tx.read(&a);
//!     tx.write(&a, v - 10);
//!     tx.write(&b, tx.read(&b) + 10);
//!     Ok(v)
//! });
//! assert_eq!(moved, 100);
//! assert_eq!(a.read_plain() + b.read_plain(), 100);
//! ```
//!
//! ## The ladder
//!
//! `atomically` is not "an STM next to the TLE stack" — it *is* the stack,
//! driven one rung at a time (see `space.rs`): hardware speculation with
//! per-participant lock subscription, then the space's software-TM backend
//! with per-participant presence, then pessimistic acquisition of every
//! involved lock in ascending address order. Each rung reuses the exact
//! coexistence machinery `ElidableLock` already implements; the new code
//! is the redo log, the enrollment protocol, and the retry/wakeup plane.
//!
//! ## Blocking and choice
//!
//! [`Tx::retry`] blocks the transaction until some [`TxVar`] it read
//! changes — no spinning; committing writers wake the vars they wrote.
//! [`Tx::or_else`] composes alternatives with first-branch rollback:
//!
//! ```
//! use rtle_stm::{Stm, TxVar, TxError};
//!
//! let space = Stm::new();
//! let fast = TxVar::new(0u64);
//! let slow = TxVar::new(3u64);
//! let got = space.atomically(|tx| {
//!     tx.or_else(
//!         |tx| {
//!             let n = tx.read(&fast);
//!             tx.check(n > 0)?;
//!             tx.write(&fast, n - 1);
//!             Ok("fast")
//!         },
//!         |tx| {
//!             let n = tx.read(&slow);
//!             tx.check(n > 0)?;
//!             tx.write(&slow, n - 1);
//!             Ok("slow")
//!         },
//!     )
//! });
//! assert_eq!(got, "slow");
//! let _ = TxError::Retry;
//! ```
//!
//! ## Scoping rules
//!
//! * All [`TxVar`]s and space-domain structures used through one space
//!   belong to that space (its lock is their domain). Using one var from
//!   two spaces is a data race by construction — don't.
//! * Participant locks (per-shard locks) must share the space's software
//!   backends: build them with [`Stm::lock_builder`].
//! * The free [`atomically`] uses a process-wide default space — fine for
//!   applications; libraries that want isolation create their own
//!   [`Stm`].

pub mod space;
pub mod tx;
pub mod var;

pub use space::{global, Stm, StmBuilder, StmStats, StmStatsSnapshot};
pub use tx::{Tx, TxError, TxResult};
pub use var::TxVar;

/// Runs `f` as one composable transaction on the process-wide default
/// space ([`global`]). See [`Stm::atomically`].
pub fn atomically<'env, R>(f: impl Fn(&Tx<'env, '_>) -> TxResult<R>) -> R {
    global().atomically(f)
}

/// Free-function form of [`Tx::or_else`]: run `a`, and if it retries,
/// roll back its writes and run `b`.
pub fn or_else<'env, 'run, R>(
    tx: &Tx<'env, 'run>,
    a: impl FnOnce(&Tx<'env, 'run>) -> TxResult<R>,
    b: impl FnOnce(&Tx<'env, 'run>) -> TxResult<R>,
) -> TxResult<R> {
    tx.or_else(a, b)
}
