//! `rtle-check` CLI:
//! `rtle-check [--root <path>] [--json <file>] [lint|analyze|model|all]`.
//!
//! * `lint` — run the token-level lint pass over the workspace sources.
//! * `analyze` — run the path-sensitive concurrency passes (lockset,
//!   lock-order, publication, §4 fence) over the whole workspace and
//!   verify the seeded analyzer mutants are caught. With `--json <file>`
//!   the full report is exported through the rtle-obs JSON schema.
//! * `model` — exhaustively check the standard protocol configurations
//!   *and* verify the seeded lazy-subscription mutant is caught.
//! * `all` (default) — everything.
//!
//! Exit code 0 iff everything is clean (and every mutant was detected).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rtle_check::model::{
    explore, explore_tl2, mutant_config, standard_suite, tl2_mutant_config, tl2_suite,
};
use rtle_check::{find_workspace_root, lint, passes};

fn run_lint(root: &Path) -> bool {
    let findings = lint::lint_workspace(root);
    if findings.is_empty() {
        let n = lint::workspace_sources(root).len();
        println!("lint: OK ({n} files, 0 findings)");
        true
    } else {
        for f in &findings {
            println!("lint: {f}");
        }
        println!("lint: FAILED ({} findings)", findings.len());
        false
    }
}

fn run_analyze(root: &Path, json: Option<&Path>) -> bool {
    let report = passes::analyze_workspace(root);
    for f in report.unsuppressed() {
        println!("analyze: {f}");
    }
    for m in &report.mutants {
        println!(
            "analyze: mutant {:<22} [{}] -> {}",
            m.feature,
            m.pass,
            if m.caught {
                format!("CAUGHT ({} findings, as required)", m.findings)
            } else {
                "MISSED — analyzer regression!".to_string()
            }
        );
    }
    let suppressed = report.findings.iter().filter(|f| f.suppressed).count();
    let live = report.unsuppressed().count();
    println!(
        "analyze: {} ({} files, {} fns, {live} findings, {suppressed} suppressed, {} ms)",
        if report.ok() { "OK" } else { "FAILED" },
        report.files,
        report.functions,
        report.elapsed_ms
    );
    if let Some(path) = json {
        let text = report.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("analyze: could not write {}: {e}", path.display());
            return false;
        }
        println!("analyze: report written to {}", path.display());
    }
    report.ok()
}

fn run_model() -> bool {
    let mut ok = true;
    for cfg in standard_suite() {
        let r = explore(&cfg);
        println!(
            "model: {:<24} {:>7} states {:>6} terminals (paths f/s/l: {}/{}/{}) -> {}",
            r.config,
            r.states,
            r.terminals,
            r.fast_commit_terminals,
            r.slow_commit_terminals,
            r.lock_commit_terminals,
            if r.clean() {
                "OK".to_string()
            } else {
                format!("{} VIOLATIONS", r.violation_count)
            }
        );
        for v in &r.violations {
            println!("model:   [{}] {} (schedule {:?})", v.kind, v.detail, v.schedule);
        }
        ok &= r.clean();
    }

    // The TL2 machine: same explorer discipline, same oracle, over the
    // software-TM backend's safe configurations.
    for cfg in tl2_suite() {
        let r = explore_tl2(&cfg);
        println!(
            "model: {:<24} {:>7} states {:>6} terminals (paths ro/wr/atomic: {}/{}/{}) -> {}",
            r.config,
            r.states,
            r.terminals,
            r.fast_commit_terminals,
            r.slow_commit_terminals,
            r.lock_commit_terminals,
            if r.clean() {
                "OK".to_string()
            } else {
                format!("{} VIOLATIONS", r.violation_count)
            }
        );
        for v in &r.violations {
            println!("model:   [{}] {} (schedule {:?})", v.kind, v.detail, v.schedule);
        }
        ok &= r.clean();
    }

    // The oracles' own regression tests: both seeded mutants must be
    // *caught* — the unsafe-lazy-subscription zombie and the TL2
    // skipped-revalidation stale read.
    for mutant in [explore(&mutant_config()), explore_tl2(&tl2_mutant_config())] {
        let caught = mutant
            .violations
            .iter()
            .any(|v| v.kind == "non-serializable");
        println!(
            "model: {:<24} {:>7} states {:>6} terminals -> {}",
            mutant.config,
            mutant.states,
            mutant.terminals,
            if caught {
                format!("MUTANT CAUGHT ({} violations, as required)", mutant.violation_count)
            } else {
                "MUTANT MISSED — oracle regression!".to_string()
            }
        );
        if let Some(v) = mutant.violations.first() {
            println!("model:   witness: {} (schedule {:?})", v.detail, v.schedule);
        }
        ok &= caught;
    }
    ok
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut mode = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" | "--json" => {
                let Some(v) = args.next() else {
                    eprintln!("rtle-check: {a} requires a path argument");
                    return ExitCode::from(2);
                };
                if a == "--root" {
                    root = Some(PathBuf::from(v));
                } else {
                    json = Some(PathBuf::from(v));
                }
            }
            "lint" | "analyze" | "model" | "all" => mode = a,
            other => {
                eprintln!(
                    "usage: rtle-check [--root <path>] [--json <file>] \
                     [lint|analyze|model|all] (got {other:?})"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
            .or_else(|| find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))))
    });

    let mut ok = true;
    if mode == "lint" || mode == "all" {
        match &root {
            Some(r) => ok &= run_lint(r),
            None => {
                eprintln!("rtle-check: could not locate the workspace root (use --root)");
                ok = false;
            }
        }
    }
    if mode == "analyze" || mode == "all" {
        match &root {
            Some(r) => ok &= run_analyze(r, json.as_deref()),
            None => {
                eprintln!("rtle-check: could not locate the workspace root (use --root)");
                ok = false;
            }
        }
    }
    if mode == "model" || mode == "all" {
        ok &= run_model();
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
