//! A hand-rolled Rust source scanner: no external parser, just enough
//! lexing to make line/token-level lint rules reliable.
//!
//! Per file it produces:
//! * per-physical-line **code** (comments and string/char literal contents
//!   stripped, so rule patterns never match inside text) and **comment**
//!   text (so annotation rules can look for `// SAFETY:` / `// ordering:`),
//! * a `#[cfg(test)]`-region marking (brace-matched), so production-only
//!   rules skip test code,
//! * **logical statements**: physical lines joined while parentheses or
//!   square brackets are open, or while the next line continues a method
//!   chain (leading `.`), with the brace depth at statement start recorded
//!   for scope-limited rules (e.g. "a fence must follow within the same
//!   function").

/// One physical line after lexing.
#[derive(Debug)]
pub struct LineInfo {
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// Comment text (everything after `//`, plus block-comment content).
    pub comment: String,
    /// Inside a `#[cfg(test)]` item's braces.
    pub in_test: bool,
}

/// One logical statement (one or more joined physical lines).
#[derive(Debug)]
pub struct Stmt {
    /// 1-based first physical line.
    pub line: usize,
    /// Joined, stripped code.
    pub code: String,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Brace depth at the start of the statement.
    pub depth: usize,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Physical lines, index 0 = line 1.
    pub lines: Vec<LineInfo>,
    /// Logical statements in order.
    pub stmts: Vec<Stmt>,
}

/// Multi-line lexer state.
enum Mode {
    Normal,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Strips one line under the running `mode`; returns (code, comment).
fn strip_line(line: &str, mode: &mut Mode) -> (String, String) {
    let b: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < b.len() {
        match mode {
            Mode::BlockComment(depth) => {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    if *depth == 0 {
                        *mode = Mode::Normal;
                    }
                    i += 2;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    i += 2;
                } else {
                    comment.push(b[i]);
                    i += 1;
                }
            }
            Mode::Str => {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    code.push('"');
                    *mode = Mode::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b[i] == '"' {
                    let n = *hashes as usize;
                    if b[i + 1..].iter().take(n).filter(|&&c| c == '#').count() == n {
                        code.push('"');
                        *mode = Mode::Normal;
                        i += 1 + n;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Normal => match b[i] {
                '/' if b.get(i + 1) == Some(&'/') => {
                    comment.extend(&b[i + 2..]);
                    i = b.len();
                }
                '/' if b.get(i + 1) == Some(&'*') => {
                    *mode = Mode::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    *mode = Mode::Str;
                    i += 1;
                }
                'r' if b.get(i + 1) == Some(&'"')
                    || (b.get(i + 1) == Some(&'#')
                        && {
                            let mut j = i + 1;
                            while b.get(j) == Some(&'#') {
                                j += 1;
                            }
                            b.get(j) == Some(&'"')
                        }) =>
                {
                    // Raw string start: only when `r` is not part of an
                    // identifier (e.g. `for`).
                    let ident_tail = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
                    if ident_tail {
                        code.push('r');
                        i += 1;
                    } else {
                        let mut j = i + 1;
                        let mut hashes = 0;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        code.push('"');
                        *mode = Mode::RawStr(hashes);
                        i = j + 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a literal closes within a
                    // few chars (`'x'`, `'\n'`, `'\u{..}'`).
                    let close = if b.get(i + 1) == Some(&'\\') {
                        b[i + 2..].iter().position(|&c| c == '\'').map(|p| i + 2 + p)
                    } else if b.get(i + 2) == Some(&'\'') {
                        Some(i + 2)
                    } else {
                        None
                    };
                    match close {
                        Some(end) => {
                            code.push_str("' '");
                            i = end + 1;
                        }
                        None => {
                            code.push('\'');
                            i += 1; // lifetime
                        }
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            },
        }
    }
    (code, comment)
}

fn is_test_attr(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("#[cfg(test)]")
        || t.starts_with("#[cfg(all(test")
        || t.starts_with("#[cfg(any(test")
        || t.starts_with("#[test]")
}

impl SourceFile {
    /// Lexes `text` into lines and logical statements.
    pub fn parse(text: &str) -> SourceFile {
        let mut mode = Mode::Normal;
        let mut raw: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            raw.push(strip_line(line, &mut mode));
        }

        // Pass 2: mark #[cfg(test)] regions by brace matching.
        let mut lines = Vec::with_capacity(raw.len());
        let mut depth: i64 = 0;
        let mut pending_attr = false;
        let mut test_until: Option<i64> = None;
        for (code, comment) in raw {
            let mut in_test = test_until.is_some();
            if test_until.is_none() && is_test_attr(&code) {
                pending_attr = true;
                in_test = true;
            }
            let mut line_depth = depth;
            let mut opened_at: Option<i64> = None;
            for c in code.chars() {
                match c {
                    '{' => {
                        if opened_at.is_none() {
                            opened_at = Some(line_depth);
                        }
                        line_depth += 1;
                    }
                    '}' => line_depth -= 1,
                    _ => {}
                }
            }
            if pending_attr {
                in_test = true;
                if let Some(d) = opened_at {
                    test_until = Some(d);
                    pending_attr = false;
                } else if code.trim_end().ends_with(';') {
                    pending_attr = false; // braceless item, e.g. a `use`
                }
            }
            if let Some(d) = test_until {
                in_test = true;
                if line_depth <= d {
                    test_until = None;
                }
            }
            depth = line_depth;
            lines.push(LineInfo {
                code,
                comment,
                in_test,
            });
        }

        // Pass 3: logical statements.
        let mut stmts = Vec::new();
        let mut depth_before: i64 = 0;
        let mut i = 0;
        while i < lines.len() {
            if lines[i].code.trim().is_empty() {
                depth_before += brace_delta(&lines[i].code);
                i += 1;
                continue;
            }
            let start = i;
            let start_depth = depth_before.max(0) as usize;
            let in_test = lines[i].in_test;
            let mut code = String::new();
            let mut paren: i64 = 0;
            loop {
                let lc = &lines[i].code;
                if !code.is_empty() {
                    code.push(' ');
                }
                code.push_str(lc.trim());
                depth_before += brace_delta(lc);
                for c in lc.chars() {
                    match c {
                        '(' | '[' => paren += 1,
                        ')' | ']' => paren -= 1,
                        _ => {}
                    }
                }
                i += 1;
                if i >= lines.len() {
                    break;
                }
                // Keep joining while a bracket group is open or the next
                // line continues a method chain.
                let next = lines[i].code.trim();
                if paren > 0 || next.starts_with('.') {
                    continue;
                }
                break;
            }
            stmts.push(Stmt {
                line: start + 1,
                code,
                in_test,
                depth: start_depth,
            });
        }
        SourceFile { lines, stmts }
    }

    /// True if a comment containing `needle` appears on `line` (1-based),
    /// within `back` lines above it, or anywhere in the contiguous
    /// comment/attribute block immediately above it (so multi-line SAFETY
    /// comments of any length count).
    pub fn has_annotation(&self, line: usize, back: usize, needle: &str) -> bool {
        let idx = line.saturating_sub(1).min(self.lines.len() - 1);
        let from = idx.saturating_sub(back);
        if self.lines[from..=idx].iter().any(|l| l.comment.contains(needle)) {
            return true;
        }
        // Walk the comment/attribute block above: lines with no code, or
        // pure attribute lines, up to a sanity cap.
        let mut i = idx;
        let mut budget = 32;
        while i > 0 && budget > 0 {
            i -= 1;
            budget -= 1;
            let l = &self.lines[i];
            let code = l.code.trim();
            if code.is_empty() || code.starts_with("#[") {
                if l.comment.contains(needle) {
                    return true;
                }
                continue;
            }
            break;
        }
        false
    }
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}
