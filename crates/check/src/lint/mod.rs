//! The static lint pass: walks the workspace sources and enforces the
//! concurrency-invariant table plus style rules that guard the hot paths.
//!
//! Rule families:
//!
//! 1. **Ordering table** — every atomic-ordering use inside
//!    [`rules::ORDERING_SCOPE`] must match a row of
//!    [`rules::ORDERING_RULES`] or carry a `// ordering: <reason>`
//!    annotation within three lines. Covered-but-nonconforming uses are
//!    violations; uncovered, unannotated uses are "unaudited" findings.
//! 2. **SAFETY comments** — every `unsafe` block or `unsafe impl` outside
//!    test code needs a `// SAFETY:` comment within three lines above.
//! 3. **Hot-path hygiene** — `unwrap`/`panic!` are banned outside tests in
//!    [`rules::HOT_PATH_FILES`].
//!
//! The §4 orec-fence discipline used to be rule family 2 here, enforced
//! by textual adjacency; it is now the path-sensitive `fence` pass in
//! [`crate::passes`] (see the migration note in [`rules`]).

pub mod rules;
pub mod source;

use std::fmt;
use std::path::{Path, PathBuf};

use rules::{ordering_uses, rule_for, violation_msg, AtomicOp};
use source::SourceFile;

/// One lint finding.
#[derive(Debug)]
pub struct Finding {
    /// File the finding is in (workspace-relative when possible).
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Rule family identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The source files the lint pass covers: every crate's `src/`, the root
/// facade's `src/`, and the repository `tests/` and `examples/` trees are
/// *not* all equal — only `src/` trees are linted (tests/examples are
/// exercised by the model checker and the compiler).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    files
}

fn rel<'a>(path: &'a Path, root: &Path) -> &'a Path {
    path.strip_prefix(root).unwrap_or(path)
}

/// Lints one parsed file; appends findings.
pub fn lint_file(root: &Path, path: &Path, sf: &SourceFile, findings: &mut Vec<Finding>) {
    let rp = rel(path, root).to_path_buf();
    let path_str = path.to_string_lossy().replace('\\', "/");

    // 1. Ordering table.
    if rules::ORDERING_SCOPE.iter().any(|s| path_str.contains(s)) {
        for stmt in sf.stmts.iter().filter(|s| !s.in_test) {
            for u in ordering_uses(stmt) {
                match rule_for(&path_str, &u.receiver, u.op) {
                    Some(rule) => {
                        if !u.orderings.iter().all(|o| rule.allowed.contains(&o.as_str())) {
                            findings.push(Finding {
                                path: rp.clone(),
                                line: u.line,
                                rule: "ordering-table",
                                msg: violation_msg(rule, &u),
                            });
                        }
                    }
                    None => {
                        if !sf.has_annotation(u.line, 3, "ordering:") {
                            findings.push(Finding {
                                path: rp.clone(),
                                line: u.line,
                                rule: "ordering-unaudited",
                                msg: format!(
                                    "atomic {} on `{}` with Ordering::{} has no invariant-table row and no `// ordering:` annotation",
                                    match u.op {
                                        AtomicOp::Fence => "fence",
                                        _ => "op",
                                    },
                                    if u.receiver.is_empty() { "<fence>" } else { &u.receiver },
                                    u.orderings.join("/")
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // 2. SAFETY comments on unsafe blocks / impls.
    for (idx, li) in sf.lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        let code = &li.code;
        let mut from = 0;
        while let Some(rel_at) = code[from..].find("unsafe") {
            let at = from + rel_at;
            from = at + "unsafe".len();
            // Whole-word check.
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = code[at + "unsafe".len()..].trim_start();
            if !before_ok {
                continue;
            }
            let needs_comment = if after.starts_with('{') || after.starts_with("impl") {
                true
            } else if after.is_empty() {
                // `unsafe` at end of line: peek the next code line.
                sf.lines
                    .get(idx + 1)
                    .map(|l| l.code.trim_start().starts_with('{'))
                    .unwrap_or(false)
            } else {
                false // `unsafe fn` etc.: a declaration, not a block
            };
            if needs_comment && !sf.has_annotation(idx + 1, 3, "SAFETY:") {
                findings.push(Finding {
                    path: rp.clone(),
                    line: idx + 1,
                    rule: "unsafe-safety-comment",
                    msg: "unsafe block/impl without a `// SAFETY:` comment within 3 lines".into(),
                });
            }
        }
    }

    // 3. Hot-path hygiene.
    if rules::HOT_PATH_FILES.iter().any(|f| path_str.ends_with(f)) {
        for (idx, li) in sf.lines.iter().enumerate() {
            if li.in_test {
                continue;
            }
            for pat in [".unwrap(", "panic!("] {
                if li.code.contains(pat) {
                    findings.push(Finding {
                        path: rp.clone(),
                        line: idx + 1,
                        rule: "hot-path-hygiene",
                        msg: format!(
                            "`{pat}` is banned in hot-path modules (use expect with an invariant message, or restructure)"
                        ),
                    });
                }
            }
        }
    }
}

/// Lints the whole workspace rooted at `root`. Returns all findings.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in workspace_sources(root) {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let sf = SourceFile::parse(&text);
        lint_file(root, &path, &sf, &mut findings);
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(fake_path: &str, code: &str) -> Vec<Finding> {
        let sf = SourceFile::parse(code);
        let mut out = Vec::new();
        lint_file(Path::new("/ws"), Path::new(fake_path), &sf, &mut out);
        out
    }

    #[test]
    fn conforming_cell_load_passes() {
        let f = lint_str(
            "/ws/crates/htm/src/cell.rs",
            "impl X { fn read(&self) { self.raw.load(Ordering::Acquire); } }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_cell_load_flagged() {
        let f = lint_str(
            "/ws/crates/htm/src/cell.rs",
            "impl X { fn read(&self) { self.raw.load(Ordering::Relaxed); } }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-table");
    }

    #[test]
    fn unaudited_atomic_needs_annotation() {
        let src = "fn f() { MYSTERY.store(1, Ordering::Relaxed); }";
        let f = lint_str("/ws/crates/core/src/other.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-unaudited");

        let annotated =
            "fn f() {\n    // ordering: test-only knob, no sync role\n    MYSTERY.store(1, Ordering::Relaxed);\n}";
        let f = lint_str("/ws/crates/core/src/other.rs", annotated);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { X.load(Ordering::SeqCst); }\n}\n";
        let f = lint_str("/ws/crates/core/src/other.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let f = lint_str("/ws/crates/htm/src/x.rs", "fn f() { unsafe { foo(); } }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-safety-comment");

        let ok = "fn f() {\n    // SAFETY: foo is sound here because reasons.\n    unsafe { foo(); }\n}";
        assert!(lint_str("/ws/crates/htm/src/x.rs", ok).is_empty());

        // `unsafe fn` declarations are not blocks.
        assert!(lint_str("/ws/crates/htm/src/x.rs", "pub unsafe fn g() {}").is_empty());
    }

    #[test]
    fn hot_path_unwrap_flagged() {
        let f = lint_str(
            "/ws/crates/core/src/elidable.rs",
            "fn f() { x.unwrap(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-path-hygiene");
        // expect() is allowed.
        assert!(lint_str(
            "/ws/crates/core/src/elidable.rs",
            "fn f() { x.expect(\"invariant\"); }"
        )
        .is_empty());
    }
}
