//! The declarative concurrency-invariant table and the rule engine.
//!
//! Every atomic-ordering use inside [`ORDERING_SCOPE`] (`crates/core`,
//! `crates/htm`, `crates/hytm`, `crates/shard`, and the live-telemetry
//! files of `crates/obs`) must either
//! match a row of [`ORDERING_RULES`] (file + receiver + operation →
//! allowed orderings) or carry a nearby `// ordering: <reason>` annotation;
//! anything else is a finding. The table is the reviewable artifact: adding
//! a new atomic means adding a row (or an annotation) stating its contract.
//!
//! # Migration note: retired textual rules
//!
//! The lint used to carry an `orec-fence` rule family that checked §4's
//! store-load fence by *textual adjacency* — "an `orec.write(` statement
//! must be followed by a `fence(` statement before brace depth drops".
//! That rule (and the statement-joining heuristics it leaned on) is
//! retired: the `fence` pass in [`crate::passes`] now proves the same
//! invariant path-sensitively on the CFG — the fence must come before
//! any store-class event on *every* path from the stamp, which the
//! textual rule could neither express (branches) nor check precisely
//! (any `fence(` text counted, at any ordering). Keep new flow-sensitive
//! invariants in `passes`; this table stays for per-site ordering
//! contracts, which are genuinely local.

use super::source::Stmt;

/// Atomic operations the scanner recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// `.load(ordering)`
    Load,
    /// `.store(v, ordering)`
    Store,
    /// `.swap(v, ordering)`
    Swap,
    /// `.fetch_add(v, ordering)` / `.fetch_sub(v, ordering)`
    FetchAdd,
    /// `.compare_exchange*(cur, new, success, failure)` — both orderings
    /// are checked against the allowed set.
    CompareExchange,
    /// Free `fence(ordering)`.
    Fence,
}

impl AtomicOp {
    fn name(self) -> &'static str {
        match self {
            AtomicOp::Load => "load",
            AtomicOp::Store => "store",
            AtomicOp::Swap => "swap",
            AtomicOp::FetchAdd => "fetch_add/fetch_sub",
            AtomicOp::CompareExchange => "compare_exchange",
            AtomicOp::Fence => "fence",
        }
    }
}

/// One row of the invariant table.
pub struct OrderingRule {
    /// Path suffix the rule applies to (e.g. `core/src/stats.rs`).
    pub file_suffix: &'static str,
    /// Receiver name (last path segment, call/index suffixes stripped);
    /// `"*"` matches any receiver.
    pub receiver: &'static str,
    /// Operation the rule covers.
    pub op: AtomicOp,
    /// Orderings allowed at this site.
    pub allowed: &'static [&'static str],
    /// The contract (shown when the rule is violated).
    pub why: &'static str,
}

/// The memory-ordering invariant table for the crates in
/// [`ORDERING_SCOPE`]. Mirrored in DESIGN.md — update both together.
pub const ORDERING_RULES: &[OrderingRule] = &[
    // ---- rtle-htm: TxCell is the protocol choke point -------------------
    // Every TxCell read is a potential lock/write_flag/epoch/orec
    // subscription; every TxCell write is a potential publication of
    // protocol state. Acquire/Release floors are therefore non-negotiable
    // (write_flag stores, epoch bumps and lock hand-offs all route through
    // here).
    OrderingRule {
        file_suffix: "htm/src/cell.rs",
        receiver: "raw",
        op: AtomicOp::Load,
        allowed: &["Acquire", "SeqCst"],
        why: "TxCell loads subscribe protocol state (lock word, write_flag, epoch, orecs); Acquire is the floor",
    },
    OrderingRule {
        file_suffix: "htm/src/cell.rs",
        receiver: "raw",
        op: AtomicOp::Store,
        allowed: &["Release", "SeqCst"],
        why: "TxCell stores publish protocol state; Release is the floor",
    },
    // Stripe version words + the global clock implement TL2-style
    // publication: no Relaxed anywhere in the file.
    OrderingRule {
        file_suffix: "htm/src/stripe.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Acquire", "SeqCst"],
        why: "stripe versions / global clock are validation reads; Acquire is the floor",
    },
    OrderingRule {
        file_suffix: "htm/src/stripe.rs",
        receiver: "*",
        op: AtomicOp::Store,
        allowed: &["Release", "SeqCst"],
        why: "stripe unlock publishes the new version; Release is the floor",
    },
    OrderingRule {
        file_suffix: "htm/src/stripe.rs",
        receiver: "*",
        op: AtomicOp::CompareExchange,
        allowed: &["Acquire", "AcqRel", "SeqCst"],
        why: "stripe lock acquisition; both success and failure orderings must be at least Acquire",
    },
    OrderingRule {
        file_suffix: "htm/src/stripe.rs",
        receiver: "CLOCK",
        op: AtomicOp::FetchAdd,
        allowed: &["AcqRel", "SeqCst"],
        why: "global-clock bump orders commit timestamps; AcqRel is the floor",
    },
    // Commit-time strong-atomicity publication in the software HTM.
    OrderingRule {
        file_suffix: "htm/src/swhtm.rs",
        receiver: "cell",
        op: AtomicOp::Store,
        allowed: &["Release", "SeqCst"],
        why: "redo-log write-back publishes committed values; Release is the floor",
    },
    OrderingRule {
        file_suffix: "htm/src/swhtm.rs",
        receiver: "cell",
        op: AtomicOp::Load,
        allowed: &["Acquire", "SeqCst"],
        why: "strong-atomicity read of a possibly-concurrently-committed cell; Acquire is the floor",
    },
    // Statistics and configuration: counters with no synchronization role.
    OrderingRule {
        file_suffix: "htm/src/stats.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "statistics counters: monotonic, advisory, no ordering role",
    },
    OrderingRule {
        file_suffix: "htm/src/stats.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "statistics counters: monotonic, advisory, no ordering role",
    },
    OrderingRule {
        file_suffix: "htm/src/config.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "capacity/chaos knobs: values are self-contained, no ordering role",
    },
    OrderingRule {
        file_suffix: "htm/src/config.rs",
        receiver: "*",
        op: AtomicOp::Store,
        allowed: &["Relaxed"],
        why: "capacity/chaos knobs: values are self-contained, no ordering role",
    },
    // (One-off sites — NEXT_TOKEN in htm/descriptor.rs, NEXT_KEY in
    // core/elidable.rs — are audited by in-source `// ordering:`
    // annotations instead of table rows.)
    // ---- rtle-hytm: the TL2 software backend ----------------------------
    // The global version clock is the serialization spine of TL2: every
    // begin samples it and every writer commit bumps it, and the
    // `wv == rv + 2` "nobody else committed" validation shortcut is only
    // sound if those bumps form one total order every thread agrees on —
    // hence SeqCst on both sides, not just AcqRel.
    OrderingRule {
        file_suffix: "hytm/src/tl2.rs",
        receiver: "clock",
        op: AtomicOp::Load,
        allowed: &["SeqCst"],
        why: "TL2 clock sample fixes the transaction's snapshot; must join the single total order of commit bumps",
    },
    OrderingRule {
        file_suffix: "hytm/src/tl2.rs",
        receiver: "clock",
        op: AtomicOp::FetchAdd,
        allowed: &["SeqCst"],
        why: "TL2 clock bump: the wv == rv+2 no-other-writer shortcut needs a total order of bumps; SeqCst",
    },
    // Stripe version-locks: reads validate (pre/post read, commit
    // revalidation), the CAS acquires the lock, stores release it (commit
    // at the new version, rollback at the pre-lock version).
    OrderingRule {
        file_suffix: "hytm/src/tl2.rs",
        receiver: "stripes",
        op: AtomicOp::Load,
        allowed: &["Acquire", "SeqCst"],
        why: "stripe version reads validate against the snapshot; Acquire is the floor",
    },
    OrderingRule {
        file_suffix: "hytm/src/tl2.rs",
        receiver: "stripes",
        op: AtomicOp::Store,
        allowed: &["Release", "SeqCst"],
        why: "stripe release (commit write-back / rollback) publishes the new version; Release is the floor",
    },
    // Wildcard receiver: the only CAS in the file is the stripe-lock
    // acquisition, and the multi-line `&&`-chained call site defeats the
    // scanner's receiver recovery.
    OrderingRule {
        file_suffix: "hytm/src/tl2.rs",
        receiver: "*",
        op: AtomicOp::CompareExchange,
        allowed: &["Acquire", "AcqRel", "SeqCst"],
        why: "stripe lock acquisition; both success and failure orderings must be at least Acquire",
    },
    // Hybrid-TM statistics: same contract as htm/src/stats.rs.
    OrderingRule {
        file_suffix: "hytm/src/stats.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "software-TM statistics counters: monotonic, advisory, no ordering role",
    },
    OrderingRule {
        file_suffix: "hytm/src/stats.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "software-TM statistics counters: monotonic, advisory, no ordering role",
    },
    // ---- rtle-core ------------------------------------------------------
    OrderingRule {
        file_suffix: "core/src/stats.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "per-lock statistics counters: monotonic, advisory",
    },
    OrderingRule {
        file_suffix: "core/src/stats.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "per-lock statistics counters: monotonic, advisory",
    },
    // The adaptive state is written only by the lock holder; the lock's
    // own acquire/release edges order every access.
    OrderingRule {
        file_suffix: "core/src/adaptive.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "holder-only adaptation counters; the elided lock orders all accesses",
    },
    OrderingRule {
        file_suffix: "core/src/adaptive.rs",
        receiver: "*",
        op: AtomicOp::Swap,
        allowed: &["Relaxed"],
        why: "holder-only adaptation counters; the elided lock orders all accesses",
    },
    OrderingRule {
        file_suffix: "core/src/adaptive.rs",
        receiver: "*",
        op: AtomicOp::Store,
        allowed: &["Relaxed"],
        why: "holder-only adaptation counters; the elided lock orders all accesses",
    },
    // The paper's §4 store-load fence after an orec acquisition.
    OrderingRule {
        file_suffix: "core/src/orec.rs",
        receiver: "*",
        op: AtomicOp::Fence,
        allowed: &["SeqCst"],
        why: "the store-load fence after an orec stamp must be full-strength (§4)",
    },
    // Conflict-attribution heatmap (plain, non-transactional atomics).
    // Relaxed is fine: the counters are advisory diagnostics with no
    // synchronization role — no reader makes a protocol decision that
    // requires happens-before with the increment, and exactness of the
    // sum invariant needs only per-counter atomicity, which every
    // ordering provides.
    OrderingRule {
        file_suffix: "core/src/orec.rs",
        receiver: "conflicts",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "heatmap conflict counters: advisory attribution, no synchronization role",
    },
    OrderingRule {
        file_suffix: "core/src/orec.rs",
        receiver: "stamps",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "heatmap holder-acquisition counters: advisory, no synchronization role",
    },
    OrderingRule {
        file_suffix: "core/src/orec.rs",
        receiver: "conflict_epoch",
        op: AtomicOp::Store,
        allowed: &["Relaxed"],
        why: "last-conflict epoch tag: advisory heatmap metadata, no synchronization role",
    },
    OrderingRule {
        file_suffix: "core/src/orec.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "heatmap snapshot loads: advisory counter reads, no synchronization role",
    },
    // ---- rtle-shard -----------------------------------------------------
    // The sharded map adds exactly one atomic of its own: the per-shard
    // `routed` load counter. It is advisory (imbalance metrics only) and
    // plays no part in the cross-shard locking protocol — mutual exclusion
    // and ordering come entirely from each shard's ElidableLock, acquired
    // in ascending shard-index order (deadlock freedom by total order; see
    // DESIGN.md §10).
    OrderingRule {
        file_suffix: "shard/src/sharded.rs",
        receiver: "routed",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "per-shard routing counter: advisory load metric, no synchronization role",
    },
    OrderingRule {
        file_suffix: "shard/src/batch.rs",
        receiver: "routed",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "per-shard routing counter (batch entry point): advisory, no synchronization role",
    },
    OrderingRule {
        file_suffix: "shard/src/obs.rs",
        receiver: "routed",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "routing-counter snapshot read: advisory imbalance metric, no synchronization role",
    },
    // ---- rtle-obs -------------------------------------------------------
    // The windowed collector's only synchronizing atomic is the epoch
    // bump that flips writers onto the other phase buffer: AcqRel so the
    // rotator's subsequent drains are ordered after the flip, and a
    // writer that observed the new epoch publishes into the new phase.
    // Everything else is per-stripe monotonic counters drained by
    // `swap(0)`: stragglers racing a rotation land in whichever phase
    // they read the epoch from and are attributed one window late — by
    // design, never lost — so Relaxed carries no correctness weight.
    OrderingRule {
        file_suffix: "obs/src/window.rs",
        receiver: "epoch",
        op: AtomicOp::FetchAdd,
        allowed: &["AcqRel"],
        why: "window rotation flip: orders the rotator's drains after the epoch bump",
    },
    OrderingRule {
        file_suffix: "obs/src/window.rs",
        receiver: "epoch",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "phase selection / advisory epoch read: one-window-late attribution is tolerated",
    },
    OrderingRule {
        file_suffix: "obs/src/window.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "per-stripe window counters: monotonic telemetry, drained via swap at rotation",
    },
    OrderingRule {
        file_suffix: "obs/src/window.rs",
        receiver: "*",
        op: AtomicOp::Swap,
        allowed: &["Relaxed"],
        why: "rotation drain (swap-to-zero) and window start stamp: single-rotator protocol",
    },
    OrderingRule {
        file_suffix: "obs/src/window.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "window start / length snapshot reads: advisory telemetry, no synchronization role",
    },
    // ---- rtle-obs: live scrape plane ------------------------------------
    // The scrape server's only atomic is its shutdown flag: Release on
    // store / Acquire on load so the accept loop's final iteration sees
    // everything written before shutdown was requested.
    OrderingRule {
        file_suffix: "obs/src/live.rs",
        receiver: "stop",
        op: AtomicOp::Store,
        allowed: &["Release"],
        why: "shutdown request publication: the accept loop must see pre-shutdown writes",
    },
    OrderingRule {
        file_suffix: "obs/src/live.rs",
        receiver: "stop",
        op: AtomicOp::Load,
        allowed: &["Acquire"],
        why: "accept-loop shutdown check: pairs with the Release store in shutdown()",
    },
    // The watchdog's live mirror is a write-rarely/read-racy scrape view:
    // every field is independent advisory telemetry, so Relaxed
    // everywhere — a scrape reading a half-published verdict is tolerated
    // and corrected by the next scrape.
    OrderingRule {
        file_suffix: "obs/src/watchdog.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "live-mirror scrape reads: advisory, racy-by-design telemetry",
    },
    OrderingRule {
        file_suffix: "obs/src/watchdog.rs",
        receiver: "*",
        op: AtomicOp::Store,
        allowed: &["Relaxed"],
        why: "live-mirror publication from the rotator thread: no cross-field ordering contract",
    },
    OrderingRule {
        file_suffix: "obs/src/watchdog.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "live-mirror monotone counters: single-writer rotator, racy readers",
    },
    // ---- rtle-stm: transaction-space statistics -------------------------
    // The composable-transaction space keeps only advisory counters in
    // atomics (rung mix, parks, wakeup accounting). All synchronization —
    // commit publication, waiter registration, park/wake — goes through
    // the underlying ElidableLock protocol and the WaitList mutex, so
    // Relaxed is the only correct ordering here: anything stronger would
    // imply a synchronization role these counters must never grow.
    OrderingRule {
        file_suffix: "stm/src/space.rs",
        receiver: "*",
        op: AtomicOp::Load,
        allowed: &["Relaxed"],
        why: "stm space statistics (rung mix, parks, wakeups): monotonic, advisory, no ordering role",
    },
    OrderingRule {
        file_suffix: "stm/src/space.rs",
        receiver: "*",
        op: AtomicOp::FetchAdd,
        allowed: &["Relaxed"],
        why: "stm space statistics (rung mix, parks, wakeups): monotonic, advisory, no ordering role",
    },
];

/// Hot-path modules where `unwrap`/`panic!` are banned outside tests.
pub const HOT_PATH_FILES: &[&str] = &[
    "core/src/elidable.rs",
    "core/src/orec.rs",
    "htm/src/swhtm.rs",
    "hytm/src/norec.rs",
    "hytm/src/tl2.rs",
    "shard/src/map.rs",
    "shard/src/sharded.rs",
];

/// Files whose atomic-ordering uses must be covered by the table (or
/// annotated).
pub const ORDERING_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/htm/src/",
    "crates/hytm/src/",
    "crates/shard/src/",
    "crates/obs/src/window.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/live.rs",
    "crates/obs/src/watchdog.rs",
    "crates/stm/src/",
];

/// One ordering usage found in a statement.
#[derive(Debug)]
pub struct OrderingUse {
    /// Operation.
    pub op: AtomicOp,
    /// Normalized receiver name (empty for fences).
    pub receiver: String,
    /// The `Ordering::X` names passed (compare-exchange has two).
    pub orderings: Vec<String>,
    /// 1-based line of the statement.
    pub line: usize,
}

const OP_PATTERNS: &[(&str, AtomicOp)] = &[
    (".load(", AtomicOp::Load),
    (".store(", AtomicOp::Store),
    (".swap(", AtomicOp::Swap),
    (".fetch_add(", AtomicOp::FetchAdd),
    (".fetch_sub(", AtomicOp::FetchAdd),
    (".compare_exchange(", AtomicOp::CompareExchange),
    (".compare_exchange_weak(", AtomicOp::CompareExchange),
    ("fence(", AtomicOp::Fence),
];

/// Extracts every atomic-ordering use from one logical statement.
pub fn ordering_uses(stmt: &Stmt) -> Vec<OrderingUse> {
    let code = &stmt.code;
    if code.trim_start().starts_with("use ") {
        return Vec::new();
    }
    let mut uses = Vec::new();
    for &(pat, op) in OP_PATTERNS {
        let mut from = 0;
        while let Some(rel) = code[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            // `fence(` must not be the tail of an identifier or a method
            // (`.fence(` never occurs, but e.g. `my_fence(` should not
            // match) — and the method patterns start with '.', so they are
            // already anchored.
            if op == AtomicOp::Fence {
                if let Some(prev) = code[..at].chars().next_back() {
                    if prev.is_alphanumeric() || prev == '_' || prev == '.' {
                        continue;
                    }
                }
            }
            let args = argument_list(code, at + pat.len() - 1);
            let orderings = extract_orderings(&args);
            if orderings.is_empty() {
                continue; // not an atomic op (e.g. TxCell::store, Vec ops)
            }
            uses.push(OrderingUse {
                op,
                receiver: if op == AtomicOp::Fence {
                    String::new()
                } else {
                    receiver_name(code, at)
                },
                orderings,
                line: stmt.line,
            });
        }
    }
    uses
}

/// Returns the balanced `(...)` argument text starting at `open` (the index
/// of the opening parenthesis).
fn argument_list(code: &str, open: usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    for (bi, c) in code.char_indices() {
        if bi < open {
            continue;
        }
        match c {
            '(' => {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if depth >= 1 {
            out.push(c);
        }
    }
    out
}

/// Pulls `Ordering::X` (and fully qualified variants) names out of an
/// argument list.
fn extract_orderings(args: &str) -> Vec<String> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(rel) = args[from..].find("Ordering::") {
        let at = from + rel + "Ordering::".len();
        let name: String = args[at..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        from = at;
        if !name.is_empty() {
            found.push(name);
        }
    }
    found
}

/// Walks back from the `.` of a method call to recover the receiver
/// expression, then normalizes it to a bare name: trailing call/index
/// groups stripped, last `.`/`::` segment taken, leading `&*(` dropped.
fn receiver_name(code: &str, dot: usize) -> String {
    let chars: Vec<char> = code[..dot].chars().collect();
    let mut i = chars.len();
    // Walk left over balanced groups and identifier characters.
    while i > 0 {
        let c = chars[i - 1];
        match c {
            ')' | ']' | '}' => {
                let (open, close) = match c {
                    ')' => ('(', ')'),
                    ']' => ('[', ']'),
                    _ => ('{', '}'),
                };
                let mut depth = 0;
                while i > 0 {
                    let d = chars[i - 1];
                    if d == close {
                        depth += 1;
                    } else if d == open {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    i -= 1;
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' => i -= 1,
            '*' | '&' => i -= 1,
            _ => break,
        }
    }
    let expr: String = chars[i..].iter().collect();
    normalize_receiver(&expr)
}

fn normalize_receiver(expr: &str) -> String {
    let mut s = expr.trim().to_string();
    loop {
        let t = s.trim().to_string();
        // Unwrap one outer parenthesis group.
        let t = if t.starts_with('(') && t.ends_with(')') {
            t[1..t.len() - 1].to_string()
        } else {
            t
        };
        // Strip trailing call / index groups.
        let t = strip_trailing_group(&t);
        let t = t
            .trim_start_matches(['&', '*', ' '])
            .trim()
            .to_string();
        if t == s {
            break;
        }
        s = t;
    }
    // Last path segment.
    let s = s.rsplit("::").next().unwrap_or(&s).to_string();
    let s = s.rsplit('.').next().unwrap_or(&s).to_string();
    strip_trailing_group(&s)
}

fn strip_trailing_group(s: &str) -> String {
    let t = s.trim_end();
    for (open, close) in [('(', ')'), ('[', ']'), ('{', '}')] {
        if t.ends_with(close) {
            let mut depth = 0;
            for (i, c) in t.char_indices().rev() {
                if c == close {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        return t[..i].trim_end().to_string();
                    }
                }
            }
        }
    }
    t.to_string()
}

/// Finds the table row covering `(path, receiver, op)`, if any.
pub fn rule_for(path: &str, receiver: &str, op: AtomicOp) -> Option<&'static OrderingRule> {
    ORDERING_RULES.iter().find(|r| {
        path.ends_with(r.file_suffix) && r.op == op && (r.receiver == "*" || r.receiver == receiver)
    })
}

/// Formats an ordering-rule violation message.
pub fn violation_msg(rule: &OrderingRule, u: &OrderingUse) -> String {
    format!(
        "{} on `{}` uses Ordering::{} but the invariant table allows only {:?} — {}",
        u.op.name(),
        if u.receiver.is_empty() { "<fence>" } else { &u.receiver },
        u.orderings.join("/"),
        rule.allowed,
        rule.why
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::source::SourceFile;

    fn uses_of(code: &str) -> Vec<OrderingUse> {
        let sf = SourceFile::parse(code);
        sf.stmts.iter().flat_map(ordering_uses).collect()
    }

    #[test]
    fn simple_load() {
        let u = uses_of("let v = self.raw.load(Ordering::Acquire);");
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].op, AtomicOp::Load);
        assert_eq!(u[0].receiver, "raw");
        assert_eq!(u[0].orderings, vec!["Acquire"]);
    }

    #[test]
    fn multiline_fetch_add_joins() {
        let u = uses_of("COUNTER.fetch_add(1,\n    Ordering::Relaxed);\n");
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].receiver, "COUNTER");
        assert_eq!(u[0].orderings, vec!["Relaxed"]);
    }

    #[test]
    fn deref_and_index_receivers() {
        let u = uses_of("unsafe { (*e.cell).store(e.value, std::sync::atomic::Ordering::Release) };");
        assert_eq!(u[0].receiver, "cell");
        let u = uses_of("stripes()[idx as usize].load(Ordering::Acquire)");
        assert_eq!(u[0].receiver, "stripes");
    }

    #[test]
    fn compare_exchange_has_two_orderings() {
        let u = uses_of("s.compare_exchange(cur, next, Ordering::Acquire, Ordering::Acquire)");
        assert_eq!(u[0].op, AtomicOp::CompareExchange);
        assert_eq!(u[0].orderings, vec!["Acquire", "Acquire"]);
    }

    #[test]
    fn method_chain_after_match_joins() {
        let code = "match path {\n    A => &self.x,\n    B => &self.y,\n}\n.fetch_add(1, Ordering::Relaxed);\n";
        let u = uses_of(code);
        assert_eq!(u.len(), 1, "chained fetch_add found: {u:?}");
        assert_eq!(u[0].orderings, vec!["Relaxed"]);
    }

    #[test]
    fn non_atomic_store_ignored() {
        // TxCell::write / Vec-ish calls carry no Ordering argument.
        assert!(uses_of("orec.write(epoch);").is_empty());
        assert!(uses_of("self.buf.store(x, y);").is_empty());
    }

    #[test]
    fn fence_matches_standalone_only() {
        let u = uses_of("fence(Ordering::SeqCst);");
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].op, AtomicOp::Fence);
        assert!(uses_of("my_fence(Ordering::SeqCst);").is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_confuse() {
        let code = "let s = \"x.load(Ordering::Relaxed)\"; // x.store(Ordering::Relaxed)\n";
        assert!(uses_of(code).is_empty());
    }

    #[test]
    fn table_lookup() {
        let r = rule_for("crates/htm/src/cell.rs", "raw", AtomicOp::Load).expect("row exists");
        assert_eq!(r.allowed, &["Acquire", "SeqCst"]);
        assert!(rule_for("crates/htm/src/cell.rs", "raw", AtomicOp::Swap).is_none());
        // Wildcard receiver.
        assert!(rule_for("crates/core/src/stats.rs", "anything", AtomicOp::FetchAdd).is_some());
    }
}
