//! `rtle-check` — the concurrency correctness gate for the refined-TLE
//! workspace.
//!
//! Two engines, both dependency-free:
//!
//! * [`lint`] — a hand-rolled source scanner enforcing the memory-ordering
//!   invariant table over `rtle-core`/`rtle-htm`, the §4 fence discipline
//!   in `orec.rs`, `// SAFETY:` comments on every `unsafe` block, and
//!   `unwrap`/`panic!` bans in hot-path modules.
//! * [`model`] — an exhaustive interleaving explorer over small closed
//!   configurations of the TLE / RW-TLE / FG-TLE / lazy-subscription state
//!   machines, validating every committed history against a
//!   serializability oracle. The suite includes a deliberately broken
//!   lazy-subscription mutant the checker must catch — a regression test
//!   for the oracle itself.
//!
//! Run both with `cargo run -p rtle-check` (see `main.rs` for flags); the
//! tier-1 script wires this into CI.

#![warn(missing_docs)]

pub mod cfg;
pub mod lint;
pub mod model;
pub mod passes;
pub mod syntax;

use std::path::{Path, PathBuf};

/// Locates the workspace root: walks up from `start` looking for a
/// directory that contains both `Cargo.toml` and `crates/`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
