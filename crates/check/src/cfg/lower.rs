//! AST → CFG lowering.
//!
//! Control flow (`if`/`match`/loops/`return`/`break`/`?`) becomes block
//! structure; everything else is reduced to typed [`Event`]s. Three
//! pieces of lexical state ride along:
//!
//! * **guard depth** — incremented inside critical-section closures
//!   (`execute`, `execute_from`, `with_shard_locked`,
//!   `with_key_shard_locked`, `with_shards_locked`) and after a
//!   let-bound `lock_section()` guard, scoped to the end of its block;
//! * **held locks** — symbols of let-bound `lock_section()` guards, so
//!   a later acquisition records what it may deadlock against;
//! * **bindings** — `let s = &self.shards[idx]` style aliases, so an
//!   acquisition through `s.lock` still resolves its shard index.
//!
//! Closures not known to run exactly once (iterator adapters, plain
//! calls) get a bypass edge around their body, so events inside them
//! never wrongly dominate events after the call.

use std::collections::HashMap;

use super::{BasicBlock, ContractArg, Event, EventKind, FnCfg};
use crate::syntax::{Block, Expr, FnItem, Stmt};

/// Methods whose closure argument runs exactly once with the lock held.
const GUARD_METHODS: &[&str] = &[
    "execute",
    "execute_from",
    "with_shard_locked",
    "with_key_shard_locked",
    "with_shards_locked",
];

/// Atomic RMW/load/store method names that take `Ordering` arguments.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
];

/// Lowers one parsed function (with its enclosing `cfg` context, e.g.
/// `Some("test")` for a `#[cfg(test)] mod`) to a CFG.
pub fn lower_fn(f: &FnItem, mod_cfg: Option<&str>) -> FnCfg {
    let mut lw = Lowerer {
        blocks: vec![BasicBlock::default(), BasicBlock::default()],
        cur: 0,
        ret_target: 1,
        guard_depth: 0,
        in_unsafe: 0,
        held: Vec::new(),
        env: HashMap::new(),
        loop_slice: None,
        loops: Vec::new(),
    };
    if let Some(b) = &f.body {
        lw.lower_block(b);
    }
    let cur = lw.cur;
    lw.edge(cur, 1);
    FnCfg {
        name: f.name.clone(),
        line: f.line,
        cfg_marker: f.cfg_feature.clone().or_else(|| mod_cfg.map(str::to_string)),
        blocks: lw.blocks,
        entry: 0,
        exit: 1,
    }
}

struct Lowerer {
    blocks: Vec<BasicBlock>,
    cur: usize,
    /// Where `return` / `?` jumps: the fn exit, or a closure's join.
    ret_target: usize,
    guard_depth: usize,
    in_unsafe: usize,
    held: Vec<String>,
    /// `let s = &self.shards[idx]` aliases: binding → index symbol.
    env: HashMap<String, String>,
    /// Slice iterated by the innermost enclosing iterator closure.
    loop_slice: Option<String>,
    /// (head, after) of enclosing loops, for `continue`/`break`.
    loops: Vec<(usize, usize)>,
}

impl Lowerer {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn emit(&mut self, kind: EventKind, line: usize) {
        let guard_depth = self.guard_depth;
        self.blocks[self.cur].events.push(Event {
            kind,
            line,
            guard_depth,
        });
    }

    // ---- statements --------------------------------------------------

    fn lower_block(&mut self, b: &Block) {
        let g = self.guard_depth;
        let h = self.held.len();
        if b.is_unsafe {
            self.in_unsafe += 1;
        }
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    pat,
                    tuple,
                    init,
                    else_block,
                    line,
                } => self.lower_let(pat, *tuple, init.as_ref(), else_block.as_ref(), *line),
                Stmt::Expr(e) => self.lower_expr(e, false),
                Stmt::Item(_) => {} // nested fns are lowered separately
            }
        }
        if b.is_unsafe {
            self.in_unsafe -= 1;
        }
        self.guard_depth = g;
        self.held.truncate(h);
    }

    fn lower_let(
        &mut self,
        pat: &[String],
        tuple: bool,
        init: Option<&Expr>,
        else_block: Option<&Block>,
        line: usize,
    ) {
        let Some(init) = init else { return };
        // Conditional-swap ordering fact:
        // `let (lo, hi) = if a < b { (a, b) } else { (b, a) };`
        let order_fact = tuple && pat.len() == 2 && is_conditional_swap(init);
        self.lower_expr(init, false);
        if order_fact {
            self.emit(
                EventKind::OrderFact {
                    lt: pat[0].clone(),
                    gt: pat[1].clone(),
                },
                line,
            );
        }
        if pat.len() == 1 {
            // Shard alias: `let s = &self.shards[idx];`
            if let Some(sym) = strip_refs(init).shards_index().and_then(Expr::simple_symbol) {
                if is_pure_place(strip_refs(init)) {
                    self.env.insert(pat[0].clone(), sym);
                }
            }
            // Let-bound guard: `let g = <shard>.lock.lock_section();`
            // holds to the end of the enclosing block.
            if let Expr::MethodCall { method, recv, .. } = init {
                if method == "lock_section" {
                    let idx = self.acquire_index(recv);
                    self.guard_depth += 1;
                    self.held.push(idx.unwrap_or_else(|| pat[0].clone()));
                }
            }
        }
        if let Some(eb) = else_block {
            // Let-else: the else branch runs on refutation and diverges.
            let else_b = self.new_block();
            let join = self.new_block();
            let cur = self.cur;
            self.edge(cur, else_b);
            self.edge(cur, join);
            self.cur = else_b;
            self.lower_block(eb);
            let cur = self.cur;
            let rt = self.ret_target;
            self.edge(cur, rt);
            self.cur = join;
        }
    }

    // ---- expressions -------------------------------------------------

    /// Lowers `e`, emitting its events into the current block. When
    /// `as_place` is set the expression is a store target or receiver:
    /// a top-level raw deref is *not* a read event (the caller emits the
    /// matching write/atomic event itself).
    fn lower_expr(&mut self, e: &Expr, as_place: bool) {
        match e {
            Expr::Path(..) | Expr::Lit(..) | Expr::Break(_) | Expr::Continue(_) => {
                if let Expr::Break(line) = e {
                    let target = self.loops.last().map(|&(_, after)| after);
                    self.diverge(target, *line);
                } else if let Expr::Continue(line) = e {
                    let target = self.loops.last().map(|&(head, _)| head);
                    self.diverge(target, *line);
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => self.lower_method(recv, method, args, *line),
            Expr::Call { callee, args, line } => self.lower_call(callee, args, *line),
            Expr::Field { base, name, line } => {
                self.lower_expr(base, true);
                if name == "map" {
                    if let Some(path) = e.access_path() {
                        self.emit(
                            EventKind::FieldUse {
                                path: path.join("."),
                                field: name.clone(),
                            },
                            *line,
                        );
                    }
                }
            }
            Expr::Index { base, index, .. } => {
                self.lower_expr(base, true);
                self.lower_expr(index, false);
            }
            Expr::Deref(inner, line) => {
                self.lower_expr(inner, true);
                if !as_place && self.in_unsafe > 0 {
                    self.emit(EventKind::RawRead, *line);
                }
            }
            Expr::Ref(inner, _) => self.lower_expr(inner, false),
            Expr::Unary(inner, _) | Expr::Try(inner, _) => {
                self.lower_expr(inner, false);
                if let Expr::Try(_, line) = e {
                    // `?` may early-return: branch to the return target
                    // and continue in a fresh block.
                    let cont = self.new_block();
                    let cur = self.cur;
                    let rt = self.ret_target;
                    self.edge(cur, rt);
                    self.edge(cur, cont);
                    self.cur = cont;
                    let _ = line;
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.lower_expr(lhs, false);
                self.lower_expr(rhs, false);
            }
            Expr::Assign { lhs, rhs, line } => {
                self.lower_expr(lhs, true);
                if matches!(&**lhs, Expr::Deref(..)) && self.in_unsafe > 0 {
                    self.emit(EventKind::RawWrite, *line);
                }
                self.lower_expr(rhs, false);
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.lower_expr(cond, false);
                let cond_end = self.cur;
                let join = self.new_block();
                let then_b = self.new_block();
                self.edge(cond_end, then_b);
                self.cur = then_b;
                self.lower_block(then);
                let cur = self.cur;
                self.edge(cur, join);
                match else_ {
                    Some(eb) => {
                        let else_b = self.new_block();
                        self.edge(cond_end, else_b);
                        self.cur = else_b;
                        self.lower_expr(eb, false);
                        let cur = self.cur;
                        self.edge(cur, join);
                    }
                    None => self.edge(cond_end, join),
                }
                self.cur = join;
            }
            Expr::Match { scrut, arms, .. } => {
                self.lower_expr(scrut, false);
                let scrut_end = self.cur;
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(scrut_end, join);
                }
                for arm in arms {
                    let arm_b = self.new_block();
                    self.edge(scrut_end, arm_b);
                    self.cur = arm_b;
                    if let Some(g) = &arm.guard {
                        self.lower_expr(g, false);
                    }
                    self.lower_expr(&arm.body, false);
                    let cur = self.cur;
                    self.edge(cur, join);
                }
                self.cur = join;
            }
            Expr::Loop(body, _) => {
                let head = self.new_block();
                let after = self.new_block();
                let cur = self.cur;
                self.edge(cur, head);
                // Conservative exit edge keeps postdominance total even
                // for `loop` bodies whose only exits are panics.
                self.edge(head, after);
                self.loops.push((head, after));
                self.cur = head;
                self.lower_block(body);
                let cur = self.cur;
                self.edge(cur, head);
                self.loops.pop();
                self.cur = after;
            }
            Expr::While { cond, body, .. } => {
                let head = self.new_block();
                let cur = self.cur;
                self.edge(cur, head);
                self.cur = head;
                self.lower_expr(cond, false);
                let cond_end = self.cur;
                let body_b = self.new_block();
                let after = self.new_block();
                self.edge(cond_end, body_b);
                self.edge(cond_end, after);
                self.loops.push((head, after));
                self.cur = body_b;
                self.lower_block(body);
                let cur = self.cur;
                self.edge(cur, head);
                self.loops.pop();
                self.cur = after;
            }
            Expr::For { iter, body, .. } => {
                self.lower_expr(iter, false);
                let head = self.new_block();
                let cur = self.cur;
                self.edge(cur, head);
                let body_b = self.new_block();
                let after = self.new_block();
                self.edge(head, body_b);
                self.edge(head, after);
                self.loops.push((head, after));
                self.cur = body_b;
                self.lower_block(body);
                let cur = self.cur;
                self.edge(cur, head);
                self.loops.pop();
                self.cur = after;
            }
            Expr::Closure { body, .. } => self.lower_bypassed_closure(body),
            Expr::Block(b) => self.lower_block(b),
            Expr::Return(inner, line) => {
                if let Some(inner) = inner {
                    self.lower_expr(inner, false);
                }
                let rt = self.ret_target;
                self.diverge(Some(rt), *line);
            }
            Expr::Macro { name, text, line } => {
                if let Some(slice) = sorted_assert_slice(name, text) {
                    self.emit(EventKind::SortedFact { slice }, *line);
                }
            }
            Expr::Tuple(items, _) | Expr::Array(items, _) => {
                for it in items {
                    self.lower_expr(it, false);
                }
            }
            Expr::StructLit { fields, .. } => {
                for (_, e) in fields {
                    self.lower_expr(e, false);
                }
            }
            Expr::Unknown(_) => {}
        }
    }

    /// Jump to `target` (if any) and continue in a fresh dead block.
    fn diverge(&mut self, target: Option<usize>, _line: usize) {
        if let Some(t) = target {
            let cur = self.cur;
            self.edge(cur, t);
        }
        self.cur = self.new_block();
    }

    /// A closure that may run zero or many times: lower the body between
    /// the current block and a join, with a bypass edge around it.
    fn lower_bypassed_closure(&mut self, body: &Expr) {
        let entry = self.new_block();
        let join = self.new_block();
        let cur = self.cur;
        self.edge(cur, entry);
        self.edge(cur, join);
        self.cur = entry;
        let saved_rt = self.ret_target;
        self.ret_target = join;
        self.lower_expr(body, false);
        self.ret_target = saved_rt;
        let cur = self.cur;
        self.edge(cur, join);
        self.cur = join;
    }

    /// A closure known to run exactly once (critical-section body):
    /// lowered inline, optionally one guard level deeper.
    fn lower_inline_closure(&mut self, body: &Expr, guarded: bool) {
        let join = self.new_block();
        let saved_rt = self.ret_target;
        self.ret_target = join;
        if guarded {
            self.guard_depth += 1;
        }
        self.lower_expr(body, false);
        if guarded {
            self.guard_depth -= 1;
        }
        self.ret_target = saved_rt;
        let cur = self.cur;
        self.edge(cur, join);
        self.cur = join;
    }

    fn lower_method(&mut self, recv: &Expr, method: &str, args: &[Expr], line: usize) {
        self.lower_expr(recv, true);

        // Atomic op with Ordering arguments?
        if ATOMIC_METHODS.contains(&method) {
            let orderings = ordering_args(args);
            if !orderings.is_empty() {
                for a in args {
                    self.lower_expr(a, false);
                }
                self.emit(
                    EventKind::Atomic {
                        op: method.to_string(),
                        recv: recv.receiver_name().unwrap_or_default(),
                        orderings,
                    },
                    line,
                );
                return;
            }
        }

        match method {
            "write" if args.len() == 1 => {
                self.lower_expr(&args[0], false);
                self.emit(
                    EventKind::TxWrite {
                        recv: recv.receiver_name().unwrap_or_default(),
                    },
                    line,
                );
            }
            "lock_section" => {
                self.emit(
                    EventKind::Acquire {
                        index: self.acquire_index(recv),
                        loop_over: self.loop_slice.clone(),
                        live: self.held.clone(),
                    },
                    line,
                );
            }
            "sort" | "sort_unstable" if args.is_empty() => {
                if let Some(s) = recv.simple_symbol() {
                    self.emit(EventKind::SortedFact { slice: s }, line);
                }
            }
            m if GUARD_METHODS.contains(&m) => {
                if m == "with_shards_locked" {
                    self.emit(
                        EventKind::ContractCall {
                            arg: args.first().map_or(ContractArg::Unknown, contract_arg),
                        },
                        line,
                    );
                }
                for a in args {
                    if let Expr::Closure { body, .. } = a {
                        self.lower_inline_closure(body, true);
                    } else {
                        self.lower_expr(a, false);
                    }
                }
            }
            _ => {
                // Iterator adapters over `<slice>.iter()` mark their
                // closure as a loop body over that slice.
                let iter_slice = iterated_slice(recv);
                for a in args {
                    if let Expr::Closure { body, .. } = a {
                        let saved = self.loop_slice.clone();
                        if iter_slice.is_some() {
                            self.loop_slice = iter_slice.clone();
                        }
                        self.lower_bypassed_closure(body);
                        self.loop_slice = saved;
                    } else {
                        self.lower_expr(a, false);
                    }
                }
                self.emit(
                    EventKind::Call {
                        name: method.to_string(),
                        recv: recv.receiver_name(),
                    },
                    line,
                );
            }
        }
    }

    fn lower_call(&mut self, callee: &Expr, args: &[Expr], line: usize) {
        let segs: Vec<String> = match callee {
            Expr::Path(segs, _) => segs.clone(),
            _ => {
                self.lower_expr(callee, false);
                Vec::new()
            }
        };
        let last = segs.last().map(String::as_str).unwrap_or("");
        let prev = segs
            .len()
            .checked_sub(2)
            .map(|i| segs[i].as_str())
            .unwrap_or("");
        if last == "fence" {
            let ordering = ordering_args(args).pop().unwrap_or_default();
            self.emit(EventKind::Fence { ordering }, line);
            return;
        }
        if prev == "ptr" && (last == "write" || last == "write_volatile") {
            for a in args {
                self.lower_expr(a, false);
            }
            self.emit(EventKind::RawWrite, line);
            return;
        }
        if prev == "ptr" && (last == "read" || last == "read_volatile") {
            for a in args {
                self.lower_expr(a, false);
            }
            self.emit(EventKind::RawRead, line);
            return;
        }
        for a in args {
            if let Expr::Closure { body, .. } = a {
                self.lower_bypassed_closure(body);
            } else {
                self.lower_expr(a, false);
            }
        }
        if !last.is_empty() {
            self.emit(
                EventKind::Call {
                    name: last.to_string(),
                    recv: None,
                },
                line,
            );
        }
    }

    /// Symbolic shard index of a `lock_section()` receiver: either a
    /// `...shards[IDX].lock` chain, or an alias bound by
    /// `let s = &self.shards[IDX]`.
    fn acquire_index(&self, recv: &Expr) -> Option<String> {
        if let Some(ix) = recv.shards_index() {
            let sym = ix.simple_symbol()?;
            return Some(self.env.get(&sym).cloned().unwrap_or(sym));
        }
        let path = recv.access_path()?;
        self.env.get(path.first()?).cloned()
    }
}

/// Strips `&`/`*` wrappers.
fn strip_refs(e: &Expr) -> &Expr {
    match e {
        Expr::Ref(inner, _) | Expr::Deref(inner, _) => strip_refs(inner),
        _ => e,
    }
}

/// Is this a pure place chain (no calls), safe to alias symbolically?
fn is_pure_place(e: &Expr) -> bool {
    e.access_path().is_some()
}

/// Does `init` match `if a < b { (a, b) } else { (b, a) }` (the
/// conditional-swap idiom), for any simple symbols `a`, `b`?
fn is_conditional_swap(init: &Expr) -> bool {
    let Expr::If {
        cond,
        if_let: false,
        then,
        else_: Some(else_),
        ..
    } = init
    else {
        return false;
    };
    let Expr::Binary { op, lhs, rhs, .. } = &**cond else {
        return false;
    };
    if op != "<" && op != "<=" {
        return false;
    }
    let (Some(a), Some(b)) = (lhs.simple_symbol(), rhs.simple_symbol()) else {
        return false;
    };
    let then_pair = block_tail_pair(then);
    let else_pair = match &**else_ {
        Expr::Block(b) => block_tail_pair(b),
        _ => None,
    };
    match (then_pair, else_pair) {
        (Some((t0, t1)), Some((e0, e1))) => t0 == a && t1 == b && e0 == b && e1 == a,
        _ => false,
    }
}

/// The `(x, y)` tail of a single-expression block, as symbols.
fn block_tail_pair(b: &Block) -> Option<(String, String)> {
    let [Stmt::Expr(Expr::Tuple(items, _))] = b.stmts.as_slice() else {
        return None;
    };
    let [x, y] = items.as_slice() else { return None };
    Some((x.simple_symbol()?, y.simple_symbol()?))
}

/// Ordering idents among call arguments (`Ordering::Acquire` → "Acquire").
fn ordering_args(args: &[Expr]) -> Vec<String> {
    let mut out = Vec::new();
    for a in args {
        if let Expr::Path(segs, _) = a {
            if segs.len() >= 2 && segs[segs.len() - 2] == "Ordering" {
                out.push(segs[segs.len() - 1].clone());
            }
        }
    }
    out
}

/// The `with_shards_locked` slice argument, symbolically.
fn contract_arg(a: &Expr) -> ContractArg {
    match strip_refs(a) {
        Expr::Path(segs, _) => segs
            .last()
            .map_or(ContractArg::Unknown, |s| ContractArg::Slice(s.clone())),
        Expr::Array(items, _) => {
            let syms: Vec<Option<String>> = items.iter().map(Expr::simple_symbol).collect();
            match syms.as_slice() {
                [Some(x), Some(y)] => ContractArg::Pair(x.clone(), y.clone()),
                _ => ContractArg::Unknown,
            }
        }
        _ => ContractArg::Unknown,
    }
}

/// For `<recv>.map(|..| ..)`-style adapters: the slice the chain
/// iterates, when the chain starts `<sym>.iter()` / `.iter_mut()`.
fn iterated_slice(recv: &Expr) -> Option<String> {
    match recv {
        Expr::MethodCall { recv, method, .. } if method == "iter" || method == "iter_mut" => {
            recv.simple_symbol()
        }
        Expr::MethodCall { recv, .. } => iterated_slice(recv),
        _ => None,
    }
}

/// `debug_assert!(S.windows(2).all(|w| w[0] < w[1]), ...)` → `S`.
fn sorted_assert_slice(name: &str, text: &str) -> Option<String> {
    if name != "debug_assert" && name != "assert" {
        return None;
    }
    let slice = text.split_whitespace().next()?.to_string();
    let compact: String = text.split_whitespace().collect();
    let head = format!("{slice}.windows(2).all(");
    (compact.starts_with(&head) && compact.contains("[0]<") && compact.contains("[1]"))
        .then_some(slice)
}

#[cfg(test)]
mod tests {
    use super::super::EventKind;
    use super::*;
    use crate::syntax::{for_each_fn, parse_file};

    fn lower_first(src: &str) -> FnCfg {
        let items = parse_file(src);
        let mut out = None;
        for_each_fn(&items, &mut |f, cfg| {
            if out.is_none() {
                out = Some(lower_fn(f, cfg));
            }
        });
        out.expect("no fn parsed")
    }

    fn kinds(cfg: &FnCfg) -> Vec<EventKind> {
        cfg.events().map(|(_, e)| e.kind.clone()).collect()
    }

    #[test]
    fn stamp_shape_txwrite_then_fence() {
        let cfg = lower_first(
            "fn stamp(&self) -> bool {\n                let orec = &self.r[0];\n                if orec.read_plain() >= epoch { return false; }\n                orec.write(epoch);\n                fence(Ordering::SeqCst);\n                self.stamps[0].fetch_add(1, Ordering::Relaxed);\n                true\n            }",
        );
        let ks = kinds(&cfg);
        let wi = ks
            .iter()
            .position(|k| matches!(k, EventKind::TxWrite { recv } if recv == "orec"))
            .expect("txwrite");
        assert!(matches!(&ks[wi + 1], EventKind::Fence { ordering } if ordering == "SeqCst"));
        assert!(
            ks.iter().any(|k| matches!(k, EventKind::Atomic { op, orderings, .. }
                if op == "fetch_add" && orderings == &["Relaxed"])),
            "{ks:?}"
        );
    }

    #[test]
    fn guard_depth_inside_execute_closure() {
        let cfg = lower_first(
            "fn get(&self, key: u64) -> Option<u64> {\n                let s = &self.shards[0];\n                s.lock.execute(|ctx| s.map.get(ctx, key))\n            }",
        );
        let field: Vec<_> = cfg
            .events()
            .filter(|(_, e)| matches!(&e.kind, EventKind::FieldUse { field, .. } if field == "map"))
            .collect();
        assert_eq!(field.len(), 1);
        assert_eq!(field[0].1.guard_depth, 1, "map access inside execute is guarded");
    }

    #[test]
    fn unguarded_field_use_has_depth_zero() {
        let cfg = lower_first(
            "fn len_plain(&self) -> usize { self.shards.iter().map(|s| s.map.len_plain()).sum() }",
        );
        let field: Vec<_> = cfg
            .events()
            .filter(|(_, e)| matches!(&e.kind, EventKind::FieldUse { .. }))
            .collect();
        assert_eq!(field.len(), 1);
        assert_eq!(field[0].1.guard_depth, 0);
    }

    #[test]
    fn swap_let_emits_order_fact_and_contract() {
        let cfg = lower_first(
            "fn t(&self, s1: usize, s2: usize) {\n                let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };\n                self.with_shards_locked(&[lo, hi], |guards| guards.len());\n            }",
        );
        let ks = kinds(&cfg);
        assert!(
            ks.iter()
                .any(|k| matches!(k, EventKind::OrderFact { lt, gt } if lt == "lo" && gt == "hi")),
            "{ks:?}"
        );
        assert!(ks.iter().any(|k| matches!(k, EventKind::ContractCall { arg }
            if *arg == ContractArg::Pair("lo".into(), "hi".into()))));
    }

    #[test]
    fn sort_and_assert_emit_sorted_facts_loop_acquire_tagged() {
        let cfg = lower_first(
            "fn w(&self, idxs: &[usize]) {\n                debug_assert!(idxs.windows(2).all(|w| w[0] < w[1]), \"ascending order\");\n                let guards: Vec<G> = idxs.iter().map(|&i| self.shards[i].lock.lock_section()).collect();\n            }",
        );
        let ks = kinds(&cfg);
        assert!(
            ks.iter().any(|k| matches!(k, EventKind::SortedFact { slice } if slice == "idxs")),
            "{ks:?}"
        );
        assert!(
            ks.iter().any(|k| matches!(k, EventKind::Acquire { index: Some(i), loop_over: Some(s), .. }
                if i == "i" && s == "idxs")),
            "{ks:?}"
        );
    }

    #[test]
    fn sequential_acquires_record_live_set() {
        let cfg = lower_first(
            "fn bad(&self, lo: usize, hi: usize) {\n                let g_hi = self.shards[hi].lock.lock_section();\n                let g_lo = self.shards[lo].lock.lock_section();\n            }",
        );
        let acquires: Vec<_> = kinds(&cfg)
            .into_iter()
            .filter_map(|k| match k {
                EventKind::Acquire { index, live, .. } => Some((index, live)),
                _ => None,
            })
            .collect();
        assert_eq!(acquires.len(), 2);
        assert_eq!(acquires[0], (Some("hi".into()), vec![]));
        assert_eq!(acquires[1], (Some("lo".into()), vec!["hi".into()]));
    }

    #[test]
    fn raw_accesses_only_in_unsafe() {
        let cfg = lower_first(
            "fn f(p: *mut u64, q: *const u64) -> u64 {\n                unsafe { *p = 1; }\n                let v = unsafe { *q };\n                let w = *some_box;\n                v\n            }",
        );
        let ks = kinds(&cfg);
        assert_eq!(
            ks.iter().filter(|k| matches!(k, EventKind::RawWrite)).count(),
            1
        );
        assert_eq!(
            ks.iter().filter(|k| matches!(k, EventKind::RawRead)).count(),
            1,
            "safe deref must not count: {ks:?}"
        );
    }

    #[test]
    fn atomic_store_through_deref_is_atomic_not_raw() {
        let cfg = lower_first(
            "fn commit(e: &Entry) { unsafe { (*e.cell).store(e.value, std::sync::atomic::Ordering::Release) }; }",
        );
        let ks = kinds(&cfg);
        assert!(ks.iter().any(|k| matches!(k, EventKind::Atomic { op, recv, orderings }
            if op == "store" && recv == "cell" && orderings == &["Release"])));
        assert!(
            !ks.iter().any(|k| matches!(k, EventKind::RawWrite | EventKind::RawRead)),
            "{ks:?}"
        );
    }

    #[test]
    fn closure_bypass_edge_prevents_false_dominance() {
        let cfg = lower_first(
            "fn f(&self) { self.xs.iter().for_each(|x| fence(Ordering::SeqCst)); other(); }",
        );
        let doms = cfg.dominators();
        let fence = cfg
            .events()
            .find(|(_, e)| matches!(e.kind, EventKind::Fence { .. }))
            .unwrap()
            .0;
        let other = cfg
            .events()
            .find(|(_, e)| matches!(&e.kind, EventKind::Call { name, .. } if name == "other"))
            .unwrap()
            .0;
        assert!(
            !cfg.ev_dominates(&doms, fence, other),
            "closure body must not dominate code after the call"
        );
    }

    #[test]
    fn return_paths_reach_exit() {
        let cfg = lower_first(
            "fn f(x: bool) -> u32 { if x { return 1; } loop { if g() { break; } } 2 }",
        );
        let reach = cfg.reachability();
        assert!(reach[cfg.entry][cfg.exit]);
        // The `return 1` block reaches exit without passing the loop.
        let pdoms = cfg.postdominators();
        assert!(pdoms[cfg.entry][cfg.exit], "exit postdominates entry");
    }
}
