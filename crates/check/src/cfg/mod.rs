//! Per-function control-flow graphs over the [`crate::syntax`] AST.
//!
//! Each function lowers to a graph of basic blocks holding typed
//! [`Event`]s — the only program actions the concurrency passes reason
//! about (atomic ops, fences, raw-pointer accesses, lock acquisitions,
//! guard-protected field uses, and ordering *facts* like "`lo < hi`
//! holds here"). Everything else in the function is dropped at lowering
//! time, which keeps the dominance machinery tiny.
//!
//! Dominance and postdominance are computed by the classic iterative
//! bitset dataflow; functions in this workspace have tens of blocks, so
//! the O(n²) sets are effectively free and the implementation stays
//! dependency-free.

pub mod lower;

use std::fmt;

pub use lower::lower_fn;

/// How `with_shards_locked` was called (its slice argument shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractArg {
    /// `&name` — a slice variable; needs a dominating sortedness fact.
    Slice(String),
    /// `&[a, b]` — a two-element array; needs a dominating `a < b` fact.
    Pair(String, String),
    /// Anything the lowering could not resolve symbolically.
    Unknown,
}

/// One analyzable program action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A call (free or method) the passes may interpret by name.
    Call {
        /// Callee / method name.
        name: String,
        /// Receiver name for method calls, when resolvable.
        recv: Option<String>,
    },
    /// Atomic operation with explicit `Ordering` arguments.
    Atomic {
        /// Method name (`load`, `store`, `fetch_add`, ...).
        op: String,
        /// Receiver name.
        recv: String,
        /// Ordering idents in argument order (`Acquire`, `SeqCst`, ...).
        orderings: Vec<String>,
    },
    /// `fence(Ordering::X)`.
    Fence {
        /// Ordering ident.
        ordering: String,
    },
    /// `<recv>.write(value)` — a `TxCell`-style store (no `Ordering`).
    TxWrite {
        /// Receiver name.
        recv: String,
    },
    /// Raw-pointer write: `*p = x` inside `unsafe`, or `ptr::write`.
    RawWrite,
    /// Raw-pointer read: an `unsafe` deref that is not a store target or
    /// an atomic receiver.
    RawRead,
    /// Access to a watched shared field (`....map`), with the guard
    /// nesting depth recorded on the event.
    FieldUse {
        /// Dotted access path.
        path: String,
        /// Field name.
        field: String,
    },
    /// Shard-lock acquisition (`lock_section()`).
    Acquire {
        /// Symbolic shard index (`hi`, `3`, loop variable), if resolvable.
        index: Option<String>,
        /// When acquired inside an iterator closure: the slice iterated.
        loop_over: Option<String>,
        /// Symbols of locks already held lexically at this point.
        live: Vec<String>,
    },
    /// Fact: `lt < gt` holds from here on (conditional-swap binding).
    OrderFact {
        /// The smaller symbol.
        lt: String,
        /// The larger symbol.
        gt: String,
    },
    /// Fact: `slice` is sorted ascending (a `sort*()` call or the
    /// `debug_assert!(s.windows(2).all(|w| w[0] < w[1]))` idiom).
    SortedFact {
        /// The slice symbol.
        slice: String,
    },
    /// A `with_shards_locked(arg, ...)` call site and its argument shape.
    ContractCall {
        /// The slice argument.
        arg: ContractArg,
    },
}

/// An [`EventKind`] with its source position and guard nesting depth.
#[derive(Debug, Clone)]
pub struct Event {
    /// The action.
    pub kind: EventKind,
    /// 1-based source line.
    pub line: usize,
    /// How many guard regions (critical sections) enclose this event.
    pub guard_depth: usize,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[g{}] ", self.guard_depth)?;
        match &self.kind {
            EventKind::Call { name, recv } => match recv {
                Some(r) => write!(f, "call {r}.{name}"),
                None => write!(f, "call {name}"),
            },
            EventKind::Atomic { op, recv, orderings } => {
                write!(f, "atomic {recv}.{op} {}", orderings.join("/"))
            }
            EventKind::Fence { ordering } => write!(f, "fence {ordering}"),
            EventKind::TxWrite { recv } => write!(f, "txwrite {recv}"),
            EventKind::RawWrite => write!(f, "raw-write"),
            EventKind::RawRead => write!(f, "raw-read"),
            EventKind::FieldUse { path, .. } => write!(f, "field {path}"),
            EventKind::Acquire { index, loop_over, live } => {
                write!(f, "acquire")?;
                if let Some(i) = index {
                    write!(f, " idx={i}")?;
                }
                if let Some(s) = loop_over {
                    write!(f, " loop={s}")?;
                }
                if !live.is_empty() {
                    write!(f, " live=[{}]", live.join(","))?;
                }
                Ok(())
            }
            EventKind::OrderFact { lt, gt } => write!(f, "order-fact {lt}<{gt}"),
            EventKind::SortedFact { slice } => write!(f, "sorted-fact {slice}"),
            EventKind::ContractCall { arg } => match arg {
                ContractArg::Slice(s) => write!(f, "contract &{s}"),
                ContractArg::Pair(a, b) => write!(f, "contract &[{a},{b}]"),
                ContractArg::Unknown => write!(f, "contract ?"),
            },
        }
    }
}

/// A basic block: straight-line events plus successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock {
    /// Events in program order.
    pub events: Vec<Event>,
    /// Successor block ids.
    pub succs: Vec<usize>,
}

/// Position of an event inside a [`FnCfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvRef {
    /// Block id.
    pub block: usize,
    /// Index into the block's event list.
    pub idx: usize,
}

/// A lowered function.
#[derive(Debug)]
pub struct FnCfg {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `cfg` marker in effect: `"test"`, a feature name, etc.
    pub cfg_marker: Option<String>,
    /// Blocks; ids are indices.
    pub blocks: Vec<BasicBlock>,
    /// Entry block id.
    pub entry: usize,
    /// Exit block id (every return edge targets it).
    pub exit: usize,
}

impl FnCfg {
    /// Is this function a seeded analyzer mutant
    /// (`#[cfg(feature = "mutant-...")]`)?
    pub fn mutant_feature(&self) -> Option<&str> {
        self.cfg_marker.as_deref().filter(|m| m.starts_with("mutant"))
    }

    /// Iterates all events with their positions, in block order.
    pub fn events(&self) -> impl Iterator<Item = (EvRef, &Event)> {
        self.blocks.iter().enumerate().flat_map(|(b, blk)| {
            blk.events
                .iter()
                .enumerate()
                .map(move |(i, e)| (EvRef { block: b, idx: i }, e))
        })
    }

    fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                if s < preds.len() {
                    preds[s].push(b);
                }
            }
        }
        preds
    }

    /// Block-level dominator sets: `doms[b][d]` ⇔ `d` dominates `b`.
    /// Blocks unreachable from entry keep the full set (vacuous truth);
    /// the passes only query reachable events.
    pub fn dominators(&self) -> Vec<Vec<bool>> {
        iterate_flow(self.blocks.len(), self.entry, &self.preds())
    }

    /// Block-level postdominator sets over the reversed graph from exit
    /// (the reverse graph's predecessors are the forward successors).
    pub fn postdominators(&self) -> Vec<Vec<bool>> {
        let fwd_succs: Vec<Vec<usize>> = self.blocks.iter().map(|b| b.succs.clone()).collect();
        iterate_flow(self.blocks.len(), self.exit, &fwd_succs)
    }

    /// Block-level reachability: `reach[a][b]` ⇔ a path a→…→b exists
    /// (including the empty path: `reach[a][a]`).
    pub fn reachability(&self) -> Vec<Vec<bool>> {
        let n = self.blocks.len();
        let mut reach = vec![vec![false; n]; n];
        for (start, row) in reach.iter_mut().enumerate() {
            let mut stack = vec![start];
            while let Some(b) = stack.pop() {
                if row[b] {
                    continue;
                }
                row[b] = true;
                for &s in &self.blocks[b].succs {
                    if s < n && !row[s] {
                        stack.push(s);
                    }
                }
            }
        }
        reach
    }

    /// Event-level dominance: `a` dominates `b` iff `a`'s block strictly
    /// dominates `b`'s, or they share a block and `a` comes first.
    pub fn ev_dominates(&self, doms: &[Vec<bool>], a: EvRef, b: EvRef) -> bool {
        if a.block == b.block {
            return a.idx <= b.idx;
        }
        doms[b.block][a.block]
    }

    /// Event-level reachability: can control reach `b` strictly after `a`?
    pub fn ev_reaches(&self, reach: &[Vec<bool>], a: EvRef, b: EvRef) -> bool {
        if a.block == b.block && b.idx > a.idx {
            return true;
        }
        self.blocks[a.block]
            .succs
            .iter()
            .any(|&s| s < reach.len() && reach[s][b.block])
    }

    /// Text dump (golden-test format).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "fn {} (line {})", self.name, self.line);
        for (i, b) in self.blocks.iter().enumerate() {
            let mark = if i == self.entry {
                " entry"
            } else if i == self.exit {
                " exit"
            } else {
                ""
            };
            let succs: Vec<String> = b.succs.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "  b{i}{mark} -> [{}]", succs.join(" "));
            for e in &b.events {
                let _ = writeln!(out, "    {e}");
            }
        }
        out
    }
}

/// The shared dominator-style fixpoint: `sets[root] = {root}`, every
/// other node starts full and intersects over `edges_in` until stable.
fn iterate_flow(n: usize, root: usize, edges_in: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let mut sets: Vec<Vec<bool>> = vec![vec![true; n]; n];
    if n == 0 {
        return sets;
    }
    sets[root] = vec![false; n];
    sets[root][root] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if b == root {
                continue;
            }
            let mut new: Option<Vec<bool>> = None;
            for &p in &edges_in[b] {
                match &mut new {
                    None => new = Some(sets[p].clone()),
                    Some(acc) => {
                        for (i, v) in acc.iter_mut().enumerate() {
                            *v = *v && sets[p][i];
                        }
                    }
                }
            }
            let mut new = new.unwrap_or_else(|| vec![true; n]);
            new[b] = true;
            if new != sets[b] {
                sets[b] = new;
                changed = true;
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> FnCfg {
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 -> 4(exit)
        let mut blocks: Vec<BasicBlock> = (0..5).map(|_| BasicBlock::default()).collect();
        blocks[0].succs = vec![1, 2];
        blocks[1].succs = vec![3];
        blocks[2].succs = vec![3];
        blocks[3].succs = vec![4];
        FnCfg {
            name: "d".into(),
            line: 1,
            cfg_marker: None,
            blocks,
            entry: 0,
            exit: 4,
        }
    }

    #[test]
    fn diamond_dominance() {
        let cfg = diamond();
        let doms = cfg.dominators();
        assert!(doms[3][0], "entry dominates join");
        assert!(!doms[3][1], "one branch does not dominate the join");
        assert!(!doms[3][2]);
        let pdoms = cfg.postdominators();
        assert!(pdoms[0][3], "join postdominates entry");
        assert!(pdoms[1][3]);
        assert!(!pdoms[0][1], "a branch does not postdominate entry");
    }

    #[test]
    fn diamond_reachability() {
        let cfg = diamond();
        let reach = cfg.reachability();
        assert!(reach[0][4]);
        assert!(reach[1][3]);
        assert!(!reach[1][2], "siblings unreachable from each other");
        assert!(!reach[3][0]);
    }

    #[test]
    fn event_level_relations() {
        let mut cfg = diamond();
        let ev = |k: EventKind| Event {
            kind: k,
            line: 1,
            guard_depth: 0,
        };
        cfg.blocks[0].events.push(ev(EventKind::RawRead));
        cfg.blocks[0].events.push(ev(EventKind::RawWrite));
        cfg.blocks[1].events.push(ev(EventKind::RawRead));
        let doms = cfg.dominators();
        let reach = cfg.reachability();
        let a = EvRef { block: 0, idx: 0 };
        let b = EvRef { block: 0, idx: 1 };
        let c = EvRef { block: 1, idx: 0 };
        assert!(cfg.ev_dominates(&doms, a, b));
        assert!(!cfg.ev_dominates(&doms, b, a));
        assert!(cfg.ev_dominates(&doms, a, c));
        assert!(!cfg.ev_dominates(&doms, c, a));
        assert!(cfg.ev_reaches(&reach, a, c));
        assert!(!cfg.ev_reaches(&reach, c, a));
    }
}
