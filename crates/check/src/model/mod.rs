//! Exhaustive interleaving checker for the TLE protocol family.
//!
//! The module is a small-step operational model of the runtime in
//! `rtle-core`: each thread is a state machine walking the fast
//! (speculative), slow (speculative-while-locked) and pessimistic (under
//! lock) paths of TLE, RW-TLE and FG-TLE, over a tiny shared memory of
//! numbered locations. The explorer ([`explore`]) enumerates *every*
//! interleaving of the per-thread steps from a given configuration (DFS with
//! memoized states) and checks each terminal state against
//!
//! * structural invariants (lock released, `write_flag` lowered, epoch even,
//!   every thread committed exactly once), and
//! * a serializability oracle ([`oracle`]): the committed history must be
//!   equivalent to *some* serial order of the critical sections replayed
//!   over shadow memory.
//!
//! Conflict detection models a requester-wins HTM: any committed (plain or
//! under-lock) store to a line dooms every speculative transaction that has
//! the line in its read or write set; a doomed transaction aborts at its
//! next step. Lock subscription is exactly a transactional read of the lock
//! line, so eager subscription makes lock acquisition doom the subscriber —
//! while the [`Subscription::LazyUnsafe`] variant (no subscription, no
//! commit-time check) reproduces the zombie-transaction hazard the paper's
//! companion work warns about, and the oracle must catch it.
//!
//! The [`tl2`] module applies the same treatment to the TL2 software TM
//! (per-stripe versioned write-locks, global version clock): its own
//! small-step machine, its own safe suite, and a seeded stale-read mutant
//! ([`tl2_mutant_config`]) the serializability oracle must likewise catch.

pub mod explore;
pub mod machine;
pub mod oracle;
pub mod suite;
pub mod tl2;

pub use explore::{explore, judge_terminal, Report, TerminalVerdict, ViolationReport};
pub use machine::{Config, Op, Policy, State, Subscription, ThreadSpec, Val};
pub use oracle::{find_serial_witness, CommitPath, Committed, HOp};
pub use suite::{mutant_config, standard_suite};
pub use tl2::{explore_tl2, judge_tl2_terminal, tl2_mutant_config, tl2_suite, Tl2Config, Tl2State};
